#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "tools/cpp_lexer.h"
#include "tools/lint_graph.h"
#include "tools/lint_rules.h"

namespace fvae::lint {
namespace {

/// Runs LintFile over a snippet with the status-function set collected
/// from the snippet itself (mirrors the tree walk's two phases).
std::vector<Finding> Lint(const std::string& content,
                          LintOptions options = {}) {
  std::set<std::string> status_functions;
  CollectStatusFunctions(content, &status_functions);
  options.status_functions = &status_functions;
  return LintFile("snippet.cc", content, options);
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  for (const Finding& finding : findings) {
    if (finding.rule == rule) return true;
  }
  return false;
}

// ---------- discarded-status ----------

TEST(LintDiscardedStatusTest, BareStatusCallFires) {
  const auto findings = Lint(
      "Status Save(const std::string& path);\n"
      "void f() {\n"
      "  Save(\"model.bin\");\n"
      "}\n");
  ASSERT_TRUE(HasRule(findings, "discarded-status"));
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(LintDiscardedStatusTest, MemberCallAndResultFire) {
  const auto findings = Lint(
      "Result<std::vector<float>> Load(const std::string& path);\n"
      "Status Close();\n"
      "void f(Writer& w) {\n"
      "  w.Close();\n"
      "  Load(\"embeddings.bin\");\n"
      "}\n");
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_TRUE(HasRule(findings, "discarded-status"));
}

TEST(LintDiscardedStatusTest, CheckedCallsStaySilent) {
  const auto findings = Lint(
      "Status Save(const std::string& path);\n"
      "Status g() {\n"
      "  Status s = Save(\"a\");\n"
      "  if (!Save(\"b\").ok()) return s;\n"
      "  return Save(\"c\");\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "discarded-status"));
}

TEST(LintDiscardedStatusTest, WrappedContinuationLineStaysSilent) {
  // The tail of a multi-line FVAE_CHECK-style wrapper is not a statement.
  const auto findings = Lint(
      "Status Save(const std::string& path);\n"
      "void f() {\n"
      "  ASSERT_OK(\n"
      "      Save(\"model.bin\"));\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "discarded-status"));
}

TEST(LintDiscardedStatusTest, AssignmentContinuationLineStaysSilent) {
  // When a wrapped assignment's call sits alone on the second line, that
  // line has balanced parens and no '=' — only the statement-start check
  // keeps it silent.
  const auto findings = Lint(
      "Result<std::vector<float>> Decode(const char* p);\n"
      "void f(const char* p) {\n"
      "  Result<std::vector<float>> decoded =\n"
      "      Decode(p);\n"
      "  (void)decoded;\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "discarded-status"));
}

TEST(LintDiscardedStatusTest, AmbiguousNamesReachTheNonStatusSet) {
  // Cross-TU matching is by bare name; a name declared fallible in one
  // file and void in another lands in both sets, and the tree walk drops
  // it from the fallible set (obs::Counter::Add vs net::EpollLoop::Add).
  std::set<std::string> status, other;
  CollectStatusFunctions("Status Add(int fd);\n", &status, &other);
  CollectStatusFunctions(
      "class Counter {\n"
      " public:\n"
      "  void Add(uint64_t delta);\n"
      "};\n"
      "void g() { return Touch(1); }\n",
      &status, &other);
  EXPECT_EQ(status.count("Add"), 1u);
  EXPECT_EQ(other.count("Add"), 1u);
  // `return Touch(1);` is a call, not a declaration.
  EXPECT_EQ(other.count("Touch"), 0u);
}

// ---------- void-needs-reason ----------

TEST(LintVoidDiscardTest, JustifiedDiscardStaysSilent) {
  const auto findings = Lint(
      "Status Close();\n"
      "void f() {\n"
      "  // Destructor path: nothing can consume the status here.\n"
      "  (void)Close();\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintVoidDiscardTest, UnjustifiedDiscardFires) {
  const auto findings = Lint(
      "Status Close();\n"
      "void f() {\n"
      "  (void)Close();\n"
      "}\n");
  ASSERT_TRUE(HasRule(findings, "void-needs-reason"));
}

TEST(LintVoidDiscardTest, UnusedParameterSilencingIsExempt) {
  const auto findings = Lint(
      "void f(int unused) {\n"
      "  (void)unused;\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- raw-mutex ----------

TEST(LintRawMutexTest, RawPrimitivesFire) {
  for (const char* decl :
       {"std::mutex mu_;", "std::shared_mutex mu_;",
        "std::condition_variable cv_;",
        "std::lock_guard<std::mutex> lock(mu_);"}) {
    const auto findings = Lint(std::string("  ") + decl + "\n");
    EXPECT_TRUE(HasRule(findings, "raw-mutex")) << decl;
  }
}

TEST(LintRawMutexTest, WrapperTypesStaySilent) {
  const auto findings = Lint(
      "  Mutex mutex_;\n"
      "  SharedMutex shard_mutex_;\n"
      "  MutexLock lock(mutex_);\n"
      "  ReaderMutexLock shared(shard_mutex_);\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintRawMutexTest, MutexHeaderItselfIsAllowed) {
  LintOptions options;
  options.allow_raw_mutex = true;
  const auto findings = Lint("std::mutex mu_;\n", options);
  EXPECT_TRUE(findings.empty());
}

TEST(LintRawMutexTest, SuppressionCommentWorks) {
  const auto findings =
      Lint("std::mutex mu_;  // fvae-lint: allow(raw-mutex)\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- raw-socket ----------

TEST(LintRawSocketTest, BareAndGlobalQualifiedCallsFire) {
  for (const char* expr :
       {"int fd = socket(AF_INET, SOCK_STREAM, 0);",
        "int fd = ::socket(AF_INET, SOCK_STREAM, 0);", "close(fd);",
        "::close(fd);", "int conn = accept(listener, nullptr, nullptr);",
        "int conn = ::accept4(listener, nullptr, nullptr, SOCK_NONBLOCK);"}) {
    const auto findings = Lint(std::string("  ") + expr + "\n");
    EXPECT_TRUE(HasRule(findings, "raw-socket")) << expr;
  }
}

TEST(LintRawSocketTest, MemberCallsAndWrapperStaySilent) {
  const auto findings = Lint(
      "  file.close();\n"
      "  stream->close();\n"
      "  out_.close();\n"
      "  Fd fd = std::move(other);\n"
      "  fd.Reset();\n"
      "  posix::close(fd);\n");
  EXPECT_FALSE(HasRule(findings, "raw-socket"));
}

TEST(LintRawSocketTest, NetModuleIsAllowed) {
  LintOptions options;
  options.allow_raw_sockets = true;
  const auto findings = Lint("  ::close(fd_);\n", options);
  EXPECT_TRUE(findings.empty());
}

TEST(LintRawSocketTest, SuppressionCommentWorks) {
  const auto findings =
      Lint("  ::close(fd);  // fvae-lint: allow(raw-socket)\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- banned-random ----------

TEST(LintBannedRandomTest, NondeterminismFires) {
  for (const char* expr :
       {"int x = rand();", "srand(42);", "std::random_device rd;"}) {
    const auto findings = Lint(std::string("  ") + expr + "\n");
    EXPECT_TRUE(HasRule(findings, "banned-random")) << expr;
  }
}

TEST(LintBannedRandomTest, SeededRngAndLookalikeNamesStaySilent) {
  const auto findings = Lint(
      "  Rng rng(42);\n"
      "  double r = rng.Uniform();\n"
      "  int operand = 3;\n"       // "rand" inside an identifier
      "  GrandTotal(operand);\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintBannedRandomTest, RandomModuleIsAllowed) {
  LintOptions options;
  options.allow_nondeterminism = true;
  const auto findings = Lint("std::random_device rd;\n", options);
  EXPECT_TRUE(findings.empty());
}

// ---------- header hygiene ----------

TEST(LintHeaderGuardTest, ExpectedGuardFollowsPath) {
  EXPECT_EQ(ExpectedGuard("src/serving/lru_cache.h"),
            "FVAE_SERVING_LRU_CACHE_H_");
  EXPECT_EQ(ExpectedGuard("bench/model_zoo.h"), "FVAE_BENCH_MODEL_ZOO_H_");
  EXPECT_EQ(ExpectedGuard("tools/lint_rules.h"), "FVAE_TOOLS_LINT_RULES_H_");
  EXPECT_EQ(ExpectedGuard("src/core/trainer.cc"), "");
}

TEST(LintHeaderGuardTest, MatchingGuardStaysSilent) {
  LintOptions options;
  options.expected_guard = "FVAE_COMMON_FOO_H_";
  const auto findings = Lint(
      "#ifndef FVAE_COMMON_FOO_H_\n"
      "#define FVAE_COMMON_FOO_H_\n"
      "#endif  // FVAE_COMMON_FOO_H_\n",
      options);
  EXPECT_TRUE(findings.empty());
}

TEST(LintHeaderGuardTest, WrongGuardFires) {
  LintOptions options;
  options.expected_guard = "FVAE_COMMON_FOO_H_";
  const auto findings = Lint(
      "#ifndef COMMON_FOO_H\n"
      "#define COMMON_FOO_H\n"
      "#endif\n",
      options);
  EXPECT_TRUE(HasRule(findings, "header-guard"));
}

TEST(LintHeaderGuardTest, MissingGuardAndPragmaOnceFire) {
  LintOptions options;
  options.expected_guard = "FVAE_COMMON_FOO_H_";
  EXPECT_TRUE(HasRule(Lint("int x;\n", options), "header-guard"));
  EXPECT_TRUE(HasRule(Lint("#pragma once\n"
                           "#ifndef FVAE_COMMON_FOO_H_\n"
                           "#define FVAE_COMMON_FOO_H_\n"
                           "#endif\n",
                           options),
                      "header-guard"));
}

TEST(LintUsingNamespaceTest, FiresInHeadersOnly) {
  LintOptions header;
  header.expected_guard = "FVAE_COMMON_FOO_H_";
  const std::string body =
      "#ifndef FVAE_COMMON_FOO_H_\n"
      "#define FVAE_COMMON_FOO_H_\n"
      "using namespace std;\n"
      "#endif  // FVAE_COMMON_FOO_H_\n";
  EXPECT_TRUE(HasRule(Lint(body, header), "using-namespace"));
  EXPECT_FALSE(HasRule(Lint("using namespace std;\n"), "using-namespace"));
}

// ---------- metric-name ----------

TEST(LintMetricNameTest, BadNamesFire) {
  // Escaped quotes keep these snippets from looking like registry calls to
  // the tree walk over this very file.
  for (const char* expr :
       {"m.Counter(\"BadName\");", "m.Gauge(\"serving.\");",
        "registry->Histo(\"lookup latency\");", "m.Counter(\"no_dots\");",
        "m.Gauge(\"serving..depth\");", "m.Histo(\"9data.rows\");"}) {
    const auto findings = Lint(std::string("  ") + expr + "\n");
    EXPECT_TRUE(HasRule(findings, "metric-name")) << expr;
  }
}

TEST(LintMetricNameTest, DottedSnakeCasePathsStaySilent) {
  const auto findings = Lint(
      "  m.Counter(\"training.steps\").Increment();\n"
      "  registry->Gauge(\"hash.load_factor\").Set(0.5);\n"
      "  m.Histo(\"serving.lookup_latency_us\", 1.0, 1.3, 64);\n"
      "  two.Counter(\"a.b2.c_d\");\n");
  EXPECT_FALSE(HasRule(findings, "metric-name"));
}

TEST(LintMetricNameTest, LookalikesAndNonLiteralsAreExempt) {
  const auto findings = Lint(
      "  m.GetCounter(\"NotTheRegistry\");\n"  // different method name
      "  m.Counter(name);\n"                   // non-literal argument
      "  // m.Counter(\"BadComment\") in a comment\n");
  EXPECT_FALSE(HasRule(findings, "metric-name"));
}

TEST(LintMetricNameTest, SuppressionCommentWorks) {
  const auto findings = Lint(
      "  m.Counter(\"Legacy.Name\");  // fvae-lint: allow(metric-name)\n");
  EXPECT_FALSE(HasRule(findings, "metric-name"));
}

// ---------- lexer ----------

// ---------- atomic-write ----------

TEST(LintAtomicWriteTest, RawOfstreamFiresInDurableModules) {
  LintOptions options;
  options.ban_raw_ofstream = true;
  const auto findings = Lint(
      "void Save(const std::string& path) {\n"
      "  std::ofstream out(path, std::ios::binary);\n"
      "}\n",
      options);
  ASSERT_TRUE(HasRule(findings, "atomic-write"));
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(LintAtomicWriteTest, ReadersAndWrapperStaySilent) {
  LintOptions options;
  options.ban_raw_ofstream = true;
  const auto findings = Lint(
      "Status Load(const std::string& path) {\n"
      "  std::ifstream in(path, std::ios::binary);\n"
      "  AtomicFileWriter writer;\n"
      "  return writer.Commit();\n"
      "}\n",
      options);
  EXPECT_FALSE(HasRule(findings, "atomic-write"));
}

TEST(LintAtomicWriteTest, OffByDefaultAndSuppressible) {
  const std::string snippet =
      "void f() {\n"
      "  std::ofstream out(\"x\");  // fvae-lint: allow(atomic-write)\n"
      "}\n";
  EXPECT_FALSE(HasRule(Lint(snippet), "atomic-write"));
  LintOptions options;
  options.ban_raw_ofstream = true;
  EXPECT_FALSE(HasRule(Lint(snippet, options), "atomic-write"));
}

TEST(LintLexerTest, CommentsAndStringsNeverFire) {
  const auto findings = Lint(
      "// std::mutex in a comment\n"
      "/* rand() in a block\n"
      "   comment spanning lines: std::random_device */\n"
      "const char* s = \"std::mutex rand()\";\n"
      "const char* r = R\"(srand(1) std::shared_mutex)\";\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- lexer regressions ----------

TEST(CppLexerTest, DigitSeparatorsStayOneNumberToken) {
  const auto tokens = LexCpp("size_t n = 1'000'000;\n");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[3].kind, TokKind::kNumber);
  EXPECT_EQ(tokens[3].text, "1'000'000");
}

TEST(CppLexerTest, RawStringSpansLinesAndHidesCode) {
  const auto tokens = LexCpp(
      "const char* s = R\"(std::mutex m;\n"
      "rand();)\";\n"
      "int after = 0;\n");
  // Nothing inside the raw string becomes an identifier token.
  for (const auto& token : tokens) {
    EXPECT_NE(token.text, "mutex");
    EXPECT_NE(token.text, "rand");
  }
  // Line numbers account for the newline inside the literal.
  bool found_after = false;
  for (const auto& token : tokens) {
    if (token.kind == TokKind::kIdent && token.text == "after") {
      EXPECT_EQ(token.line, 3u);
      found_after = true;
    }
  }
  EXPECT_TRUE(found_after);
}

TEST(CppLexerTest, ContinuedPreprocessorDirectiveIsOneToken) {
  const auto tokens = LexCpp(
      "#define FOO(a) \\\n"
      "  ((a) + 1)\n"
      "int x = FOO(1);\n");
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens[0].kind, TokKind::kPreproc);
  // The directive swallowed its continuation line.
  EXPECT_NE(tokens[0].text.find("((a) + 1)"), std::string::npos);
}

TEST(CppLexerTest, CommentsAndStringsDoNotLeakRuleTriggers) {
  const auto findings = Lint(
      "// std::mutex commented_out;\n"
      "/* srand(42); */\n"
      "const char* t = \"std::shared_mutex in a string\";\n"
      "void f() {}\n");
  EXPECT_FALSE(HasRule(findings, "raw-mutex"));
  EXPECT_FALSE(HasRule(findings, "banned-random"));
}

// ---------- whole-program: lock-order cycles ----------

/// Wraps one synthetic TU as the whole program for AnalyzeProgram.
std::vector<Finding> AnalyzeOne(const std::string& content) {
  return AnalyzeProgram({SourceFile{"src/fixture.cc", content}});
}

TEST(LockOrderTest, DeclaredCycleFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      "  Mutex a_ FVAE_ACQUIRED_BEFORE(b_);\n"
      "  Mutex b_ FVAE_ACQUIRED_BEFORE(a_);\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "lock-cycle"));
  // The report prints the full cycle path through both locks.
  EXPECT_NE(findings[0].message.find("fvae::S::a_"), std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("fvae::S::b_"), std::string::npos)
      << findings[0].message;
}

TEST(LockOrderTest, ObservedNestingAgainstDeclaredOrderFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void Backwards() {\n"
      "    MutexLock l1(b_);\n"
      "    MutexLock l2(a_);\n"
      "  }\n"
      " private:\n"
      "  Mutex a_ FVAE_ACQUIRED_BEFORE(b_);\n"
      "  Mutex b_;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "lock-cycle"));
}

TEST(LockOrderTest, CrossFunctionCycleThroughCallGraphFires) {
  // f holds a_ and calls g, which takes b_; h holds b_ and calls k, which
  // takes a_ — a deadlock only visible through the call graph.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void f() {\n"
      "    MutexLock lock(a_);\n"
      "    g();\n"
      "  }\n"
      "  void g() { MutexLock lock(b_); }\n"
      "  void h() {\n"
      "    MutexLock lock(b_);\n"
      "    k();\n"
      "  }\n"
      "  void k() { MutexLock lock(a_); }\n"
      " private:\n"
      "  Mutex a_;\n"
      "  Mutex b_;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "lock-cycle"));
}

TEST(LockOrderTest, ConsistentOrderStaysSilent) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void Both() {\n"
      "    MutexLock l1(a_);\n"
      "    MutexLock l2(b_);\n"
      "  }\n"
      "  void AlsoBoth() {\n"
      "    MutexLock l1(a_);\n"
      "    MutexLock l2(b_);\n"
      "  }\n"
      " private:\n"
      "  Mutex a_ FVAE_ACQUIRED_BEFORE(b_);\n"
      "  Mutex b_;\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "lock-cycle"));
}

// ---------- whole-program: hot-path purity ----------

TEST(HotPathTest, TransitiveAllocationUnderNoallocFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void Encode() FVAE_HOT FVAE_NOALLOC { Helper(); }\n"
      "  void Helper() { buf_.push_back(1.0f); }\n"
      " private:\n"
      "  std::vector<float> buf_;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "hot-alloc"));
  // The chain from the annotated root to the allocation is reported.
  EXPECT_NE(findings[0].message.find("Encode"), std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("Helper"), std::string::npos)
      << findings[0].message;
}

TEST(HotPathTest, NewExpressionUnderNoallocFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "void Encode() FVAE_HOT FVAE_NOALLOC {\n"
      "  float* p = new float[16];\n"
      "  delete[] p;\n"
      "}\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(HasRule(findings, "hot-alloc"));
}

TEST(HotPathTest, LockAcquisitionOnHotPathFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void Serve() FVAE_HOT { MutexLock lock(mu_); }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "hot-lock"));
}

TEST(HotPathTest, ExemptLockOnHotPathStaysSilent) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void Serve() FVAE_HOT { MutexLock lock(mu_); }\n"
      " private:\n"
      "  Mutex mu_ FVAE_HOT_LOCK_EXEMPT;\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "hot-lock"));
}

TEST(HotPathTest, TransitiveIoAndLoggingFire) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "void Reload() {\n"
      "  std::ifstream in(\"dump.bin\");\n"
      "  FVAE_LOG(INFO) << \"reloading\";\n"
      "}\n"
      "void Serve() FVAE_HOT { Reload(); }\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(HasRule(findings, "hot-io"));
  EXPECT_TRUE(HasRule(findings, "hot-log"));
}

TEST(HotPathTest, HotWithoutNoallocAllowsAllocations) {
  // FVAE_HOT alone bans logging/IO/locks but not heap use.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "void Serve() FVAE_HOT {\n"
      "  std::vector<int> scratch;\n"
      "  scratch.push_back(1);\n"
      "}\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "hot-alloc"));
  EXPECT_TRUE(findings.empty());
}

TEST(HotPathTest, SuppressionCommentSilencesFinding) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "void Encode() FVAE_HOT FVAE_NOALLOC {\n"
      "  buf.resize(64);  // fvae-lint: allow(hot-alloc)\n"
      "}\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "hot-alloc"));
}

TEST(HotPathTest, ColdFunctionsAreNotChecked) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "void Offline() {\n"
      "  std::ofstream out(\"dump.bin\");  // fvae-lint: allow(atomic-write)\n"
      "  std::vector<int> v;\n"
      "  v.push_back(1);\n"
      "}\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- the tree itself ----------

TEST(LintTreeTest, RepositoryIsClean) {
  const std::vector<Finding> findings = LintTree(FVAE_SOURCE_DIR);
  for (const Finding& finding : findings) {
    ADD_FAILURE() << finding.file << ":" << finding.line << " ["
                  << finding.rule << "] " << finding.message;
  }
}

}  // namespace
}  // namespace fvae::lint
