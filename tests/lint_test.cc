#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "tools/lint_rules.h"

namespace fvae::lint {
namespace {

/// Runs LintFile over a snippet with the status-function set collected
/// from the snippet itself (mirrors the tree walk's two phases).
std::vector<Finding> Lint(const std::string& content,
                          LintOptions options = {}) {
  std::set<std::string> status_functions;
  CollectStatusFunctions(content, &status_functions);
  options.status_functions = &status_functions;
  return LintFile("snippet.cc", content, options);
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  for (const Finding& finding : findings) {
    if (finding.rule == rule) return true;
  }
  return false;
}

// ---------- discarded-status ----------

TEST(LintDiscardedStatusTest, BareStatusCallFires) {
  const auto findings = Lint(
      "Status Save(const std::string& path);\n"
      "void f() {\n"
      "  Save(\"model.bin\");\n"
      "}\n");
  ASSERT_TRUE(HasRule(findings, "discarded-status"));
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(LintDiscardedStatusTest, MemberCallAndResultFire) {
  const auto findings = Lint(
      "Result<std::vector<float>> Load(const std::string& path);\n"
      "Status Close();\n"
      "void f(Writer& w) {\n"
      "  w.Close();\n"
      "  Load(\"embeddings.bin\");\n"
      "}\n");
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_TRUE(HasRule(findings, "discarded-status"));
}

TEST(LintDiscardedStatusTest, CheckedCallsStaySilent) {
  const auto findings = Lint(
      "Status Save(const std::string& path);\n"
      "Status g() {\n"
      "  Status s = Save(\"a\");\n"
      "  if (!Save(\"b\").ok()) return s;\n"
      "  return Save(\"c\");\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "discarded-status"));
}

TEST(LintDiscardedStatusTest, WrappedContinuationLineStaysSilent) {
  // The tail of a multi-line FVAE_CHECK-style wrapper is not a statement.
  const auto findings = Lint(
      "Status Save(const std::string& path);\n"
      "void f() {\n"
      "  ASSERT_OK(\n"
      "      Save(\"model.bin\"));\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "discarded-status"));
}

// ---------- void-needs-reason ----------

TEST(LintVoidDiscardTest, JustifiedDiscardStaysSilent) {
  const auto findings = Lint(
      "Status Close();\n"
      "void f() {\n"
      "  // Destructor path: nothing can consume the status here.\n"
      "  (void)Close();\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintVoidDiscardTest, UnjustifiedDiscardFires) {
  const auto findings = Lint(
      "Status Close();\n"
      "void f() {\n"
      "  (void)Close();\n"
      "}\n");
  ASSERT_TRUE(HasRule(findings, "void-needs-reason"));
}

TEST(LintVoidDiscardTest, UnusedParameterSilencingIsExempt) {
  const auto findings = Lint(
      "void f(int unused) {\n"
      "  (void)unused;\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- raw-mutex ----------

TEST(LintRawMutexTest, RawPrimitivesFire) {
  for (const char* decl :
       {"std::mutex mu_;", "std::shared_mutex mu_;",
        "std::condition_variable cv_;",
        "std::lock_guard<std::mutex> lock(mu_);"}) {
    const auto findings = Lint(std::string("  ") + decl + "\n");
    EXPECT_TRUE(HasRule(findings, "raw-mutex")) << decl;
  }
}

TEST(LintRawMutexTest, WrapperTypesStaySilent) {
  const auto findings = Lint(
      "  Mutex mutex_;\n"
      "  SharedMutex shard_mutex_;\n"
      "  MutexLock lock(mutex_);\n"
      "  ReaderMutexLock shared(shard_mutex_);\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintRawMutexTest, MutexHeaderItselfIsAllowed) {
  LintOptions options;
  options.allow_raw_mutex = true;
  const auto findings = Lint("std::mutex mu_;\n", options);
  EXPECT_TRUE(findings.empty());
}

TEST(LintRawMutexTest, SuppressionCommentWorks) {
  const auto findings =
      Lint("std::mutex mu_;  // fvae-lint: allow(raw-mutex)\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- banned-random ----------

TEST(LintBannedRandomTest, NondeterminismFires) {
  for (const char* expr :
       {"int x = rand();", "srand(42);", "std::random_device rd;"}) {
    const auto findings = Lint(std::string("  ") + expr + "\n");
    EXPECT_TRUE(HasRule(findings, "banned-random")) << expr;
  }
}

TEST(LintBannedRandomTest, SeededRngAndLookalikeNamesStaySilent) {
  const auto findings = Lint(
      "  Rng rng(42);\n"
      "  double r = rng.Uniform();\n"
      "  int operand = 3;\n"       // "rand" inside an identifier
      "  GrandTotal(operand);\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintBannedRandomTest, RandomModuleIsAllowed) {
  LintOptions options;
  options.allow_nondeterminism = true;
  const auto findings = Lint("std::random_device rd;\n", options);
  EXPECT_TRUE(findings.empty());
}

// ---------- header hygiene ----------

TEST(LintHeaderGuardTest, ExpectedGuardFollowsPath) {
  EXPECT_EQ(ExpectedGuard("src/serving/lru_cache.h"),
            "FVAE_SERVING_LRU_CACHE_H_");
  EXPECT_EQ(ExpectedGuard("bench/model_zoo.h"), "FVAE_BENCH_MODEL_ZOO_H_");
  EXPECT_EQ(ExpectedGuard("tools/lint_rules.h"), "FVAE_TOOLS_LINT_RULES_H_");
  EXPECT_EQ(ExpectedGuard("src/core/trainer.cc"), "");
}

TEST(LintHeaderGuardTest, MatchingGuardStaysSilent) {
  LintOptions options;
  options.expected_guard = "FVAE_COMMON_FOO_H_";
  const auto findings = Lint(
      "#ifndef FVAE_COMMON_FOO_H_\n"
      "#define FVAE_COMMON_FOO_H_\n"
      "#endif  // FVAE_COMMON_FOO_H_\n",
      options);
  EXPECT_TRUE(findings.empty());
}

TEST(LintHeaderGuardTest, WrongGuardFires) {
  LintOptions options;
  options.expected_guard = "FVAE_COMMON_FOO_H_";
  const auto findings = Lint(
      "#ifndef COMMON_FOO_H\n"
      "#define COMMON_FOO_H\n"
      "#endif\n",
      options);
  EXPECT_TRUE(HasRule(findings, "header-guard"));
}

TEST(LintHeaderGuardTest, MissingGuardAndPragmaOnceFire) {
  LintOptions options;
  options.expected_guard = "FVAE_COMMON_FOO_H_";
  EXPECT_TRUE(HasRule(Lint("int x;\n", options), "header-guard"));
  EXPECT_TRUE(HasRule(Lint("#pragma once\n"
                           "#ifndef FVAE_COMMON_FOO_H_\n"
                           "#define FVAE_COMMON_FOO_H_\n"
                           "#endif\n",
                           options),
                      "header-guard"));
}

TEST(LintUsingNamespaceTest, FiresInHeadersOnly) {
  LintOptions header;
  header.expected_guard = "FVAE_COMMON_FOO_H_";
  const std::string body =
      "#ifndef FVAE_COMMON_FOO_H_\n"
      "#define FVAE_COMMON_FOO_H_\n"
      "using namespace std;\n"
      "#endif  // FVAE_COMMON_FOO_H_\n";
  EXPECT_TRUE(HasRule(Lint(body, header), "using-namespace"));
  EXPECT_FALSE(HasRule(Lint("using namespace std;\n"), "using-namespace"));
}

// ---------- metric-name ----------

TEST(LintMetricNameTest, BadNamesFire) {
  // Escaped quotes keep these snippets from looking like registry calls to
  // the tree walk over this very file.
  for (const char* expr :
       {"m.Counter(\"BadName\");", "m.Gauge(\"serving.\");",
        "registry->Histo(\"lookup latency\");", "m.Counter(\"no_dots\");",
        "m.Gauge(\"serving..depth\");", "m.Histo(\"9data.rows\");"}) {
    const auto findings = Lint(std::string("  ") + expr + "\n");
    EXPECT_TRUE(HasRule(findings, "metric-name")) << expr;
  }
}

TEST(LintMetricNameTest, DottedSnakeCasePathsStaySilent) {
  const auto findings = Lint(
      "  m.Counter(\"training.steps\").Increment();\n"
      "  registry->Gauge(\"hash.load_factor\").Set(0.5);\n"
      "  m.Histo(\"serving.lookup_latency_us\", 1.0, 1.3, 64);\n"
      "  two.Counter(\"a.b2.c_d\");\n");
  EXPECT_FALSE(HasRule(findings, "metric-name"));
}

TEST(LintMetricNameTest, LookalikesAndNonLiteralsAreExempt) {
  const auto findings = Lint(
      "  m.GetCounter(\"NotTheRegistry\");\n"  // different method name
      "  m.Counter(name);\n"                   // non-literal argument
      "  // m.Counter(\"BadComment\") in a comment\n");
  EXPECT_FALSE(HasRule(findings, "metric-name"));
}

TEST(LintMetricNameTest, SuppressionCommentWorks) {
  const auto findings = Lint(
      "  m.Counter(\"Legacy.Name\");  // fvae-lint: allow(metric-name)\n");
  EXPECT_FALSE(HasRule(findings, "metric-name"));
}

// ---------- lexer ----------

// ---------- atomic-write ----------

TEST(LintAtomicWriteTest, RawOfstreamFiresInDurableModules) {
  LintOptions options;
  options.ban_raw_ofstream = true;
  const auto findings = Lint(
      "void Save(const std::string& path) {\n"
      "  std::ofstream out(path, std::ios::binary);\n"
      "}\n",
      options);
  ASSERT_TRUE(HasRule(findings, "atomic-write"));
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(LintAtomicWriteTest, ReadersAndWrapperStaySilent) {
  LintOptions options;
  options.ban_raw_ofstream = true;
  const auto findings = Lint(
      "Status Load(const std::string& path) {\n"
      "  std::ifstream in(path, std::ios::binary);\n"
      "  AtomicFileWriter writer;\n"
      "  return writer.Commit();\n"
      "}\n",
      options);
  EXPECT_FALSE(HasRule(findings, "atomic-write"));
}

TEST(LintAtomicWriteTest, OffByDefaultAndSuppressible) {
  const std::string snippet =
      "void f() {\n"
      "  std::ofstream out(\"x\");  // fvae-lint: allow(atomic-write)\n"
      "}\n";
  EXPECT_FALSE(HasRule(Lint(snippet), "atomic-write"));
  LintOptions options;
  options.ban_raw_ofstream = true;
  EXPECT_FALSE(HasRule(Lint(snippet, options), "atomic-write"));
}

TEST(LintLexerTest, CommentsAndStringsNeverFire) {
  const auto findings = Lint(
      "// std::mutex in a comment\n"
      "/* rand() in a block\n"
      "   comment spanning lines: std::random_device */\n"
      "const char* s = \"std::mutex rand()\";\n"
      "const char* r = R\"(srand(1) std::shared_mutex)\";\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- the tree itself ----------

TEST(LintTreeTest, RepositoryIsClean) {
  const std::vector<Finding> findings = LintTree(FVAE_SOURCE_DIR);
  for (const Finding& finding : findings) {
    ADD_FAILURE() << finding.file << ":" << finding.line << " ["
                  << finding.rule << "] " << finding.message;
  }
}

}  // namespace
}  // namespace fvae::lint
