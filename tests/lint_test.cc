#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/cpp_lexer.h"
#include "tools/lint_graph.h"
#include "tools/lint_rules.h"

namespace fvae::lint {
namespace {

/// Runs LintFile over a snippet with the status-function set collected
/// from the snippet itself (mirrors the tree walk's two phases).
std::vector<Finding> Lint(const std::string& content,
                          LintOptions options = {}) {
  std::set<std::string> status_functions;
  CollectStatusFunctions(content, &status_functions);
  options.status_functions = &status_functions;
  return LintFile("snippet.cc", content, options);
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  for (const Finding& finding : findings) {
    if (finding.rule == rule) return true;
  }
  return false;
}

// ---------- discarded-status ----------

TEST(LintDiscardedStatusTest, BareStatusCallFires) {
  const auto findings = Lint(
      "Status Save(const std::string& path);\n"
      "void f() {\n"
      "  Save(\"model.bin\");\n"
      "}\n");
  ASSERT_TRUE(HasRule(findings, "discarded-status"));
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(LintDiscardedStatusTest, MemberCallAndResultFire) {
  const auto findings = Lint(
      "Result<std::vector<float>> Load(const std::string& path);\n"
      "Status Close();\n"
      "void f(Writer& w) {\n"
      "  w.Close();\n"
      "  Load(\"embeddings.bin\");\n"
      "}\n");
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_TRUE(HasRule(findings, "discarded-status"));
}

TEST(LintDiscardedStatusTest, CheckedCallsStaySilent) {
  const auto findings = Lint(
      "Status Save(const std::string& path);\n"
      "Status g() {\n"
      "  Status s = Save(\"a\");\n"
      "  if (!Save(\"b\").ok()) return s;\n"
      "  return Save(\"c\");\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "discarded-status"));
}

TEST(LintDiscardedStatusTest, WrappedContinuationLineStaysSilent) {
  // The tail of a multi-line FVAE_CHECK-style wrapper is not a statement.
  const auto findings = Lint(
      "Status Save(const std::string& path);\n"
      "void f() {\n"
      "  ASSERT_OK(\n"
      "      Save(\"model.bin\"));\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "discarded-status"));
}

TEST(LintDiscardedStatusTest, AssignmentContinuationLineStaysSilent) {
  // When a wrapped assignment's call sits alone on the second line, that
  // line has balanced parens and no '=' — only the statement-start check
  // keeps it silent.
  const auto findings = Lint(
      "Result<std::vector<float>> Decode(const char* p);\n"
      "void f(const char* p) {\n"
      "  Result<std::vector<float>> decoded =\n"
      "      Decode(p);\n"
      "  (void)decoded;\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "discarded-status"));
}

TEST(LintDiscardedStatusTest, AmbiguousNamesReachTheNonStatusSet) {
  // Cross-TU matching is by bare name; a name declared fallible in one
  // file and void in another lands in both sets, and the tree walk drops
  // it from the fallible set (obs::Counter::Add vs net::EpollLoop::Add).
  std::set<std::string> status, other;
  CollectStatusFunctions("Status Add(int fd);\n", &status, &other);
  CollectStatusFunctions(
      "class Counter {\n"
      " public:\n"
      "  void Add(uint64_t delta);\n"
      "};\n"
      "void g() { return Touch(1); }\n",
      &status, &other);
  EXPECT_EQ(status.count("Add"), 1u);
  EXPECT_EQ(other.count("Add"), 1u);
  // `return Touch(1);` is a call, not a declaration.
  EXPECT_EQ(other.count("Touch"), 0u);
}

// ---------- void-needs-reason ----------

TEST(LintVoidDiscardTest, JustifiedDiscardStaysSilent) {
  const auto findings = Lint(
      "Status Close();\n"
      "void f() {\n"
      "  // Destructor path: nothing can consume the status here.\n"
      "  (void)Close();\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintVoidDiscardTest, UnjustifiedDiscardFires) {
  const auto findings = Lint(
      "Status Close();\n"
      "void f() {\n"
      "  (void)Close();\n"
      "}\n");
  ASSERT_TRUE(HasRule(findings, "void-needs-reason"));
}

TEST(LintVoidDiscardTest, UnusedParameterSilencingIsExempt) {
  const auto findings = Lint(
      "void f(int unused) {\n"
      "  (void)unused;\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- raw-mutex ----------

TEST(LintRawMutexTest, RawPrimitivesFire) {
  for (const char* decl :
       {"std::mutex mu_;", "std::shared_mutex mu_;",
        "std::condition_variable cv_;",
        "std::lock_guard<std::mutex> lock(mu_);"}) {
    const auto findings = Lint(std::string("  ") + decl + "\n");
    EXPECT_TRUE(HasRule(findings, "raw-mutex")) << decl;
  }
}

TEST(LintRawMutexTest, WrapperTypesStaySilent) {
  const auto findings = Lint(
      "  Mutex mutex_;\n"
      "  SharedMutex shard_mutex_;\n"
      "  MutexLock lock(mutex_);\n"
      "  ReaderMutexLock shared(shard_mutex_);\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintRawMutexTest, MutexHeaderItselfIsAllowed) {
  LintOptions options;
  options.allow_raw_mutex = true;
  const auto findings = Lint("std::mutex mu_;\n", options);
  EXPECT_TRUE(findings.empty());
}

TEST(LintRawMutexTest, SuppressionCommentWorks) {
  const auto findings =
      Lint("std::mutex mu_;  // fvae-lint: allow(raw-mutex)\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- raw-socket ----------

TEST(LintRawSocketTest, BareAndGlobalQualifiedCallsFire) {
  for (const char* expr :
       {"int fd = socket(AF_INET, SOCK_STREAM, 0);",
        "int fd = ::socket(AF_INET, SOCK_STREAM, 0);", "close(fd);",
        "::close(fd);", "int conn = accept(listener, nullptr, nullptr);",
        "int conn = ::accept4(listener, nullptr, nullptr, SOCK_NONBLOCK);"}) {
    const auto findings = Lint(std::string("  ") + expr + "\n");
    EXPECT_TRUE(HasRule(findings, "raw-socket")) << expr;
  }
}

TEST(LintRawSocketTest, MemberCallsAndWrapperStaySilent) {
  const auto findings = Lint(
      "  file.close();\n"
      "  stream->close();\n"
      "  out_.close();\n"
      "  Fd fd = std::move(other);\n"
      "  fd.Reset();\n"
      "  posix::close(fd);\n");
  EXPECT_FALSE(HasRule(findings, "raw-socket"));
}

TEST(LintRawSocketTest, NetModuleIsAllowed) {
  LintOptions options;
  options.allow_raw_sockets = true;
  const auto findings = Lint("  ::close(fd_);\n", options);
  EXPECT_TRUE(findings.empty());
}

TEST(LintRawSocketTest, SuppressionCommentWorks) {
  const auto findings =
      Lint("  ::close(fd);  // fvae-lint: allow(raw-socket)\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- banned-random ----------

TEST(LintBannedRandomTest, NondeterminismFires) {
  for (const char* expr :
       {"int x = rand();", "srand(42);", "std::random_device rd;"}) {
    const auto findings = Lint(std::string("  ") + expr + "\n");
    EXPECT_TRUE(HasRule(findings, "banned-random")) << expr;
  }
}

TEST(LintBannedRandomTest, SeededRngAndLookalikeNamesStaySilent) {
  const auto findings = Lint(
      "  Rng rng(42);\n"
      "  double r = rng.Uniform();\n"
      "  int operand = 3;\n"       // "rand" inside an identifier
      "  GrandTotal(operand);\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintBannedRandomTest, RandomModuleIsAllowed) {
  LintOptions options;
  options.allow_nondeterminism = true;
  const auto findings = Lint("std::random_device rd;\n", options);
  EXPECT_TRUE(findings.empty());
}

// ---------- header hygiene ----------

TEST(LintHeaderGuardTest, ExpectedGuardFollowsPath) {
  EXPECT_EQ(ExpectedGuard("src/serving/lru_cache.h"),
            "FVAE_SERVING_LRU_CACHE_H_");
  EXPECT_EQ(ExpectedGuard("bench/model_zoo.h"), "FVAE_BENCH_MODEL_ZOO_H_");
  EXPECT_EQ(ExpectedGuard("tools/lint_rules.h"), "FVAE_TOOLS_LINT_RULES_H_");
  EXPECT_EQ(ExpectedGuard("src/core/trainer.cc"), "");
}

TEST(LintHeaderGuardTest, MatchingGuardStaysSilent) {
  LintOptions options;
  options.expected_guard = "FVAE_COMMON_FOO_H_";
  const auto findings = Lint(
      "#ifndef FVAE_COMMON_FOO_H_\n"
      "#define FVAE_COMMON_FOO_H_\n"
      "#endif  // FVAE_COMMON_FOO_H_\n",
      options);
  EXPECT_TRUE(findings.empty());
}

TEST(LintHeaderGuardTest, WrongGuardFires) {
  LintOptions options;
  options.expected_guard = "FVAE_COMMON_FOO_H_";
  const auto findings = Lint(
      "#ifndef COMMON_FOO_H\n"
      "#define COMMON_FOO_H\n"
      "#endif\n",
      options);
  EXPECT_TRUE(HasRule(findings, "header-guard"));
}

TEST(LintHeaderGuardTest, MissingGuardAndPragmaOnceFire) {
  LintOptions options;
  options.expected_guard = "FVAE_COMMON_FOO_H_";
  EXPECT_TRUE(HasRule(Lint("int x;\n", options), "header-guard"));
  EXPECT_TRUE(HasRule(Lint("#pragma once\n"
                           "#ifndef FVAE_COMMON_FOO_H_\n"
                           "#define FVAE_COMMON_FOO_H_\n"
                           "#endif\n",
                           options),
                      "header-guard"));
}

TEST(LintUsingNamespaceTest, FiresInHeadersOnly) {
  LintOptions header;
  header.expected_guard = "FVAE_COMMON_FOO_H_";
  const std::string body =
      "#ifndef FVAE_COMMON_FOO_H_\n"
      "#define FVAE_COMMON_FOO_H_\n"
      "using namespace std;\n"
      "#endif  // FVAE_COMMON_FOO_H_\n";
  EXPECT_TRUE(HasRule(Lint(body, header), "using-namespace"));
  EXPECT_FALSE(HasRule(Lint("using namespace std;\n"), "using-namespace"));
}

// ---------- metric-name ----------

TEST(LintMetricNameTest, BadNamesFire) {
  // Escaped quotes keep these snippets from looking like registry calls to
  // the tree walk over this very file.
  for (const char* expr :
       {"m.Counter(\"BadName\");", "m.Gauge(\"serving.\");",
        "registry->Histo(\"lookup latency\");", "m.Counter(\"no_dots\");",
        "m.Gauge(\"serving..depth\");", "m.Histo(\"9data.rows\");"}) {
    const auto findings = Lint(std::string("  ") + expr + "\n");
    EXPECT_TRUE(HasRule(findings, "metric-name")) << expr;
  }
}

TEST(LintMetricNameTest, DottedSnakeCasePathsStaySilent) {
  const auto findings = Lint(
      "  m.Counter(\"training.steps\").Increment();\n"
      "  registry->Gauge(\"hash.load_factor\").Set(0.5);\n"
      "  m.Histo(\"serving.lookup_latency_us\", 1.0, 1.3, 64);\n"
      "  two.Counter(\"a.b2.c_d\");\n");
  EXPECT_FALSE(HasRule(findings, "metric-name"));
}

TEST(LintMetricNameTest, LookalikesAndNonLiteralsAreExempt) {
  const auto findings = Lint(
      "  m.GetCounter(\"NotTheRegistry\");\n"  // different method name
      "  m.Counter(name);\n"                   // non-literal argument
      "  // m.Counter(\"BadComment\") in a comment\n");
  EXPECT_FALSE(HasRule(findings, "metric-name"));
}

TEST(LintMetricNameTest, SuppressionCommentWorks) {
  const auto findings = Lint(
      "  m.Counter(\"Legacy.Name\");  // fvae-lint: allow(metric-name)\n");
  EXPECT_FALSE(HasRule(findings, "metric-name"));
}

// ---------- span-name ----------

TEST(LintSpanNameTest, BadNamesFireAcrossAllForms) {
  for (const char* expr :
       {"obs::TraceSpan span(\"ParseFrame\");",       // named variable
        "obs::TraceSpan(\"no_dots\");",               // temporary
        "FVAE_TRACE_SCOPE(\"net..parse\");",          // scope macro
        "recorder.RecordSpan(\"Net.Reply\", s, d);",  // explicit record
        "scratch.NoteSpan(\"queue wait\", s, d, ctx);"}) {
    const auto findings = Lint(std::string("  ") + expr + "\n");
    EXPECT_TRUE(HasRule(findings, "span-name")) << expr;
  }
}

TEST(LintSpanNameTest, DottedSnakeCasePathsStaySilent) {
  const auto findings = Lint(
      "  obs::TraceSpan parse_span(\"net.server.parse\");\n"
      "  FVAE_TRACE_SCOPE(\"train.step\");\n"
      "  recorder.RecordSpan(\"net.client.send\", start, dur, ctx, parent);\n"
      "  scratch.NoteSpan(\"serving.batcher.queue_wait\", s, d, ctx);\n");
  EXPECT_FALSE(HasRule(findings, "span-name"));
}

TEST(LintSpanNameTest, NonLiteralsAndLookalikesAreExempt) {
  const auto findings = Lint(
      "  obs::TraceSpan span(name);\n"       // non-literal argument
      "  MakeTraceSpanLike(\"NotASpan\");\n"  // different identifier
      "  // TraceSpan span(\"BadComment\") in a comment\n");
  EXPECT_FALSE(HasRule(findings, "span-name"));
}

TEST(LintSpanNameTest, SuppressionCommentWorks) {
  const auto findings = Lint(
      "  FVAE_TRACE_SCOPE(\"Legacy.Span\");  // fvae-lint: allow(span-name)\n");
  EXPECT_FALSE(HasRule(findings, "span-name"));
}

// ---------- lexer ----------

// ---------- atomic-write ----------

TEST(LintAtomicWriteTest, RawOfstreamFiresInDurableModules) {
  LintOptions options;
  options.ban_raw_ofstream = true;
  const auto findings = Lint(
      "void Save(const std::string& path) {\n"
      "  std::ofstream out(path, std::ios::binary);\n"
      "}\n",
      options);
  ASSERT_TRUE(HasRule(findings, "atomic-write"));
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(LintAtomicWriteTest, ReadersAndWrapperStaySilent) {
  LintOptions options;
  options.ban_raw_ofstream = true;
  const auto findings = Lint(
      "Status Load(const std::string& path) {\n"
      "  std::ifstream in(path, std::ios::binary);\n"
      "  AtomicFileWriter writer;\n"
      "  return writer.Commit();\n"
      "}\n",
      options);
  EXPECT_FALSE(HasRule(findings, "atomic-write"));
}

TEST(LintAtomicWriteTest, OffByDefaultAndSuppressible) {
  const std::string snippet =
      "void f() {\n"
      "  std::ofstream out(\"x\");  // fvae-lint: allow(atomic-write)\n"
      "}\n";
  EXPECT_FALSE(HasRule(Lint(snippet), "atomic-write"));
  LintOptions options;
  options.ban_raw_ofstream = true;
  EXPECT_FALSE(HasRule(Lint(snippet, options), "atomic-write"));
}

TEST(LintLexerTest, CommentsAndStringsNeverFire) {
  const auto findings = Lint(
      "// std::mutex in a comment\n"
      "/* rand() in a block\n"
      "   comment spanning lines: std::random_device */\n"
      "const char* s = \"std::mutex rand()\";\n"
      "const char* r = R\"(srand(1) std::shared_mutex)\";\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- lexer regressions ----------

TEST(CppLexerTest, DigitSeparatorsStayOneNumberToken) {
  const auto tokens = LexCpp("size_t n = 1'000'000;\n");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[3].kind, TokKind::kNumber);
  EXPECT_EQ(tokens[3].text, "1'000'000");
}

TEST(CppLexerTest, RawStringSpansLinesAndHidesCode) {
  const auto tokens = LexCpp(
      "const char* s = R\"(std::mutex m;\n"
      "rand();)\";\n"
      "int after = 0;\n");
  // Nothing inside the raw string becomes an identifier token.
  for (const auto& token : tokens) {
    EXPECT_NE(token.text, "mutex");
    EXPECT_NE(token.text, "rand");
  }
  // Line numbers account for the newline inside the literal.
  bool found_after = false;
  for (const auto& token : tokens) {
    if (token.kind == TokKind::kIdent && token.text == "after") {
      EXPECT_EQ(token.line, 3u);
      found_after = true;
    }
  }
  EXPECT_TRUE(found_after);
}

TEST(CppLexerTest, ContinuedPreprocessorDirectiveIsOneToken) {
  const auto tokens = LexCpp(
      "#define FOO(a) \\\n"
      "  ((a) + 1)\n"
      "int x = FOO(1);\n");
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens[0].kind, TokKind::kPreproc);
  // The directive swallowed its continuation line.
  EXPECT_NE(tokens[0].text.find("((a) + 1)"), std::string::npos);
}

TEST(CppLexerTest, CommentsAndStringsDoNotLeakRuleTriggers) {
  const auto findings = Lint(
      "// std::mutex commented_out;\n"
      "/* srand(42); */\n"
      "const char* t = \"std::shared_mutex in a string\";\n"
      "void f() {}\n");
  EXPECT_FALSE(HasRule(findings, "raw-mutex"));
  EXPECT_FALSE(HasRule(findings, "banned-random"));
}

// ---------- whole-program: lock-order cycles ----------

/// Wraps one synthetic TU as the whole program for AnalyzeProgram.
std::vector<Finding> AnalyzeOne(const std::string& content) {
  return AnalyzeProgram({SourceFile{"src/fixture.cc", content}});
}

TEST(LockOrderTest, DeclaredCycleFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      "  Mutex a_ FVAE_ACQUIRED_BEFORE(b_);\n"
      "  Mutex b_ FVAE_ACQUIRED_BEFORE(a_);\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "lock-cycle"));
  // The report prints the full cycle path through both locks.
  EXPECT_NE(findings[0].message.find("fvae::S::a_"), std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("fvae::S::b_"), std::string::npos)
      << findings[0].message;
}

TEST(LockOrderTest, ObservedNestingAgainstDeclaredOrderFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void Backwards() {\n"
      "    MutexLock l1(b_);\n"
      "    MutexLock l2(a_);\n"
      "  }\n"
      " private:\n"
      "  Mutex a_ FVAE_ACQUIRED_BEFORE(b_);\n"
      "  Mutex b_;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "lock-cycle"));
}

TEST(LockOrderTest, CrossFunctionCycleThroughCallGraphFires) {
  // f holds a_ and calls g, which takes b_; h holds b_ and calls k, which
  // takes a_ — a deadlock only visible through the call graph.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void f() {\n"
      "    MutexLock lock(a_);\n"
      "    g();\n"
      "  }\n"
      "  void g() { MutexLock lock(b_); }\n"
      "  void h() {\n"
      "    MutexLock lock(b_);\n"
      "    k();\n"
      "  }\n"
      "  void k() { MutexLock lock(a_); }\n"
      " private:\n"
      "  Mutex a_;\n"
      "  Mutex b_;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "lock-cycle"));
}

TEST(LockOrderTest, ConsistentOrderStaysSilent) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void Both() {\n"
      "    MutexLock l1(a_);\n"
      "    MutexLock l2(b_);\n"
      "  }\n"
      "  void AlsoBoth() {\n"
      "    MutexLock l1(a_);\n"
      "    MutexLock l2(b_);\n"
      "  }\n"
      " private:\n"
      "  Mutex a_ FVAE_ACQUIRED_BEFORE(b_);\n"
      "  Mutex b_;\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "lock-cycle"));
}

// ---------- whole-program: hot-path purity ----------

TEST(HotPathTest, TransitiveAllocationUnderNoallocFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void Encode() FVAE_HOT FVAE_NOALLOC { Helper(); }\n"
      "  void Helper() { buf_.push_back(1.0f); }\n"
      " private:\n"
      "  std::vector<float> buf_;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "hot-alloc"));
  // The chain from the annotated root to the allocation is reported.
  EXPECT_NE(findings[0].message.find("Encode"), std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("Helper"), std::string::npos)
      << findings[0].message;
}

TEST(HotPathTest, NewExpressionUnderNoallocFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "void Encode() FVAE_HOT FVAE_NOALLOC {\n"
      "  float* p = new float[16];\n"
      "  delete[] p;\n"
      "}\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(HasRule(findings, "hot-alloc"));
}

TEST(HotPathTest, LockAcquisitionOnHotPathFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void Serve() FVAE_HOT { MutexLock lock(mu_); }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "hot-lock"));
}

TEST(HotPathTest, ExemptLockOnHotPathStaysSilent) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void Serve() FVAE_HOT { MutexLock lock(mu_); }\n"
      " private:\n"
      "  Mutex mu_ FVAE_HOT_LOCK_EXEMPT;\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "hot-lock"));
}

TEST(HotPathTest, TransitiveIoAndLoggingFire) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "void Reload() {\n"
      "  std::ifstream in(\"dump.bin\");\n"
      "  FVAE_LOG(INFO) << \"reloading\";\n"
      "}\n"
      "void Serve() FVAE_HOT { Reload(); }\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(HasRule(findings, "hot-io"));
  EXPECT_TRUE(HasRule(findings, "hot-log"));
}

TEST(HotPathTest, HotWithoutNoallocAllowsAllocations) {
  // FVAE_HOT alone bans logging/IO/locks but not heap use.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "void Serve() FVAE_HOT {\n"
      "  std::vector<int> scratch;\n"
      "  scratch.push_back(1);\n"
      "}\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "hot-alloc"));
  EXPECT_TRUE(findings.empty());
}

TEST(HotPathTest, TraceSpanOnHotPathFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "void Helper() {\n"
      "  obs::TraceSpan span(\"net.server.parse\");\n"
      "}\n"
      "void Serve() FVAE_HOT { Helper(); }\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "hot-trace"));
  // The chain from the annotated root to the construction is reported.
  EXPECT_NE(findings[0].message.find("Serve"), std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("Helper"), std::string::npos)
      << findings[0].message;
}

TEST(HotPathTest, TraceScopeMacroOnHotPathFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "void Serve() FVAE_HOT {\n"
      "  FVAE_TRACE_SCOPE(\"serving.lookup\");\n"
      "}\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(HasRule(findings, "hot-trace"));
}

TEST(HotPathTest, NoteSpanOnHotPathStaysSilent) {
  // SpanScratch::NoteSpan is the sanctioned hot-path span API: a bounded
  // write into pre-reserved storage, flushed off the hot path.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "void Serve(obs::SpanScratch& scratch) FVAE_HOT {\n"
      "  scratch.NoteSpan(\"serving.batcher.encode\", 0, 1, ctx);\n"
      "}\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "hot-trace"));
}

TEST(HotPathTest, TraceSpanOffHotPathStaysSilent) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "void Offline() {\n"
      "  obs::TraceSpan span(\"checkpoint.write\");\n"
      "}\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "hot-trace"));
}

TEST(HotPathTest, TraceSpanSuppressionCommentWorks) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "void Serve() FVAE_HOT {\n"
      "  obs::TraceSpan span(\"serving.slow_init\");"
      "  // fvae-lint: allow(hot-trace)\n"
      "}\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "hot-trace"));
}

TEST(HotPathTest, SuppressionCommentSilencesFinding) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "void Encode() FVAE_HOT FVAE_NOALLOC {\n"
      "  buf.resize(64);  // fvae-lint: allow(hot-alloc)\n"
      "}\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "hot-alloc"));
}

TEST(HotPathTest, ColdFunctionsAreNotChecked) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "void Offline() {\n"
      "  std::ofstream out(\"dump.bin\");  // fvae-lint: allow(atomic-write)\n"
      "  std::vector<int> v;\n"
      "  v.push_back(1);\n"
      "}\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- whole-program: dispatch-table indirection ----------

TEST(DispatchTableTest, HotAllocThroughDispatchTableFires) {
  // A `t->member = Target;` binding plus a `Table().member(...)` call site
  // must give the hot-path walk an edge into the bound kernel.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "struct KernelTable {\n"
      "  void (*axpy)(float, const float*, float*, size_t);\n"
      "};\n"
      "KernelTable g_table;\n"
      "void AxpyImpl(float a, const float* x, float* y, size_t n) {\n"
      "  void* scratch = malloc(n);\n"
      "  free(scratch);\n"
      "}\n"
      "void Fill(KernelTable* t) { t->axpy = AxpyImpl; }\n"
      "const KernelTable& Kernels() { return g_table; }\n"
      "void Encode() FVAE_HOT FVAE_NOALLOC {\n"
      "  Kernels().axpy(1.0f, nullptr, nullptr, 8);\n"
      "}\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "hot-alloc"));
  // The chain names both the annotated root and the dispatched kernel.
  EXPECT_NE(findings[0].message.find("Encode"), std::string::npos)
      << findings[0].message;
  EXPECT_NE(findings[0].message.find("AxpyImpl"), std::string::npos)
      << findings[0].message;
}

TEST(DispatchTableTest, PureKernelThroughDispatchStaysSilent) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "struct KernelTable {\n"
      "  void (*tanh_inplace)(float*, size_t);\n"
      "};\n"
      "KernelTable g_table;\n"
      "void TanhImpl(float* x, size_t n) {\n"
      "  for (size_t i = 0; i < n; ++i) x[i] = std::tanh(x[i]);\n"
      "}\n"
      "void Fill(KernelTable* t) { t->tanh_inplace = TanhImpl; }\n"
      "const KernelTable& Kernels() { return g_table; }\n"
      "void Encode() FVAE_HOT FVAE_NOALLOC {\n"
      "  Kernels().tanh_inplace(nullptr, 8);\n"
      "}\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(findings.empty());
}

TEST(DispatchTableTest, QualifiedAddressOfBindingResolves) {
  // `t->member = &detail::Target;` — optional address-of, :: chain.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "struct KernelTable {\n"
      "  double (*dot)(const float*, const float*, size_t);\n"
      "};\n"
      "KernelTable g_table;\n"
      "namespace kernel_detail {\n"
      "double DotImpl(const float* a, const float* b, size_t n) {\n"
      "  FVAE_LOG(INFO) << \"dot\";\n"
      "  return 0.0;\n"
      "}\n"
      "}  // namespace kernel_detail\n"
      "void Fill(KernelTable* t) { t->dot = &kernel_detail::DotImpl; }\n"
      "const KernelTable& Kernels() { return g_table; }\n"
      "void Serve() FVAE_HOT {\n"
      "  Kernels().dot(nullptr, nullptr, 4);\n"
      "}\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "hot-log"));
  EXPECT_NE(findings[0].message.find("DotImpl"), std::string::npos)
      << findings[0].message;
}

TEST(DispatchTableTest, UnboundMemberCallStaysUnresolved) {
  // A member call with no dispatch binding anywhere must not invent edges:
  // the dirty helper shares a *member* name with nothing bound to it.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "struct Sink { void (*emit)(int); };\n"
      "Sink g_sink;\n"
      "const Sink& TheSink() { return g_sink; }\n"
      "void Encode() FVAE_HOT FVAE_NOALLOC {\n"
      "  TheSink().emit(1);\n"
      "}\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- whole-program: event-loop blocking discipline ----------

TEST(EventLoopTest, BlockingCallInLoopCallbackFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class L {\n"
      " public:\n"
      "  FVAE_EVENT_LOOP void OnReady() {\n"
      "    ::usleep(1000);\n"
      "  }\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "loop-block"));
  EXPECT_NE(findings[0].message.find("usleep"), std::string::npos);
}

TEST(EventLoopTest, TransitiveBlockingThroughHelperFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class L {\n"
      " public:\n"
      "  FVAE_EVENT_LOOP void OnReady() { Helper(); }\n"
      "  void Helper() { ::poll(nullptr, 0, -1); }\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "loop-block"));
  // The chain from the annotated root is printed.
  EXPECT_NE(findings[0].message.find("OnReady -> fvae::L::Helper"),
            std::string::npos)
      << findings[0].message;
}

TEST(EventLoopTest, NonBlockingCallbackStaysSilent) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class L {\n"
      " public:\n"
      "  FVAE_EVENT_LOOP void OnReady() {\n"
      "    ::recv(fd_, buf_, 4096, MSG_DONTWAIT);\n"
      "    ::send(fd_, buf_, 4096, MSG_NOSIGNAL | MSG_DONTWAIT);\n"
      "    counter_ += 1;\n"
      "  }\n"
      " private:\n"
      "  int fd_ = -1;\n"
      "  long counter_ = 0;\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(EventLoopTest, RecvWithoutDontwaitFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class L {\n"
      " public:\n"
      "  FVAE_EVENT_LOOP void OnReady() { ::recv(fd_, buf_, 4096, 0); }\n"
      " private:\n"
      "  int fd_ = -1;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "loop-block"));
  EXPECT_NE(findings[0].message.find("recv without MSG_DONTWAIT"),
            std::string::npos)
      << findings[0].message;
}

TEST(EventLoopTest, CondvarWaitAndJoinFire) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class L {\n"
      " public:\n"
      "  FVAE_EVENT_LOOP void OnReady() {\n"
      "    cv_.Wait(mutex_);\n"
      "    worker_.join();\n"
      "  }\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(HasRule(findings, "loop-block"));
}

TEST(EventLoopTest, MayBlockCalleeFiresAtCallSiteWithoutDescent) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "FVAE_MAY_BLOCK void SendAll() {\n"
      "  ::poll(nullptr, 0, -1);\n"
      "}\n"
      "class L {\n"
      " public:\n"
      "  FVAE_EVENT_LOOP void OnReady() { SendAll(); }\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "loop-may-block"));
  // The concession is total: the poll inside the conceded body must not be
  // reported a second time.
  EXPECT_FALSE(HasRule(findings, "loop-block"));
}

TEST(EventLoopTest, NonExemptLockFiresExemptLocksStaySilent) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class L {\n"
      " public:\n"
      "  FVAE_EVENT_LOOP void OnReady() {\n"
      "    MutexLock a(plain_mutex_);\n"
      "    MutexLock b(loop_mutex_);\n"
      "    MutexLock c(hot_mutex_);\n"
      "  }\n"
      " private:\n"
      "  Mutex plain_mutex_;\n"
      "  Mutex loop_mutex_ FVAE_LOOP_LOCK_EXEMPT;\n"
      "  Mutex hot_mutex_ FVAE_HOT_LOCK_EXEMPT;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "loop-lock"));
  // Exactly one finding: the plain mutex. Both exemption macros waive.
  EXPECT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("plain_mutex_"), std::string::npos);
}

TEST(EventLoopTest, AllowLoopPathPrunesTheCallEdge) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class L {\n"
      " public:\n"
      "  FVAE_EVENT_LOOP void OnReady() {\n"
      "    Helper();  // fvae-lint: allow(loop-path)\n"
      "  }\n"
      "  void Helper() { ::usleep(1000); }\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- whole-program: guarded-by enforcement ----------

TEST(GuardedByTest, UnguardedAccessFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class Counter {\n"
      " public:\n"
      "  void Add(long d) { value_ += d; }\n"
      " private:\n"
      "  Mutex mutex_;\n"
      "  long value_ FVAE_GUARDED_BY(mutex_);\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "guarded-by"));
  EXPECT_NE(findings[0].message.find("value_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("mutex_"), std::string::npos);
}

TEST(GuardedByTest, RaiiGuardStaysSilent) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class Counter {\n"
      " public:\n"
      "  void Add(long d) {\n"
      "    MutexLock lock(mutex_);\n"
      "    value_ += d;\n"
      "  }\n"
      " private:\n"
      "  Mutex mutex_;\n"
      "  long value_ FVAE_GUARDED_BY(mutex_);\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(GuardedByTest, RequiresOnPrototypeCoversOutOfLineDefinition) {
  // The annotation sits on the in-class prototype only — LinkProgram must
  // merge it onto the definition (the RequestBatcher::TakeBatch pattern).
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class Batcher {\n"
      " public:\n"
      "  void TakeBatch() FVAE_REQUIRES(mutex_);\n"
      " private:\n"
      "  Mutex mutex_;\n"
      "  long queue_ FVAE_GUARDED_BY(mutex_);\n"
      "};\n"
      "void Batcher::TakeBatch() { queue_ += 1; }\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(GuardedByTest, ManualLockWithEarlyExitUnlockStaysSilent) {
  // `mutex_.Unlock(); return;` is an early exit: on the fall-through path
  // the lock is still held, so the accesses after the if are guarded.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class Q {\n"
      " public:\n"
      "  void Drain() {\n"
      "    mutex_.Lock();\n"
      "    if (stopped_) {\n"
      "      mutex_.Unlock();\n"
      "      return;\n"
      "    }\n"
      "    stopped_ = true;\n"
      "    mutex_.Unlock();\n"
      "  }\n"
      " private:\n"
      "  Mutex mutex_;\n"
      "  bool stopped_ FVAE_GUARDED_BY(mutex_);\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(GuardedByTest, AccessAfterFinalUnlockFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class Q {\n"
      " public:\n"
      "  void Drain() {\n"
      "    mutex_.Lock();\n"
      "    mutex_.Unlock();\n"
      "    stopped_ = true;\n"
      "  }\n"
      " private:\n"
      "  Mutex mutex_;\n"
      "  bool stopped_ FVAE_GUARDED_BY(mutex_);\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(HasRule(findings, "guarded-by"));
}

TEST(GuardedByTest, ReceiverFormMatchesReceiverScopedGuard) {
  // The trace-buffer pattern: per-object locks named via the receiver.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "struct Buffer {\n"
      "  Mutex mutex;\n"
      "  long events FVAE_GUARDED_BY(mutex);\n"
      "};\n"
      "class Recorder {\n"
      " public:\n"
      "  void Good(Buffer& buffer) {\n"
      "    MutexLock lock(buffer.mutex);\n"
      "    buffer.events += 1;\n"
      "  }\n"
      "  void Bad(Buffer& buffer) { buffer.events += 1; }\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "guarded-by"));
  EXPECT_EQ(findings.size(), 1u);  // only Bad()
}

TEST(GuardedByTest, ConstructorAndSuppressionAreExempt) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class Counter {\n"
      " public:\n"
      "  Counter() { value_ = 0; }\n"
      "  long Read() {\n"
      "    return value_;  // fvae-lint: allow(guarded-by)\n"
      "  }\n"
      " private:\n"
      "  Mutex mutex_;\n"
      "  long value_ FVAE_GUARDED_BY(mutex_);\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(GuardedByTest, TreeAnnotationsAreActuallyExtracted) {
  // RepositoryIsClean proving "no findings" is only meaningful if the
  // checker sees the tree's annotations at all; pin the extraction volume
  // so a silent regression cannot masquerade as a clean tree. The clang
  // -Wthread-safety CI job checks the same ~20 declarations, so agreement
  // with Clang on src/ is "both checkers pass on the same tree".
  namespace fs = std::filesystem;
  std::vector<SourceFile> files;
  for (const auto& entry :
       fs::recursive_directory_iterator(fs::path(FVAE_SOURCE_DIR) / "src")) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream body;
    body << in.rdbuf();
    files.push_back(
        {fs::relative(entry.path(), FVAE_SOURCE_DIR).generic_string(),
         body.str()});
  }
  const ProgramFacts pf = LinkProgram(files);
  EXPECT_GE(pf.guarded.size(), 15u);
  size_t event_loop_roots = 0;
  size_t may_block = 0;
  for (const FunctionFacts& fn : pf.functions) {
    event_loop_roots += fn.event_loop ? 1 : 0;
    may_block += fn.may_block ? 1 : 0;
  }
  EXPECT_GE(event_loop_roots, 8u);   // the RpcServer loop-thread methods
  EXPECT_GE(may_block, 5u);          // SendAll/RecvAll/WaitReadable/...
  bool post_mutex_loop_exempt = false;
  for (const LockDecl& lock : pf.locks) {
    if (lock.id == "fvae::net::EpollLoop::post_mutex_") {
      post_mutex_loop_exempt = lock.loop_exempt;
    }
  }
  EXPECT_TRUE(post_mutex_loop_exempt);
}

// ---------- fd-leak dataflow (src/net/ only) ----------

TEST(FdLeakTest, UnwrappedProducersFire) {
  LintOptions options;
  options.allow_raw_sockets = true;
  for (const char* expr :
       {"int a = ::socket(AF_INET, SOCK_STREAM, 0);",
        "int b = ::accept4(lfd, nullptr, nullptr, SOCK_NONBLOCK);",
        "int c = ::eventfd(0, EFD_NONBLOCK);",
        "int d = ::epoll_create1(EPOLL_CLOEXEC);",
        "int e = open(\"/dev/null\", 0);"}) {
    const auto findings =
        Lint(std::string("void F() { ") + expr + " }\n", options);
    EXPECT_TRUE(HasRule(findings, "fd-leak")) << expr;
  }
}

TEST(FdLeakTest, ImmediateWrapsStaySilent) {
  LintOptions options;
  options.allow_raw_sockets = true;
  const auto findings = Lint(
      "void F() {\n"
      "  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));\n"
      "  Fd conn(::accept4(lfd, nullptr, nullptr, SOCK_NONBLOCK));\n"
      "  wake_fd_.Reset(::eventfd(0, EFD_NONBLOCK));\n"
      "  epoll_fd_->Reset(\n"
      "      ::epoll_create1(EPOLL_CLOEXEC));\n"
      "  return Fd(::socket(AF_INET, SOCK_DGRAM, 0));\n"
      "}\n",
      options);
  EXPECT_FALSE(HasRule(findings, "fd-leak"));
}

TEST(FdLeakTest, MemberOpenAndForeignQualificationAreExempt) {
  LintOptions options;
  options.allow_raw_sockets = true;
  const auto findings = Lint(
      "void F() {\n"
      "  file.open(\"x\");\n"
      "  stream->open(\"y\");\n"
      "  util::open(\"z\");\n"
      "}\n",
      options);
  EXPECT_FALSE(HasRule(findings, "fd-leak"));
}

TEST(FdLeakTest, SuppressionCommentWorks) {
  LintOptions options;
  options.allow_raw_sockets = true;
  const auto findings = Lint(
      "void F() {\n"
      "  int raw = ::socket(AF_INET, SOCK_STREAM, 0);"
      "  // fvae-lint: allow(fd-leak)\n"
      "}\n",
      options);
  EXPECT_FALSE(HasRule(findings, "fd-leak"));
}

TEST(FdLeakTest, OutsideNetTheRawSocketRuleOwnsTheCall) {
  // Elsewhere the producer call itself is banned; fd-leak is net-only.
  const auto findings =
      Lint("void F() { int a = ::socket(AF_INET, SOCK_STREAM, 0); }\n");
  EXPECT_TRUE(HasRule(findings, "raw-socket"));
  EXPECT_FALSE(HasRule(findings, "fd-leak"));
}

// ---------- exhaustive switches over wire enums ----------

TEST(VerbSwitchTest, MissingCaseWithoutDefaultFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae::net {\n"
      "enum class Verb : uint8_t { kHealth, kLookup, kEncodeFoldIn };\n"
      "void Dispatch(Verb verb) {\n"
      "  switch (verb) {\n"
      "    case Verb::kHealth:\n"
      "      break;\n"
      "    case Verb::kLookup:\n"
      "      break;\n"
      "  }\n"
      "}\n"
      "}  // namespace fvae::net\n");
  ASSERT_TRUE(HasRule(findings, "verb-switch"));
  EXPECT_NE(findings[0].message.find("kEncodeFoldIn"), std::string::npos)
      << findings[0].message;
}

TEST(VerbSwitchTest, FullCoverageStaysSilent) {
  const auto findings = AnalyzeOne(
      "namespace fvae::net {\n"
      "enum class Verb : uint8_t { kHealth, kLookup };\n"
      "void Dispatch(Verb verb) {\n"
      "  switch (verb) {\n"
      "    case Verb::kHealth:\n"
      "      break;\n"
      "    case Verb::kLookup:\n"
      "      break;\n"
      "  }\n"
      "}\n"
      "}  // namespace fvae::net\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(VerbSwitchTest, JustifiedDefaultWaivesMissingCases) {
  const auto findings = AnalyzeOne(
      "namespace fvae::net {\n"
      "enum class Verb : uint8_t { kHealth, kLookup, kStats };\n"
      "void Dispatch(Verb verb) {\n"
      "  switch (verb) {\n"
      "    case Verb::kHealth:\n"
      "      break;\n"
      "    default:  // unknown verbs answer kInvalidArgument\n"
      "      break;\n"
      "  }\n"
      "}\n"
      "}  // namespace fvae::net\n");
  EXPECT_TRUE(findings.empty()) << findings[0].message;
}

TEST(VerbSwitchTest, BareDefaultDoesNotWaive) {
  const auto findings = AnalyzeOne(
      "namespace fvae::net {\n"
      "enum class Verb : uint8_t { kHealth, kLookup, kStats };\n"
      "void Dispatch(Verb verb) {\n"
      "  switch (verb) {\n"
      "    case Verb::kHealth:\n"
      "      break;\n"
      "    default:\n"
      "      break;\n"
      "  }\n"
      "}\n"
      "}  // namespace fvae::net\n");
  EXPECT_TRUE(HasRule(findings, "verb-switch"));
}

TEST(VerbSwitchTest, NonEnumSwitchesAreIgnored) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "void F(int x) {\n"
      "  switch (x) {\n"
      "    case 1:\n"
      "      break;\n"
      "  }\n"
      "}\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(findings.empty());
}

// ---------- CFG construction ----------

/// Lexes `src` and builds the CFG of the first function body: the token
/// range between the first '{' and its matching '}'.
Cfg CfgOf(const std::string& src) {
  const std::vector<Tok> toks = LexCpp(src);
  size_t open = 0;
  while (open < toks.size() &&
         !(toks[open].kind == TokKind::kPunct && toks[open].text == "{")) {
    ++open;
  }
  int depth = 0;
  size_t close = open;
  for (; close < toks.size(); ++close) {
    if (toks[close].kind != TokKind::kPunct) continue;
    if (toks[close].text == "{") ++depth;
    if (toks[close].text == "}" && --depth == 0) break;
  }
  return BuildCfg(toks, open + 1, close);
}

TEST(CfgTest, IfElseFormsADiamond) {
  const Cfg cfg = CfgOf("void f() { if (a) { b(); } else { c(); } d(); }");
  EXPECT_FALSE(cfg.truncated);
  ASSERT_GE(cfg.nodes.size(), 5u);
  EXPECT_TRUE(cfg.reachable[Cfg::kExit]);
  // Some node branches two ways: the condition node.
  bool has_branch = false;
  for (const CfgNode& node : cfg.nodes) {
    if (node.succ.size() >= 2) has_branch = true;
  }
  EXPECT_TRUE(has_branch);
}

TEST(CfgTest, InfiniteLoopLeavesExitUnreachable) {
  // `for (;;)` with no break has no path to the function exit; the code
  // after the loop is dead.
  const Cfg cfg = CfgOf("void f() { for (;;) { tick(); } cleanup(); }");
  EXPECT_FALSE(cfg.truncated);
  EXPECT_FALSE(cfg.reachable[Cfg::kExit]);
}

TEST(CfgTest, BreakRestoresThePathToExit) {
  const Cfg cfg = CfgOf(
      "void f() { for (;;) { if (done) { break; } tick(); } cleanup(); }");
  EXPECT_FALSE(cfg.truncated);
  EXPECT_TRUE(cfg.reachable[Cfg::kExit]);
}

TEST(CfgTest, EarlyReturnMakesTrailingCodeUnreachable) {
  const Cfg cfg = CfgOf("void f() { a(); return; b(); }");
  EXPECT_FALSE(cfg.truncated);
  EXPECT_TRUE(cfg.reachable[Cfg::kExit]);
  // Find the node holding b() — it must be unreachable.
  bool found_dead_b = false;
  for (size_t n = 0; n < cfg.nodes.size(); ++n) {
    if (cfg.reachable[n]) continue;
    if (!cfg.nodes[n].stmts.empty()) found_dead_b = true;
  }
  EXPECT_TRUE(found_dead_b);
}

TEST(CfgTest, PathologicalNestingSetsTruncated) {
  std::string src = "void f() { ";
  for (int i = 0; i < 220; ++i) src += "if (x) { ";
  src += "y(); ";
  for (int i = 0; i < 220; ++i) src += "} ";
  src += "}";
  const Cfg cfg = CfgOf(src);
  EXPECT_TRUE(cfg.truncated);  // analyses must skip this function
}

// ---------- dataflow solver ----------

Cfg ChainCfg() {
  // entry(0) -> 2 -> 3 -> exit(1)
  Cfg cfg;
  cfg.nodes.resize(4);
  auto edge = [&cfg](size_t a, size_t b) {
    cfg.nodes[a].succ.push_back(b);
    cfg.nodes[b].pred.push_back(a);
  };
  edge(Cfg::kEntry, 2);
  edge(2, 3);
  edge(3, Cfg::kExit);
  cfg.reachable.assign(4, true);
  return cfg;
}

TEST(DataflowTest, BackwardDirectionPropagatesFromExit) {
  const Cfg cfg = ChainCfg();
  FlowState boundary;
  boundary.vals["q"] = Flow::kB;  // "q live at exit"
  auto transfer = [](size_t node, const FlowState& in) {
    FlowState out = in;
    if (node == 2) out.vals.erase("q");  // node 2 defines q: kills liveness
    return out;
  };
  auto join = [](FlowState* acc, const FlowState& other) {
    JoinFlowStates(acc, other, Flow::kA);
  };
  const auto result = SolveDataflow(cfg, DataflowDir::kBackward, boundary,
                                    FlowState{}, transfer, join);
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.in[3].vals.count("q"), 1u);  // live between 2 and exit
  EXPECT_EQ(result.in[Cfg::kEntry].vals.count("q"), 0u);  // killed at 2
}

TEST(DataflowTest, DiamondJoinProducesMixed) {
  // entry -> {2, 3} -> 4 -> exit; only node 2 establishes x.
  Cfg cfg;
  cfg.nodes.resize(5);
  auto edge = [&cfg](size_t a, size_t b) {
    cfg.nodes[a].succ.push_back(b);
    cfg.nodes[b].pred.push_back(a);
  };
  edge(Cfg::kEntry, 2);
  edge(Cfg::kEntry, 3);
  edge(2, 4);
  edge(3, 4);
  edge(4, Cfg::kExit);
  cfg.reachable.assign(5, true);
  auto transfer = [](size_t node, const FlowState& in) {
    FlowState out = in;
    if (node == 2) out.vals["x"] = Flow::kB;
    return out;
  };
  auto join = [](FlowState* acc, const FlowState& other) {
    JoinFlowStates(acc, other, Flow::kA);
  };
  const auto result = SolveDataflow(cfg, DataflowDir::kForward, FlowState{},
                                    FlowState{}, transfer, join);
  EXPECT_TRUE(result.converged);
  ASSERT_EQ(result.in[4].vals.count("x"), 1u);
  EXPECT_EQ(result.in[4].vals.at("x"), Flow::kMixed);
}

TEST(DataflowTest, BudgetBoundsNonMonotoneTransfers) {
  // A transfer that flips x on every visit of node 3 never reaches a
  // fixpoint on the 2 <-> 3 cycle; the per-function budget must stop the
  // solve and mark it non-converged instead of hanging.
  Cfg cfg;
  cfg.nodes.resize(4);
  auto edge = [&cfg](size_t a, size_t b) {
    cfg.nodes[a].succ.push_back(b);
    cfg.nodes[b].pred.push_back(a);
  };
  edge(Cfg::kEntry, 2);
  edge(2, 3);
  edge(3, 2);
  edge(3, Cfg::kExit);
  cfg.reachable.assign(4, true);
  auto transfer = [](size_t node, const FlowState& in) {
    FlowState out = in;
    if (node == 3) {
      if (out.vals.count("x") > 0) {
        out.vals.erase("x");
      } else {
        out.vals["x"] = Flow::kB;
      }
    }
    return out;
  };
  auto join = [](FlowState* acc, const FlowState& other) {
    JoinFlowStates(acc, other, Flow::kA);
  };
  const auto result = SolveDataflow(cfg, DataflowDir::kForward, FlowState{},
                                    FlowState{}, transfer, join);
  EXPECT_FALSE(result.converged);
}

TEST(DataflowTest, TruncatedCfgNeverConverges) {
  Cfg cfg;
  cfg.nodes.resize(2);
  cfg.reachable.assign(2, true);
  cfg.truncated = true;
  auto transfer = [](size_t, const FlowState& in) { return in; };
  auto join = [](FlowState* acc, const FlowState& other) {
    JoinFlowStates(acc, other, Flow::kA);
  };
  const auto result = SolveDataflow(cfg, DataflowDir::kForward, FlowState{},
                                    FlowState{}, transfer, join);
  EXPECT_FALSE(result.converged);
}

// ---------- whole-program: status-path ----------

TEST(StatusPathTest, StatusDroppedOnEveryPathFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void F() {\n"
      "    Status st = Step();\n"
      "    counter_ = counter_ + 1;\n"
      "  }\n"
      " private:\n"
      "  int counter_ = 0;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "status-path"));
}

TEST(StatusPathTest, StatusDroppedOnSomePathFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void F() {\n"
      "    Status st = Step();\n"
      "    if (counter_ > 0) {\n"
      "      return;\n"  // drops st on this path only
      "    }\n"
      "    (void)st;\n"
      "  }\n"
      " private:\n"
      "  int counter_ = 0;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "status-path"));
  bool some_path = false;
  for (const Finding& f : findings) {
    if (f.rule == "status-path" &&
        f.message.find("some path") != std::string::npos) {
      some_path = true;
    }
  }
  EXPECT_TRUE(some_path);
}

TEST(StatusPathTest, CheckedOnEveryPathStaysSilent) {
  // Control-flow twin of the fixtures above: every path consumes st.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void F() {\n"
      "    Status st = Step();\n"
      "    if (!st.ok()) {\n"
      "      return;\n"
      "    }\n"
      "    (void)st;\n"
      "  }\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "status-path"));
}

TEST(StatusPathTest, OverwritingUnconsumedStatusFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  Status F() {\n"
      "    Status st = Step();\n"
      "    st = Step();\n"  // first result silently dropped
      "    return st;\n"
      "  }\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "status-path"));
  EXPECT_NE(findings[0].message.find("overwritten"), std::string::npos)
      << findings[0].message;
}

TEST(StatusPathTest, SummariesDistinguishConsumingCallees) {
  // Stash is resolvable and does NOT take a Status parameter, so passing
  // st to it is not consumption; Check takes one, so it is. Both callees
  // are defined in the TU — an unresolvable callee would silence both.
  const auto fire = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void Stash(int v) { counter_ = v; }\n"
      "  void F() {\n"
      "    Status st = Step();\n"
      "    Stash(st);\n"
      "  }\n"
      " private:\n"
      "  int counter_ = 0;\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_TRUE(HasRule(fire, "status-path"));
  const auto silent = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void Check(Status st) { (void)st; }\n"
      "  void F() {\n"
      "    Status st = Step();\n"
      "    Check(st);\n"
      "  }\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(silent, "status-path"));
}

TEST(StatusPathTest, SuppressionOnTheDeclarationLineIsHonored) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void F() {\n"
      "    Status st = Step();  // fvae-lint: allow(status-path)\n"
      "  }\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "status-path"));
}

// ---------- whole-program: resource-escape ----------

TEST(ResourceEscapeTest, TimerHandleDroppedOnSomePathFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class T {\n"
      " public:\n"
      "  void Arm() {\n"
      "    TimerId id = wheel_.Schedule(100, 0);\n"
      "    if (armed_ > 0) {\n"
      "      return;\n"  // the handle leaks here
      "    }\n"
      "    wheel_.Cancel(id);\n"
      "  }\n"
      " private:\n"
      "  TimerWheel wheel_;\n"
      "  int armed_ = 0;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "resource-escape"));
}

TEST(ResourceEscapeTest, TimerHandleCancelledOrStoredStaysSilent) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class T {\n"
      " public:\n"
      "  void Arm() {\n"
      "    TimerId id = wheel_.Schedule(100, 0);\n"
      "    if (armed_ > 0) {\n"
      "      pending_ = id;\n"  // escapes into a member: tracked elsewhere
      "      return;\n"
      "    }\n"
      "    wheel_.Cancel(id);\n"
      "  }\n"
      " private:\n"
      "  TimerWheel wheel_;\n"
      "  TimerId pending_;\n"
      "  int armed_ = 0;\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "resource-escape"));
}

TEST(ResourceEscapeTest, WriterAbandonedOnVisibleEarlyReturnFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class W {\n"
      " public:\n"
      "  Status Save() {\n"
      "    AtomicFileWriter writer;\n"
      "    Status st = writer.Open(path_);\n"
      "    if (!st.ok()) {\n"
      "      return st;\n"  // neither Commit nor Abort on this path
      "    }\n"
      "    return writer.Commit();\n"
      "  }\n"
      " private:\n"
      "  std::string path_;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "resource-escape"));
}

TEST(ResourceEscapeTest, WriterAbortedOnEveryPathStaysSilent) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class W {\n"
      " public:\n"
      "  Status Save() {\n"
      "    AtomicFileWriter writer;\n"
      "    Status st = writer.Open(path_);\n"
      "    if (!st.ok()) {\n"
      "      writer.Abort();\n"
      "      return st;\n"
      "    }\n"
      "    return writer.Commit();\n"
      "  }\n"
      " private:\n"
      "  std::string path_;\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "resource-escape"));
}

TEST(ResourceEscapeTest, LocalFdRegistrationWithoutDelFires) {
  const auto fire = AnalyzeOne(
      "namespace fvae {\n"
      "class E {\n"
      " public:\n"
      "  void Watch() {\n"
      "    int fd = NewEventFd();\n"
      "    loop_.Add(fd, false, 0);\n"
      "    if (failed_ > 0) {\n"
      "      return;\n"  // fd stays registered with no owner
      "    }\n"
      "    loop_.Del(fd);\n"
      "  }\n"
      " private:\n"
      "  EpollLoop loop_;\n"
      "  int failed_ = 0;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(fire, "resource-escape"));
  // Registering a *borrowed* descriptor (`.get()` of an owner that lives
  // on) creates no obligation here.
  const auto silent = AnalyzeOne(
      "namespace fvae {\n"
      "class E {\n"
      " public:\n"
      "  void Watch() {\n"
      "    int fd = conn_.get();\n"
      "    loop_.Add(fd, false, 0);\n"
      "  }\n"
      " private:\n"
      "  EpollLoop loop_;\n"
      "  Fd conn_;\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(silent, "resource-escape"));
}

TEST(ResourceEscapeTest, SuppressionOnTheAcquireLineIsHonored) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class T {\n"
      " public:\n"
      "  void Arm() {\n"
      "    TimerId id = wheel_.Schedule(100, 0);"
      "  // fvae-lint: allow(resource-escape)\n"
      "  }\n"
      " private:\n"
      "  TimerWheel wheel_;\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "resource-escape"));
}

// ---------- whole-program: lock-balance ----------

TEST(LockBalanceTest, LockHeldAtExitOnSomePathFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class L {\n"
      " public:\n"
      "  void Bad() {\n"
      "    mu_.Lock();\n"
      "    if (size_ > 0) {\n"
      "      return;\n"  // leaks the lock
      "    }\n"
      "    mu_.Unlock();\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  int size_ = 0;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "lock-balance"));
}

TEST(LockBalanceTest, DoubleReleaseFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class L {\n"
      " public:\n"
      "  void Twice() {\n"
      "    mu_.Lock();\n"
      "    mu_.Unlock();\n"
      "    mu_.Unlock();\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "lock-balance"));
  EXPECT_NE(findings[0].message.find("release"), std::string::npos)
      << findings[0].message;
}

TEST(LockBalanceTest, WorkerLoopHandoffPatternStaysSilent) {
  // The request_batcher WorkerLoop shape: lock before an infinite loop,
  // unlock+return inside, unlock-work-relock around the work. Balanced on
  // every path that can actually exit — the `for (;;)` head has no edge
  // to the code after the loop, so the held state there never reaches the
  // function exit.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class L {\n"
      " public:\n"
      "  void Run() {\n"
      "    mu_.Lock();\n"
      "    for (;;) {\n"
      "      if (stop_ > 0) {\n"
      "        mu_.Unlock();\n"
      "        return;\n"
      "      }\n"
      "      mu_.Unlock();\n"
      "      Work();\n"
      "      mu_.Lock();\n"
      "    }\n"
      "  }\n"
      "  void Work() {}\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  int stop_ = 0;\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "lock-balance"));
}

TEST(LockBalanceTest, SuppressionOnTheAcquireLineIsHonored) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class L {\n"
      " public:\n"
      "  void Bad() {\n"
      "    mu_.Lock();  // fvae-lint: allow(lock-balance)\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "lock-balance"));
}

// ---------- whole-program: use-after-move ----------

TEST(UseAfterMoveTest, ReadAfterMoveFires) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class M {\n"
      " public:\n"
      "  void F() {\n"
      "    std::string name = Title();\n"
      "    Consume(std::move(name));\n"
      "    size_ = name.size();\n"  // read of the moved-from local
      "  }\n"
      " private:\n"
      "  int size_ = 0;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "use-after-move"));
}

TEST(UseAfterMoveTest, MoveOnOnePathMakesLaterUseMaybe) {
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class M {\n"
      " public:\n"
      "  void F() {\n"
      "    std::string name = Title();\n"
      "    if (keep_ > 0) {\n"
      "      Consume(std::move(name));\n"
      "    }\n"
      "    Use(name);\n"
      "  }\n"
      " private:\n"
      "  int keep_ = 0;\n"
      "};\n"
      "}  // namespace fvae\n");
  ASSERT_TRUE(HasRule(findings, "use-after-move"));
  EXPECT_NE(findings[0].message.find("may be used"), std::string::npos)
      << findings[0].message;
}

TEST(UseAfterMoveTest, MovingBranchReturningStaysSilent) {
  // Control-flow twin: the moving branch leaves the function, so the
  // later use only executes on the not-moved path.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class M {\n"
      " public:\n"
      "  void F() {\n"
      "    std::string name = Title();\n"
      "    if (keep_ > 0) {\n"
      "      Consume(std::move(name));\n"
      "      return;\n"
      "    }\n"
      "    Use(name);\n"
      "  }\n"
      " private:\n"
      "  int keep_ = 0;\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "use-after-move"));
}

TEST(UseAfterMoveTest, LoopLocalRedeclarationRevives) {
  // The classic accumulate loop: the local is a *fresh object* every
  // iteration, so the back-edge's moved-from state must not leak into the
  // next iteration's reads.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class M {\n"
      " public:\n"
      "  void F() {\n"
      "    for (int i = 0; i < 3; i = i + 1) {\n"
      "      std::string row = Title();\n"
      "      row.push_back('x');\n"
      "      Consume(std::move(row));\n"
      "    }\n"
      "  }\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "use-after-move"));
}

TEST(UseAfterMoveTest, LambdaInitCaptureRebindingStaysSilent) {
  // `[name = std::move(name)]` moves the outer local into a *new* binding
  // of the same name; uses inside the lambda body read the capture.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class M {\n"
      " public:\n"
      "  void F() {\n"
      "    std::string name = Title();\n"
      "    Post([name = std::move(name)]() { Use(name); });\n"
      "  }\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "use-after-move"));
}

TEST(UseAfterMoveTest, ReassignmentRevivesAndSuppressionIsHonored) {
  const auto revived = AnalyzeOne(
      "namespace fvae {\n"
      "class M {\n"
      " public:\n"
      "  void F() {\n"
      "    std::string name = Title();\n"
      "    Consume(std::move(name));\n"
      "    name = Title();\n"
      "    Use(name);\n"
      "  }\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(revived, "use-after-move"));
  const auto suppressed = AnalyzeOne(
      "namespace fvae {\n"
      "class M {\n"
      " public:\n"
      "  void F() {\n"
      "    std::string name = Title();\n"
      "    Consume(std::move(name));\n"
      "    Use(name);  // fvae-lint: allow(use-after-move)\n"
      "  }\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(suppressed, "use-after-move"));
}

// ---------- suppression lists ----------

TEST(SuppressionListTest, CommaListSuppressesEveryNamedRule) {
  // One line violating two whole-program rules, one list naming both.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class S {\n"
      " public:\n"
      "  void F() {\n"
      "    mu_.Lock();\n"
      "    Status st = Step();"
      "  // fvae-lint: allow(status-path, lock-balance)\n"
      "  }\n"
      " private:\n"
      "  Mutex mu_;\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "status-path"));
  // lock-balance reports at the Lock() line, which the list does not
  // cover — proving the list only applies to its own line.
  EXPECT_TRUE(HasRule(findings, "lock-balance"));
}

TEST(SuppressionListTest, ListDoesNotSuppressUnnamedRules) {
  const auto findings = Lint(
      "void f() {\n"
      "  std::mutex m;  // fvae-lint: allow(banned-random,fd-leak)\n"
      "}\n");
  EXPECT_TRUE(HasRule(findings, "raw-mutex"));
}

TEST(SuppressionListTest, SingleRuleSpellingStillWorks) {
  // The pre-list grammar is the one-element case of the same parser.
  const auto findings = Lint(
      "void f() {\n"
      "  std::mutex m;  // fvae-lint: allow(raw-mutex)\n"
      "}\n");
  EXPECT_FALSE(HasRule(findings, "raw-mutex"));
  const auto list = Lint(
      "void f() {\n"
      "  std::mutex m;  // fvae-lint: allow(raw-mutex, banned-random)\n"
      "}\n");
  EXPECT_FALSE(HasRule(list, "raw-mutex"));
}

// ---------- path-sensitive corrections to the legacy analyses ----------

TEST(EventLoopTest, BlockingCallInDeadCodeStaysSilent) {
  // The CFG proves the ::poll is unreachable (it follows a return), so
  // the event-loop analysis must not flag it; its reachable twin in
  // BlockingCallInLoopCallbackFires above does fire.
  const auto findings = AnalyzeOne(
      "namespace fvae {\n"
      "class L {\n"
      " public:\n"
      "  FVAE_EVENT_LOOP void OnReady() {\n"
      "    Dispatch();\n"
      "    return;\n"
      "    ::usleep(1000);\n"
      "  }\n"
      "  void Dispatch() {}\n"
      "};\n"
      "}  // namespace fvae\n");
  EXPECT_FALSE(HasRule(findings, "loop-block"));
}

// ---------- self-runtime timing ----------

TEST(LintTimingTest, FullTreeRunPopulatesTimings) {
  LintTimings timings;
  // Only the timing side channel matters here; findings are asserted on
  // by RepositoryIsClean below.
  (void)LintTree(FVAE_SOURCE_DIR, &timings);
  EXPECT_GT(timings.file_count, 100u);
  EXPECT_GT(timings.per_file_ms, 0.0);
  EXPECT_GT(timings.analysis.link_ms, 0.0);
  // The CFG layer and every path-sensitive analysis must actually run
  // (a zero here means a pass was silently skipped).
  EXPECT_GT(timings.analysis.cfg_ms, 0.0);
  EXPECT_GT(timings.analysis.lock_balance_ms, 0.0);
  EXPECT_GT(timings.analysis.status_path_ms, 0.0);
  EXPECT_GT(timings.analysis.resource_escape_ms, 0.0);
  EXPECT_GT(timings.analysis.use_after_move_ms, 0.0);
  EXPECT_GT(timings.total_ms(), 0.0);
  // Timing regression gate: the whole-tree run must stay far inside the
  // fvae_lint ctest's 5 s budget, path-sensitive passes included.
  EXPECT_LT(timings.total_ms(), 5000.0);
}

// ---------- the tree itself ----------

TEST(LintTreeTest, RepositoryIsClean) {
  const std::vector<Finding> findings = LintTree(FVAE_SOURCE_DIR);
  for (const Finding& finding : findings) {
    ADD_FAILURE() << finding.file << ":" << finding.line << " ["
                  << finding.rule << "] " << finding.message;
  }
}

}  // namespace
}  // namespace fvae::lint
