#include <gtest/gtest.h>

#include "common/random.h"
#include "eval/cluster_metrics.h"
#include "math/matrix.h"

namespace fvae::eval {
namespace {

/// Three tight blobs at distinct corners.
void MakeBlobs(Matrix* points, std::vector<uint32_t>* labels, double spread,
               uint64_t seed) {
  constexpr size_t kPerBlob = 20;
  const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  points->Resize(3 * kPerBlob, 2);
  labels->clear();
  Rng rng(seed);
  for (size_t blob = 0; blob < 3; ++blob) {
    for (size_t i = 0; i < kPerBlob; ++i) {
      const size_t row = blob * kPerBlob + i;
      (*points)(row, 0) =
          centers[blob][0] + static_cast<float>(rng.Normal(0.0, spread));
      (*points)(row, 1) =
          centers[blob][1] + static_cast<float>(rng.Normal(0.0, spread));
      labels->push_back(static_cast<uint32_t>(blob));
    }
  }
}

TEST(KnnPurityTest, PerfectForTightBlobs) {
  Matrix points;
  std::vector<uint32_t> labels;
  MakeBlobs(&points, &labels, 0.2, 1);
  EXPECT_GT(KnnLabelPurity(points, labels, 5), 0.99);
}

TEST(KnnPurityTest, NearPriorForShuffledLabels) {
  Matrix points;
  std::vector<uint32_t> labels;
  MakeBlobs(&points, &labels, 0.2, 2);
  Rng rng(3);
  rng.Shuffle(labels);
  // Random labels over 3 balanced classes -> purity ~= 1/3.
  EXPECT_NEAR(KnnLabelPurity(points, labels, 5), 1.0 / 3.0, 0.12);
}

TEST(KnnPurityTest, KLargerThanDatasetIsClamped) {
  Matrix points(4, 2);
  points(0, 0) = 0;
  points(1, 0) = 1;
  points(2, 0) = 2;
  points(3, 0) = 3;
  const std::vector<uint32_t> labels{0, 0, 1, 1};
  const double purity = KnnLabelPurity(points, labels, 100);
  EXPECT_GE(purity, 0.0);
  EXPECT_LE(purity, 1.0);
}

TEST(SilhouetteTest, HighForSeparatedBlobs) {
  Matrix points;
  std::vector<uint32_t> labels;
  MakeBlobs(&points, &labels, 0.2, 4);
  EXPECT_GT(SilhouetteScore(points, labels), 0.8);
}

TEST(SilhouetteTest, LowForOverlappingBlobs) {
  Matrix points;
  std::vector<uint32_t> labels;
  MakeBlobs(&points, &labels, 8.0, 5);  // spread >> separation
  EXPECT_LT(SilhouetteScore(points, labels), 0.3);
}

TEST(SilhouetteTest, ShuffledLabelsScoreNearZeroOrNegative) {
  Matrix points;
  std::vector<uint32_t> labels;
  MakeBlobs(&points, &labels, 0.2, 6);
  Rng rng(7);
  rng.Shuffle(labels);
  EXPECT_LT(SilhouetteScore(points, labels), 0.1);
}

}  // namespace
}  // namespace fvae::eval
