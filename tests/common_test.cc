#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_annotations.h"

namespace fvae {
namespace {

// ---------- Status ----------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Propagates(int x) {
  FVAE_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_EQ(Propagates(-1).code(), StatusCode::kInvalidArgument);
}

// ---------- Result ----------

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-7), -7);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> result(std::string("hello"));
  EXPECT_EQ(result.value_or("fallback"), "hello");
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UsesAssignOrReturn(int x, int* out) {
  FVAE_ASSIGN_OR_RETURN(*out, HalfOf(x));
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UsesAssignOrReturn(3, &out).code(),
            StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(9));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> moved = std::move(result).value();
  EXPECT_EQ(*moved, 9);
}

// ---------- String utilities ----------

TEST(StringUtilTest, SplitBasic) {
  const auto pieces = Split("a,b,c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  const auto pieces = Split(",x,,", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "");
  EXPECT_EQ(pieces[1], "x");
  EXPECT_EQ(pieces[3], "");
}

TEST(StringUtilTest, SplitEmptyStringYieldsOneEmptyPiece) {
  const auto pieces = Split("", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foobar", "bar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StringUtilTest, ParseInt64Valid) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-17").value(), -17);
  EXPECT_EQ(ParseInt64("  7 ").value(), 7);
}

TEST(StringUtilTest, ParseInt64Invalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("999999999999999999999999").ok());
}

TEST(StringUtilTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2e3").value(), -2000.0);
}

TEST(StringUtilTest, ParseDoubleInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5q").ok());
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
  EXPECT_EQ(StrFormat("plain"), "plain");
}

// ---------- Stopwatch ----------

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch watch;
  const double t1 = watch.ElapsedSeconds();
  const double t2 = watch.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3, 1.0);
}

TEST(StopwatchTest, RestartResetsOrigin) {
  Stopwatch watch;
  // Busy loop the optimizer can't elide (++ on volatile is deprecated in
  // C++20, so write through the volatile instead; unsigned, because the
  // running sum wraps and signed overflow would be UB).
  volatile unsigned sink = 0;
  for (unsigned i = 0; i < 100000; ++i) sink = sink + i;
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), 0.5);
}

// ---------- Mutex / CondVar wrappers (run under -DFVAE_SANITIZE=thread) --

TEST(MutexTest, GuardedCounterSurvivesContention) {
  struct Counter {
    Mutex mutex;
    int value FVAE_GUARDED_BY(mutex) = 0;
  } counter;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(counter.mutex);
        ++counter.value;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  MutexLock lock(counter.mutex);
  EXPECT_EQ(counter.value, kThreads * kIncrements);
}

TEST(MutexTest, TryLockReportsHeldState) {
  // Structured as if/else so the thread-safety analysis can track which
  // branches hold the capability.
  Mutex mutex;
  if (mutex.TryLock()) {
    std::thread contender([&mutex] {
      if (mutex.TryLock()) {  // exclusive lock is held by the main thread
        mutex.Unlock();
        ADD_FAILURE() << "TryLock succeeded on a held mutex";
      }
    });
    contender.join();
    mutex.Unlock();
  } else {
    ADD_FAILURE() << "TryLock failed on a free mutex";
  }
}

TEST(SharedMutexTest, ReadersShareWritersExclude) {
  SharedMutex mutex;
  int readers_inside = 0;
  {
    ReaderMutexLock a(mutex);
    ++readers_inside;
    std::thread second_reader([&] {
      ReaderMutexLock b(mutex);  // must not block on the first reader
      ++readers_inside;
    });
    second_reader.join();
  }
  EXPECT_EQ(readers_inside, 2);
  WriterMutexLock w(mutex);  // writers proceed once readers are gone
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(mutex);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(mutex);
    while (!ready) cv.Wait(mutex);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, WaitUntilTimesOut) {
  Mutex mutex;
  CondVar cv;
  MutexLock lock(mutex);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  // Nobody notifies: the wait must return false at the deadline.
  EXPECT_FALSE(cv.WaitUntil(mutex, deadline));
}

// ---------- LatencyHistogram ----------

TEST(LatencyHistogramTest, EmptyReportsZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Mean(), 0.0);
  EXPECT_EQ(hist.Percentile(50.0), 0.0);
}

TEST(LatencyHistogramTest, CountMeanAndMonotonePercentiles) {
  LatencyHistogram hist;
  for (int i = 1; i <= 1000; ++i) hist.Record(double(i));
  EXPECT_EQ(hist.Count(), 1000u);
  EXPECT_NEAR(hist.Mean(), 500.5, 1.0);
  const double p50 = hist.Percentile(50.0);
  const double p95 = hist.Percentile(95.0);
  const double p99 = hist.Percentile(99.0);
  // Geometric buckets with growth 1.3: estimates within ~30% of truth.
  EXPECT_NEAR(p50, 500.0, 160.0);
  EXPECT_NEAR(p95, 950.0, 300.0);
  EXPECT_NEAR(p99, 990.0, 310.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, hist.Percentile(100.0));
}

TEST(LatencyHistogramTest, HandlesZeroNegativeAndHugeValues) {
  LatencyHistogram hist;
  hist.Record(0.0);
  hist.Record(-5.0);   // clamped to 0
  hist.Record(0.5);    // below min bucket edge
  hist.Record(1e12);   // lands in the open tail
  EXPECT_EQ(hist.Count(), 4u);
  EXPECT_GE(hist.Percentile(100.0), hist.Percentile(0.0));
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram hist;
  hist.Record(100.0);
  hist.Reset();
  EXPECT_EQ(hist.Count(), 0u);
  EXPECT_EQ(hist.Sum(), 0.0);
}

TEST(LatencyHistogramTest, SummaryJsonHasAllKeys) {
  LatencyHistogram hist;
  hist.Record(10.0);
  const std::string json = hist.SummaryJson();
  for (const char* key : {"\"count\":1", "\"mean\"", "\"p50\"", "\"p95\"",
                          "\"p99\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST(LatencyHistogramTest, MergeOfEmptyIsIdentity) {
  LatencyHistogram a, b;
  a.Record(10.0);
  a.Record(100.0);
  a.Merge(b);  // merging an empty histogram changes nothing
  EXPECT_EQ(a.Count(), 2u);
  EXPECT_NEAR(a.Mean(), 55.0, 0.5);

  b.Merge(a);  // merging into an empty histogram copies the contents
  EXPECT_EQ(b.Count(), 2u);
  EXPECT_NEAR(b.Mean(), a.Mean(), 1e-9);
  EXPECT_NEAR(b.Percentile(50.0), a.Percentile(50.0), 1e-9);
}

TEST(LatencyHistogramTest, MergeDisjointRanges) {
  LatencyHistogram low, high;
  for (int i = 1; i <= 100; ++i) low.Record(double(i));
  for (int i = 10001; i <= 10100; ++i) high.Record(double(i));
  low.Merge(high);
  EXPECT_EQ(low.Count(), 200u);
  EXPECT_NEAR(low.Sum(), 100 * 101 / 2 + 100.0 * 10050.5, 1.0);
  // Half the mass is below ~100, half above ~10000.
  EXPECT_LT(low.Percentile(49.0), 150.0);
  EXPECT_GT(low.Percentile(51.0), 5000.0);
}

TEST(LatencyHistogramTest, MergeOverlappingEqualsCombinedRecording) {
  LatencyHistogram a, b, combined;
  for (int i = 1; i <= 500; ++i) {
    a.Record(double(i));
    combined.Record(double(i));
  }
  for (int i = 250; i <= 750; ++i) {
    b.Record(double(i));
    combined.Record(double(i));
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), combined.Count());
  EXPECT_NEAR(a.Sum(), combined.Sum(), 1e-9);
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    EXPECT_NEAR(a.Percentile(p), combined.Percentile(p), 1e-9) << p;
  }
}

TEST(LatencyHistogramTest, ConcurrentRecordsAllCounted) {
  LatencyHistogram hist;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.Record(double(1 + (t * kPerThread + i) % 5000));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.Count(), uint64_t(kThreads) * kPerThread);
}

}  // namespace
}  // namespace fvae
