#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "math/matrix.h"
#include "math/svd.h"

namespace fvae {
namespace {

TEST(SymmetricEigenTest, DiagonalMatrix) {
  Matrix a = Matrix::FromRows({{3, 0, 0}, {0, 1, 0}, {0, 0, 2}});
  EigenDecomposition eig = SymmetricEigen(a);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0f, 1e-5f);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0f, 1e-5f);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0f, 1e-5f);
}

TEST(SymmetricEigenTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  Matrix a = Matrix::FromRows({{2, 1}, {1, 2}});
  EigenDecomposition eig = SymmetricEigen(a);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0f, 1e-5f);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0f, 1e-5f);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  const float v0 = eig.eigenvectors(0, 0);
  const float v1 = eig.eigenvectors(1, 0);
  EXPECT_NEAR(std::fabs(v0), std::sqrt(0.5f), 1e-4f);
  EXPECT_NEAR(v0, v1, 1e-4f);
}

TEST(SymmetricEigenTest, ReconstructsMatrix) {
  Rng rng(5);
  Matrix g = Matrix::Gaussian(6, 6, 1.0f, rng);
  // Symmetrize.
  Matrix a(6, 6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      a(i, j) = 0.5f * (g(i, j) + g(j, i));
    }
  }
  EigenDecomposition eig = SymmetricEigen(a);
  // Rebuild A = V diag(lambda) V^T.
  Matrix rebuilt(6, 6);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t j = 0; j < 6; ++j) {
      double acc = 0.0;
      for (size_t t = 0; t < 6; ++t) {
        acc += double(eig.eigenvectors(i, t)) * eig.eigenvalues[t] *
               eig.eigenvectors(j, t);
      }
      rebuilt(i, j) = static_cast<float>(acc);
    }
  }
  EXPECT_LT(Matrix::MaxAbsDiff(a, rebuilt), 1e-3f);
}

TEST(OrthonormalizeTest, ColumnsAreOrthonormal) {
  Rng rng(7);
  Matrix m = Matrix::Gaussian(20, 5, 1.0f, rng);
  OrthonormalizeColumns(&m, rng);
  for (size_t a = 0; a < 5; ++a) {
    for (size_t b = 0; b < 5; ++b) {
      double dot = 0.0;
      for (size_t i = 0; i < 20; ++i) dot += double(m(i, a)) * m(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-4);
    }
  }
}

TEST(OrthonormalizeTest, RepairsDegenerateColumns) {
  Rng rng(11);
  Matrix m(10, 3);  // all-zero columns
  OrthonormalizeColumns(&m, rng);
  for (size_t a = 0; a < 3; ++a) {
    double norm = 0.0;
    for (size_t i = 0; i < 10; ++i) norm += double(m(i, a)) * m(i, a);
    EXPECT_NEAR(norm, 1.0, 1e-4);
  }
}

TEST(RandomizedSvdTest, RecoversExactLowRankMatrix) {
  Rng rng(13);
  // A = U0 S0 V0^T with rank 3.
  Matrix u0 = Matrix::Gaussian(40, 3, 1.0f, rng);
  Matrix v0 = Matrix::Gaussian(25, 3, 1.0f, rng);
  Matrix a(40, 25);
  const float sigmas[3] = {10.0f, 5.0f, 2.0f};
  for (size_t i = 0; i < 40; ++i) {
    for (size_t j = 0; j < 25; ++j) {
      double acc = 0.0;
      for (int t = 0; t < 3; ++t) {
        acc += double(sigmas[t]) * u0(i, t) * v0(j, t);
      }
      a(i, j) = static_cast<float>(acc);
    }
  }
  // Orthonormalize factors so sigmas above are not exact singular values;
  // instead just check the reconstruction error of a rank-3 SVD is ~0.
  DenseOperator op(&a);
  SvdResult svd = RandomizedSvd(op, 3, rng);

  Matrix rebuilt(40, 25);
  for (size_t i = 0; i < 40; ++i) {
    for (size_t j = 0; j < 25; ++j) {
      double acc = 0.0;
      for (int t = 0; t < 3; ++t) {
        acc += double(svd.u(i, t)) * svd.singular_values[t] * svd.v(j, t);
      }
      rebuilt(i, j) = static_cast<float>(acc);
    }
  }
  EXPECT_LT(Matrix::MaxAbsDiff(a, rebuilt) / a.FrobeniusNorm(), 1e-3f);
}

TEST(RandomizedSvdTest, SingularValuesDecreasing) {
  Rng rng(17);
  Matrix a = Matrix::Gaussian(30, 30, 1.0f, rng);
  DenseOperator op(&a);
  SvdResult svd = RandomizedSvd(op, 5, rng);
  for (size_t i = 1; i < svd.singular_values.size(); ++i) {
    EXPECT_GE(svd.singular_values[i - 1], svd.singular_values[i] - 1e-4f);
  }
}

TEST(RandomizedSvdTest, TopSingularValueOfKnownMatrix) {
  // diag(4, 2, 1) embedded in a rectangular matrix.
  Matrix a(5, 3);
  a(0, 0) = 4.0f;
  a(1, 1) = 2.0f;
  a(2, 2) = 1.0f;
  Rng rng(19);
  DenseOperator op(&a);
  SvdResult svd = RandomizedSvd(op, 3, rng);
  EXPECT_NEAR(svd.singular_values[0], 4.0f, 1e-3f);
  EXPECT_NEAR(svd.singular_values[1], 2.0f, 1e-3f);
  EXPECT_NEAR(svd.singular_values[2], 1.0f, 1e-3f);
}

TEST(RandomizedSvdTest, SingularVectorsOrthonormal) {
  Rng rng(23);
  Matrix a = Matrix::Gaussian(25, 18, 1.0f, rng);
  DenseOperator op(&a);
  SvdResult svd = RandomizedSvd(op, 4, rng);
  for (size_t x = 0; x < 4; ++x) {
    for (size_t y = 0; y < 4; ++y) {
      double dot_u = 0.0, dot_v = 0.0;
      for (size_t i = 0; i < 25; ++i) dot_u += double(svd.u(i, x)) * svd.u(i, y);
      for (size_t i = 0; i < 18; ++i) dot_v += double(svd.v(i, x)) * svd.v(i, y);
      EXPECT_NEAR(dot_u, x == y ? 1.0 : 0.0, 5e-3);
      EXPECT_NEAR(dot_v, x == y ? 1.0 : 0.0, 5e-3);
    }
  }
}

}  // namespace
}  // namespace fvae
