#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "eval/metrics.h"

namespace fvae::eval {
namespace {

TEST(AucTest, PerfectSeparation) {
  const std::vector<float> scores{0.9f, 0.8f, 0.2f, 0.1f};
  const std::vector<uint8_t> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(Auc(scores, labels), 1.0);
}

TEST(AucTest, PerfectlyWrong) {
  const std::vector<float> scores{0.1f, 0.2f, 0.8f, 0.9f};
  const std::vector<uint8_t> labels{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(Auc(scores, labels), 0.0);
}

TEST(AucTest, KnownMiddleValue) {
  // Positives at ranks 1 and 3 of 4 (descending): AUC = 0.75... compute:
  // pairs: (pos 0.9 > neg 0.5), (0.9 > 0.1), (0.3 < 0.5), (0.3 > 0.1) = 3/4.
  const std::vector<float> scores{0.9f, 0.5f, 0.3f, 0.1f};
  const std::vector<uint8_t> labels{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(Auc(scores, labels), 0.75);
}

TEST(AucTest, TiesGetHalfCredit) {
  const std::vector<float> scores{0.5f, 0.5f};
  const std::vector<uint8_t> labels{1, 0};
  EXPECT_DOUBLE_EQ(Auc(scores, labels), 0.5);
}

TEST(AucTest, AllTiedScores) {
  const std::vector<float> scores{1.0f, 1.0f, 1.0f, 1.0f};
  const std::vector<uint8_t> labels{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(Auc(scores, labels), 0.5);
}

TEST(AucTest, DegenerateSingleClass) {
  const std::vector<float> scores{0.1f, 0.9f};
  EXPECT_DOUBLE_EQ(Auc(scores, std::vector<uint8_t>{1, 1}), 0.5);
  EXPECT_DOUBLE_EQ(Auc(scores, std::vector<uint8_t>{0, 0}), 0.5);
}

TEST(AucTest, InvariantUnderMonotoneTransform) {
  Rng rng(1);
  std::vector<float> scores(50);
  std::vector<uint8_t> labels(50);
  for (int i = 0; i < 50; ++i) {
    scores[i] = static_cast<float>(rng.Normal());
    labels[i] = rng.Bernoulli(0.4) ? 1 : 0;
  }
  const double base = Auc(scores, labels);
  std::vector<float> transformed = scores;
  for (float& s : transformed) s = std::exp(0.5f * s) + 3.0f;
  EXPECT_NEAR(Auc(transformed, labels), base, 1e-12);
}

TEST(AucTest, RandomScoresNearHalf) {
  Rng rng(2);
  std::vector<float> scores(5000);
  std::vector<uint8_t> labels(5000);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = static_cast<float>(rng.Uniform());
    labels[i] = rng.Bernoulli(0.5) ? 1 : 0;
  }
  EXPECT_NEAR(Auc(scores, labels), 0.5, 0.03);
}

TEST(AveragePrecisionTest, PerfectRanking) {
  const std::vector<float> scores{0.9f, 0.8f, 0.2f};
  const std::vector<uint8_t> labels{1, 1, 0};
  EXPECT_DOUBLE_EQ(AveragePrecision(scores, labels), 1.0);
}

TEST(AveragePrecisionTest, KnownValue) {
  // Ranking (desc): pos, neg, pos -> AP = (1/1 + 2/3) / 2 = 5/6.
  const std::vector<float> scores{0.9f, 0.5f, 0.3f};
  const std::vector<uint8_t> labels{1, 0, 1};
  EXPECT_NEAR(AveragePrecision(scores, labels), 5.0 / 6.0, 1e-12);
}

TEST(AveragePrecisionTest, NoPositivesIsZero) {
  const std::vector<float> scores{0.9f, 0.5f};
  const std::vector<uint8_t> labels{0, 0};
  EXPECT_DOUBLE_EQ(AveragePrecision(scores, labels), 0.0);
}

TEST(AveragePrecisionTest, WorstRanking) {
  // neg, neg, pos -> AP = 1/3.
  const std::vector<float> scores{0.9f, 0.8f, 0.1f};
  const std::vector<uint8_t> labels{0, 0, 1};
  EXPECT_NEAR(AveragePrecision(scores, labels), 1.0 / 3.0, 1e-12);
}

TEST(MeanMetricsTest, SkipDegenerateQueries) {
  const std::vector<std::vector<float>> scores{
      {0.9f, 0.1f},   // perfect
      {0.5f, 0.6f},   // all negative -> skipped by both
  };
  const std::vector<std::vector<uint8_t>> labels{
      {1, 0},
      {0, 0},
  };
  EXPECT_DOUBLE_EQ(MeanAuc(scores, labels), 1.0);
  EXPECT_DOUBLE_EQ(MeanAveragePrecision(scores, labels), 1.0);
}

TEST(MeanMetricsTest, AveragesAcrossQueries) {
  const std::vector<std::vector<float>> scores{
      {0.9f, 0.1f},  // AUC 1
      {0.1f, 0.9f},  // AUC 0
  };
  const std::vector<std::vector<uint8_t>> labels{
      {1, 0},
      {1, 0},
  };
  EXPECT_DOUBLE_EQ(MeanAuc(scores, labels), 0.5);
}

TEST(MeanMetricsTest, EmptyInputsGiveDefaults) {
  EXPECT_DOUBLE_EQ(MeanAuc({}, {}), 0.5);
  EXPECT_DOUBLE_EQ(MeanAveragePrecision({}, {}), 0.0);
}

// ---------- Ranking metrics ----------

TEST(RecallAtKTest, BasicValues) {
  const std::vector<float> scores{0.9f, 0.8f, 0.7f, 0.6f};
  const std::vector<uint8_t> labels{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(RecallAtK(scores, labels, 1), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(scores, labels, 3), 1.0);
  EXPECT_DOUBLE_EQ(RecallAtK(scores, labels, 100), 1.0);
}

TEST(RecallAtKTest, NoPositivesIsZero) {
  const std::vector<float> scores{0.9f, 0.8f};
  const std::vector<uint8_t> labels{0, 0};
  EXPECT_DOUBLE_EQ(RecallAtK(scores, labels, 2), 0.0);
}

TEST(PrecisionAtKTest, BasicValues) {
  const std::vector<float> scores{0.9f, 0.8f, 0.7f, 0.6f};
  const std::vector<uint8_t> labels{1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, labels, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, labels, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(scores, labels, 4), 0.5);
}

TEST(NdcgAtKTest, PerfectRankingIsOne) {
  const std::vector<float> scores{0.9f, 0.8f, 0.2f, 0.1f};
  const std::vector<uint8_t> labels{1, 1, 0, 0};
  EXPECT_NEAR(NdcgAtK(scores, labels, 4), 1.0, 1e-12);
}

TEST(NdcgAtKTest, KnownValue) {
  // Ranking: pos, neg, pos. DCG = 1/log2(2) + 1/log2(4) = 1.5.
  // IDCG (2 positives in top 3) = 1/log2(2) + 1/log2(3).
  const std::vector<float> scores{0.9f, 0.5f, 0.3f};
  const std::vector<uint8_t> labels{1, 0, 1};
  const double ideal = 1.0 + 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK(scores, labels, 3), 1.5 / ideal, 1e-12);
}

TEST(NdcgAtKTest, NoPositivesIsZero) {
  const std::vector<float> scores{0.9f};
  const std::vector<uint8_t> labels{0};
  EXPECT_DOUBLE_EQ(NdcgAtK(scores, labels, 1), 0.0);
}

TEST(RankingMetricsTest, TiesBrokenPessimistically) {
  // All scores equal: the positive is ranked last among the ties.
  const std::vector<float> scores{0.5f, 0.5f, 0.5f};
  const std::vector<uint8_t> labels{1, 0, 0};
  EXPECT_DOUBLE_EQ(RecallAtK(scores, labels, 1), 0.0);
  EXPECT_DOUBLE_EQ(RecallAtK(scores, labels, 3), 1.0);
}

class AucSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AucSizeTest, BetterScoresBeatWorse) {
  // Property: positives drawn from N(1,1), negatives from N(0,1) must give
  // AUC well above 0.5 at any size.
  const size_t n = GetParam();
  Rng rng(n + 4);
  std::vector<float> scores(2 * n);
  std::vector<uint8_t> labels(2 * n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = static_cast<float>(rng.Normal(1.0, 1.0));
    labels[i] = 1;
    scores[n + i] = static_cast<float>(rng.Normal(0.0, 1.0));
    labels[n + i] = 0;
  }
  EXPECT_GT(Auc(scores, labels), 0.6);
  EXPECT_GT(AveragePrecision(scores, labels), 0.6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AucSizeTest,
                         ::testing::Values(10, 100, 1000));

}  // namespace
}  // namespace fvae::eval
