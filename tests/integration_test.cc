#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>
#include <unistd.h>

#include "baselines/fvae_adapter.h"
#include "baselines/pca.h"
#include "common/random.h"
#include "data/split.h"
#include "datagen/profile_generator.h"
#include "eval/tasks.h"
#include "lookalike/ab_test.h"
#include "serving/embedding_store.h"
#include "serving/serving_proxy.h"

namespace fvae {
namespace {

/// End-to-end pipeline covering the full paper workflow: synthetic
/// multi-field profiles -> FVAE training -> tag prediction vs a baseline ->
/// embedding dump -> serving -> look-alike A/B test.
class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ProfileGeneratorConfig config = ShortContentConfig(400, /*seed=*/101);
    // Sharpen the topic signal so the small fixture is learnable: more
    // features per user in the tiny ch1 field and faster Zipf decay keep
    // each topic's window distinctive.
    config.fields[0].avg_features = 6.0;
    config.fields[0].zipf_exponent = 1.4;
    config.fields[1].zipf_exponent = 1.2;
    config.fields[2].vocab_size = 512;
    config.fields[3].vocab_size = 1024;
    config.fields[3].avg_features = 12.0;
    config.num_topics = 8;
    gen_ = GenerateProfiles(config);
    users_.resize(gen_.dataset.num_users());
    std::iota(users_.begin(), users_.end(), 0u);
  }

  baselines::FvaeAdapter MakeFvae() {
    core::FvaeConfig config;
    config.latent_dim = 24;
    config.encoder_hidden = {64};
    config.decoder_hidden = {64};
    config.beta = 0.05f;
    config.anneal_steps = 80;
    config.sampling_strategy = core::SamplingStrategy::kUniform;
    config.sampling_rate = 0.5;
    config.seed = 5;
    core::TrainOptions options;
    options.batch_size = 64;
    options.epochs = 30;
    return baselines::FvaeAdapter(config, options);
  }

  GeneratedProfiles gen_;
  std::vector<uint32_t> users_;
};

TEST_F(IntegrationTest, FvaeBeatsPcaOnTagPrediction) {
  baselines::FvaeAdapter fvae = MakeFvae();
  fvae.Fit(gen_.dataset);
  EXPECT_GT(fvae.train_result().steps, 0u);

  baselines::PcaModel::Options pca_options;
  pca_options.latent_dim = 16;
  baselines::PcaModel pca(pca_options);
  pca.Fit(gen_.dataset);

  Rng rng1(7), rng2(7);
  const eval::TaskMetrics fvae_metrics = eval::RunTagPrediction(
      fvae, gen_.dataset, users_, 3, gen_.field_vocab[3], rng1);
  const eval::TaskMetrics pca_metrics = eval::RunTagPrediction(
      pca, gen_.dataset, users_, 3, gen_.field_vocab[3], rng2);

  EXPECT_GT(fvae_metrics.auc, 0.7) << "FVAE failed to learn";
  EXPECT_GT(fvae_metrics.auc, pca_metrics.auc)
      << "FVAE should beat linear PCA on tag prediction";
}

TEST_F(IntegrationTest, ReconstructionBeatsChance) {
  baselines::FvaeAdapter fvae = MakeFvae();
  Rng split_rng(9);
  const ReconstructionSplit split =
      HoldOutWithinUsers(gen_.dataset, 0.3, split_rng);
  fvae.Fit(split.input);
  Rng rng(11);
  const eval::ReconstructionMetrics metrics = eval::RunReconstruction(
      fvae, gen_.dataset, split, users_, gen_.field_vocab, rng);
  for (size_t k = 0; k < 4; ++k) {
    EXPECT_GT(metrics.per_field[k].auc, 0.6) << "field " << k;
  }
}

TEST_F(IntegrationTest, EmbeddingsFlowThroughServingToLookalike) {
  baselines::FvaeAdapter fvae = MakeFvae();
  fvae.Fit(gen_.dataset);
  const Matrix embeddings = fvae.Embed(gen_.dataset, users_);

  // Offline dump (HDFS stand-in) and online reload.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("fvae_integration_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "embeddings.bin").string();
  {
    serving::EmbeddingStore offline;
    std::vector<uint64_t> ids(users_.begin(), users_.end());
    offline.PutBatch(ids, embeddings);
    ASSERT_TRUE(offline.Save(path).ok());
  }
  auto online = serving::EmbeddingStore::Load(path);
  ASSERT_TRUE(online.ok());
  serving::ServingProxy proxy(&*online, 128);

  // Serve every user's embedding back into a matrix.
  Matrix served(users_.size(), embeddings.cols());
  for (size_t u = 0; u < users_.size(); ++u) {
    auto emb = proxy.Lookup(users_[u]);
    ASSERT_TRUE(emb.has_value());
    for (size_t d = 0; d < emb->size(); ++d) {
      served(u, d) = (*emb)[d];
    }
  }
  EXPECT_LT(Matrix::MaxAbsDiff(served, embeddings), 1e-6f);

  // Look-alike A/B test: FVAE embeddings vs pure noise.
  lookalike::AbTestConfig ab_config;
  ab_config.num_accounts = 80;
  ab_config.recommendations_per_user = 8;
  ab_config.seed_followers_per_account = 15;
  lookalike::LookalikeAbTest ab(gen_.topic_mixture, ab_config);
  const lookalike::ArmMetrics fvae_arm = ab.RunArm("fvae", served);
  Rng noise_rng(21);
  const Matrix noise =
      Matrix::Gaussian(users_.size(), embeddings.cols(), 1.0f, noise_rng);
  const lookalike::ArmMetrics noise_arm = ab.RunArm("noise", noise);
  EXPECT_GT(fvae_arm.following_clicks, noise_arm.following_clicks);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fvae
