#include <gtest/gtest.h>

#include <cmath>

#include "math/stats.h"

namespace fvae {
namespace {

TEST(OnlineStatsTest, MatchesBatchComputation) {
  OnlineStats stats;
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double v : values) stats.Add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_NEAR(stats.mean(), 5.0, 1e-12);
  // Sample variance of the set is 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-9);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-9);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats stats;
  stats.Add(3.0);
  EXPECT_EQ(stats.mean(), 3.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 3.0);
  EXPECT_EQ(stats.max(), 3.0);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(PearsonTest, PerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  const std::vector<double> neg{-2, -4, -6, -8};
  EXPECT_NEAR(PearsonCorrelation(x, neg), -1.0, 1e-12);
}

TEST(PearsonTest, ZeroVarianceGivesZero) {
  const std::vector<double> x{1, 1, 1};
  const std::vector<double> y{1, 2, 3};
  EXPECT_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(PearsonTest, UncorrelatedNearZero) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{1, -1, 1, -1};
  EXPECT_NEAR(PearsonCorrelation(x, y), -0.4472, 0.01);
}

TEST(PercentileTest, MedianAndExtremes) {
  std::vector<double> v{5, 1, 3, 2, 4};
  EXPECT_NEAR(Percentile(v, 50), 3.0, 1e-12);
  EXPECT_NEAR(Percentile(v, 0), 1.0, 1e-12);
  EXPECT_NEAR(Percentile(v, 100), 5.0, 1e-12);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_NEAR(Percentile(v, 25), 2.5, 1e-12);
  EXPECT_NEAR(Percentile(v, 75), 7.5, 1e-12);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_EQ(Percentile({42.0}, 99), 42.0);
}

}  // namespace
}  // namespace fvae
