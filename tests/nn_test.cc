#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "common/random.h"
#include "math/matrix.h"
#include "math/vector_ops.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/embedding.h"
#include "nn/losses.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"

namespace fvae::nn {
namespace {

/// Numerical gradient check of a layer: loss = sum(weights ⊙ layer(input)).
/// Checks both the input gradient and every parameter gradient against
/// central differences.
void CheckLayerGradients(Layer& layer, Matrix input, double tolerance,
                         uint64_t seed) {
  Rng rng(seed);
  Matrix output;
  layer.Forward(input, &output, /*training=*/false);
  Matrix loss_weights = Matrix::Gaussian(output.rows(), output.cols(), 1.0f,
                                         rng);

  auto loss_of = [&](const Matrix& in) {
    Matrix out;
    layer.Forward(in, &out, /*training=*/false);
    double total = 0.0;
    for (size_t i = 0; i < out.size(); ++i) {
      total += double(out.data()[i]) * loss_weights.data()[i];
    }
    return total;
  };

  // Analytic gradients.
  layer.Forward(input, &output, /*training=*/false);
  Matrix input_grad;
  layer.Backward(loss_weights, &input_grad);

  // Input gradient vs central differences.
  const float h = 1e-3f;
  for (size_t i = 0; i < input.size(); ++i) {
    Matrix plus = input, minus = input;
    plus.data()[i] += h;
    minus.data()[i] -= h;
    const double numeric = (loss_of(plus) - loss_of(minus)) / (2.0 * h);
    ASSERT_NEAR(input_grad.data()[i], numeric, tolerance)
        << "input grad element " << i;
  }

  // Parameter gradients.
  std::vector<ParamRef> params;
  layer.CollectParams(&params);
  // Recompute analytic grads (loss_of calls overwrote caches).
  layer.Forward(input, &output, /*training=*/false);
  layer.Backward(loss_weights, &input_grad);
  for (size_t p = 0; p < params.size(); ++p) {
    Matrix& value = *params[p].value;
    const Matrix analytic = *params[p].grad;
    for (size_t i = 0; i < value.size(); ++i) {
      const float original = value.data()[i];
      value.data()[i] = original + h;
      const double lp = loss_of(input);
      value.data()[i] = original - h;
      const double lm = loss_of(input);
      value.data()[i] = original;
      const double numeric = (lp - lm) / (2.0 * h);
      ASSERT_NEAR(analytic.data()[i], numeric, tolerance)
          << "param " << p << " element " << i;
    }
  }
}

TEST(DenseLayerTest, ForwardMatchesManual) {
  Rng rng(1);
  DenseLayer layer(2, 3, rng);
  layer.weight() = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  layer.bias() = Matrix::FromRows({{0.5, -0.5, 0.0}});
  Matrix input = Matrix::FromRows({{1, 1}, {2, 0}});
  Matrix output;
  layer.Forward(input, &output, false);
  EXPECT_FLOAT_EQ(output(0, 0), 5.5f);   // 1+4+0.5
  EXPECT_FLOAT_EQ(output(0, 1), 6.5f);   // 2+5-0.5
  EXPECT_FLOAT_EQ(output(1, 2), 6.0f);   // 2*3
}

TEST(DenseLayerTest, GradientsMatchNumerical) {
  Rng rng(2);
  DenseLayer layer(4, 3, rng);
  Matrix input = Matrix::Gaussian(5, 4, 1.0f, rng);
  CheckLayerGradients(layer, input, 2e-2, 77);
}

TEST(DenseLayerTest, NullGradInputSkipsInputGradient) {
  Rng rng(3);
  DenseLayer layer(2, 2, rng);
  Matrix input = Matrix::Gaussian(3, 2, 1.0f, rng);
  Matrix output;
  layer.Forward(input, &output, false);
  Matrix grad_out(3, 2, 1.0f);
  layer.Backward(grad_out, nullptr);  // must not crash
  SUCCEED();
}

TEST(ActivationTest, TanhGradients) {
  TanhLayer layer;
  Rng rng(4);
  CheckLayerGradients(layer, Matrix::Gaussian(4, 6, 1.0f, rng), 1e-2, 5);
}

TEST(ActivationTest, ReluGradients) {
  ReluLayer layer;
  Rng rng(6);
  // Keep inputs away from the kink at 0.
  Matrix input = Matrix::Gaussian(4, 5, 1.0f, rng);
  for (size_t i = 0; i < input.size(); ++i) {
    if (std::fabs(input.data()[i]) < 0.05f) input.data()[i] = 0.5f;
  }
  CheckLayerGradients(layer, input, 1e-2, 7);
}

TEST(ActivationTest, SigmoidGradients) {
  SigmoidLayer layer;
  Rng rng(8);
  CheckLayerGradients(layer, Matrix::Gaussian(3, 7, 1.0f, rng), 1e-2, 9);
}

TEST(DropoutTest, InferenceIsIdentity) {
  DropoutLayer layer(0.5, 42);
  Matrix input = Matrix::FromRows({{1, 2, 3}});
  Matrix output;
  layer.Forward(input, &output, /*training=*/false);
  EXPECT_LT(Matrix::MaxAbsDiff(input, output), 1e-9f);
}

TEST(DropoutTest, TrainingDropsAndRescales) {
  DropoutLayer layer(0.5, 43);
  Matrix input(1, 10000, 1.0f);
  Matrix output;
  layer.Forward(input, &output, /*training=*/true);
  size_t zeros = 0;
  double total = 0.0;
  for (size_t i = 0; i < output.size(); ++i) {
    if (output.data()[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(output.data()[i], 2.0f, 1e-6f);  // 1/(1-0.5)
    }
    total += output.data()[i];
  }
  EXPECT_NEAR(zeros / 10000.0, 0.5, 0.03);
  EXPECT_NEAR(total / 10000.0, 1.0, 0.06);  // expectation preserved
}

TEST(DropoutTest, BackwardUsesSameMask) {
  DropoutLayer layer(0.3, 44);
  Matrix input(1, 100, 1.0f);
  Matrix output;
  layer.Forward(input, &output, /*training=*/true);
  Matrix grad_out(1, 100, 1.0f);
  Matrix grad_in;
  layer.Backward(grad_out, &grad_in);
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_FLOAT_EQ(grad_in.data()[i], output.data()[i]);
  }
}

TEST(MlpTest, GradientsMatchNumerical) {
  Rng rng(10);
  Mlp mlp({3, 5, 2}, Activation::kTanh, rng);
  CheckLayerGradients(mlp, Matrix::Gaussian(4, 3, 1.0f, rng), 3e-2, 11);
}

TEST(MlpTest, ActivateOutputChangesRange) {
  Rng rng(12);
  Mlp bounded({2, 4, 4}, Activation::kTanh, rng, /*activate_output=*/true);
  Matrix input = Matrix::Gaussian(8, 2, 10.0f, rng);
  Matrix output;
  bounded.Forward(input, &output, false);
  for (size_t i = 0; i < output.size(); ++i) {
    EXPECT_LE(std::fabs(output.data()[i]), 1.0f);
  }
}

TEST(MlpTest, DimsExposed) {
  Rng rng(13);
  Mlp mlp({7, 5, 3, 2}, Activation::kRelu, rng);
  EXPECT_EQ(mlp.in_dim(), 7u);
  EXPECT_EQ(mlp.out_dim(), 2u);
  EXPECT_EQ(mlp.num_dense_layers(), 3u);
}

// ---------- Optimizers ----------

TEST(SgdTest, ConvergesOnQuadratic) {
  // Minimize ||x - target||^2 by gradient steps.
  Matrix x(1, 4, 0.0f);
  Matrix grad(1, 4, 0.0f);
  Matrix target = Matrix::FromRows({{1, -2, 3, 0.5}});
  SgdOptimizer opt({{&x, &grad}}, 0.1f, 0.9f);
  for (int step = 0; step < 200; ++step) {
    for (size_t i = 0; i < 4; ++i) {
      grad.data()[i] = 2.0f * (x.data()[i] - target.data()[i]);
    }
    opt.Step();
  }
  EXPECT_LT(Matrix::MaxAbsDiff(x, target), 1e-3f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Matrix x(1, 4, 5.0f);
  Matrix grad(1, 4, 0.0f);
  Matrix target = Matrix::FromRows({{1, -2, 3, 0.5}});
  AdamOptimizer opt({{&x, &grad}}, 0.05f);
  for (int step = 0; step < 2000; ++step) {
    for (size_t i = 0; i < 4; ++i) {
      grad.data()[i] = 2.0f * (x.data()[i] - target.data()[i]);
    }
    opt.Step();
  }
  EXPECT_LT(Matrix::MaxAbsDiff(x, target), 1e-2f);
  EXPECT_EQ(opt.step_count(), 2000);
}

TEST(OptimizerTest, StepZeroesGradients) {
  Matrix x(1, 2, 1.0f);
  Matrix grad(1, 2, 3.0f);
  AdamOptimizer opt({{&x, &grad}}, 0.01f);
  opt.Step();
  EXPECT_EQ(grad(0, 0), 0.0f);
  EXPECT_EQ(grad(0, 1), 0.0f);
}

// ---------- EmbeddingTable ----------

TEST(EmbeddingTableTest, CreatesRowsLazily) {
  EmbeddingTable table(4, /*with_bias=*/true, 0.1f, 1);
  EXPECT_EQ(table.num_rows(), 0u);
  const uint32_t r0 = table.GetOrCreateRow(1000);
  const uint32_t r1 = table.GetOrCreateRow(2000);
  EXPECT_EQ(r0, 0u);
  EXPECT_EQ(r1, 1u);
  EXPECT_EQ(table.GetOrCreateRow(1000), 0u);
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_FALSE(table.FindRow(3000).has_value());
  EXPECT_EQ(table.FindRow(2000).value(), 1u);
}

TEST(EmbeddingTableTest, NewRowsAreRandomlyInitialized) {
  EmbeddingTable table(16, false, 0.5f, 2);
  const uint32_t r0 = table.GetOrCreateRow(1);
  const uint32_t r1 = table.GetOrCreateRow(2);
  double diff = 0.0;
  for (size_t d = 0; d < 16; ++d) {
    diff += std::fabs(double(table.Row(r0)[d]) - table.Row(r1)[d]);
  }
  EXPECT_GT(diff, 1e-3);
}

TEST(EmbeddingTableTest, ZeroInitStddevGivesZeroRows) {
  EmbeddingTable table(4, false, 0.0f, 3);
  const uint32_t row = table.GetOrCreateRow(5);
  for (float v : table.Row(row)) EXPECT_EQ(v, 0.0f);
}

TEST(EmbeddingTableTest, AdagradStepMovesAgainstGradient) {
  EmbeddingTable table(2, true, 0.0f, 4);
  const uint32_t row = table.GetOrCreateRow(7);
  const std::vector<float> grad{1.0f, -2.0f};
  table.AccumulateGrad(row, grad, 0.5f);
  EXPECT_EQ(table.touched_rows().size(), 1u);
  table.ApplyGradients(0.1f);
  // AdaGrad first step: w -= lr * g / (|g| + eps) = -lr * sign(g).
  EXPECT_NEAR(table.Row(row)[0], -0.1f, 1e-5f);
  EXPECT_NEAR(table.Row(row)[1], 0.1f, 1e-5f);
  EXPECT_NEAR(table.bias(row), -0.1f, 1e-5f);
  EXPECT_TRUE(table.touched_rows().empty());
}

TEST(EmbeddingTableTest, GradientsAccumulateUntilApplied) {
  EmbeddingTable table(1, false, 0.0f, 5);
  const uint32_t row = table.GetOrCreateRow(1);
  const std::vector<float> g{1.0f};
  table.AccumulateGrad(row, g);
  table.AccumulateGrad(row, g);
  EXPECT_FLOAT_EQ(table.RowGrad(row)[0], 2.0f);
  EXPECT_EQ(table.touched_rows().size(), 1u);  // deduplicated
  table.ApplyGradients(0.1f);
  EXPECT_FLOAT_EQ(table.RowGrad(row)[0], 0.0f);
}

TEST(EmbeddingTableTest, AdagradShrinksEffectiveStep) {
  EmbeddingTable table(1, false, 0.0f, 6);
  const uint32_t row = table.GetOrCreateRow(1);
  const std::vector<float> g{1.0f};
  table.AccumulateGrad(row, g);
  table.ApplyGradients(0.1f);
  const float first_step = std::fabs(table.Row(row)[0]);
  const float before = table.Row(row)[0];
  table.AccumulateGrad(row, g);
  table.ApplyGradients(0.1f);
  const float second_step = std::fabs(table.Row(row)[0] - before);
  EXPECT_LT(second_step, first_step);
}

// ---------- Losses ----------

TEST(GaussianKlTest, ZeroAtPrior) {
  Matrix mu(3, 4);
  Matrix logvar(3, 4);
  EXPECT_NEAR(GaussianKl(mu, logvar), 0.0, 1e-9);
}

TEST(GaussianKlTest, PositiveAwayFromPrior) {
  Matrix mu(1, 2, 1.0f);
  Matrix logvar(1, 2, 0.0f);
  // KL = 0.5 * sum(mu^2) = 1.0 for two dims of mu=1.
  EXPECT_NEAR(GaussianKl(mu, logvar), 1.0, 1e-6);
}

TEST(GaussianKlTest, GradientsMatchNumerical) {
  Rng rng(20);
  Matrix mu = Matrix::Gaussian(2, 3, 1.0f, rng);
  Matrix logvar = Matrix::Gaussian(2, 3, 0.5f, rng);
  Matrix mu_grad(2, 3), logvar_grad(2, 3);
  // Unnormalized (weight 1): gradients of batch-sum KL... GaussianKlBackward
  // uses per-element formulas matching batch-mean times weight=batch.
  GaussianKlBackward(mu, logvar, 1.0f, &mu_grad, &logvar_grad);
  const float h = 1e-3f;
  for (size_t i = 0; i < mu.size(); ++i) {
    Matrix mp = mu, mm = mu;
    mp.data()[i] += h;
    mm.data()[i] -= h;
    // GaussianKl averages over rows; scale numeric diff by rows.
    const double numeric =
        (GaussianKl(mp, logvar) - GaussianKl(mm, logvar)) / (2.0 * h) *
        double(mu.rows());
    EXPECT_NEAR(mu_grad.data()[i], numeric, 2e-2);
  }
  for (size_t i = 0; i < logvar.size(); ++i) {
    Matrix lp = logvar, lm = logvar;
    lp.data()[i] += h;
    lm.data()[i] -= h;
    const double numeric =
        (GaussianKl(mu, lp) - GaussianKl(mu, lm)) / (2.0 * h) *
        double(mu.rows());
    EXPECT_NEAR(logvar_grad.data()[i], numeric, 2e-2);
  }
}

TEST(MultinomialNllTest, UniformLogitsGiveLogC) {
  const std::vector<float> logits(4, 0.0f);
  const std::vector<float> counts{1.0f, 0.0f, 0.0f, 0.0f};
  EXPECT_NEAR(MultinomialNll(logits, counts), std::log(4.0), 1e-6);
}

TEST(MultinomialNllTest, GradientIsSoftmaxMinusCounts) {
  const std::vector<float> logits{0.0f, 1.0f, -1.0f};
  const std::vector<float> counts{2.0f, 0.0f, 1.0f};  // N = 3
  std::vector<float> grad(3);
  MultinomialNll(logits, counts, grad);
  std::vector<float> probs = logits;
  SoftmaxInPlace(probs);
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(grad[j], 3.0f * probs[j] - counts[j], 1e-5f);
  }
  // Gradient sums to zero (softmax mass = counts mass).
  EXPECT_NEAR(grad[0] + grad[1] + grad[2], 0.0f, 1e-5f);
}

TEST(MultinomialNllTest, GradientMatchesNumerical) {
  std::vector<float> logits{0.3f, -0.7f, 1.2f, 0.0f};
  const std::vector<float> counts{1.0f, 2.0f, 0.0f, 3.0f};
  std::vector<float> grad(4);
  const double base = MultinomialNll(logits, counts, grad);
  EXPECT_GT(base, 0.0);
  const float h = 1e-3f;
  for (int j = 0; j < 4; ++j) {
    std::vector<float> lp = logits, lm = logits;
    lp[j] += h;
    lm[j] -= h;
    const double numeric =
        (MultinomialNll(lp, counts) - MultinomialNll(lm, counts)) / (2.0 * h);
    EXPECT_NEAR(grad[j], numeric, 1e-2);
  }
}

TEST(MultinomialNllTest, EmptyCandidatesIsZero) {
  EXPECT_EQ(MultinomialNll({}, {}), 0.0);
}

TEST(MultinomialNllTest, PerfectPredictionHasLowLoss) {
  // Logit strongly favors the observed feature.
  const std::vector<float> logits{20.0f, 0.0f, 0.0f};
  const std::vector<float> counts{1.0f, 0.0f, 0.0f};
  EXPECT_LT(MultinomialNll(logits, counts), 1e-6);
}

}  // namespace
}  // namespace fvae::nn
