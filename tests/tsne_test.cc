#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "eval/tsne.h"
#include "math/matrix.h"
#include "math/vector_ops.h"

namespace fvae::eval {
namespace {

/// Two well-separated Gaussian blobs in 10-D.
Matrix TwoBlobs(size_t per_blob, Rng& rng) {
  Matrix points(2 * per_blob, 10);
  for (size_t i = 0; i < per_blob; ++i) {
    for (size_t d = 0; d < 10; ++d) {
      points(i, d) = static_cast<float>(rng.Normal(0.0, 0.3));
      points(per_blob + i, d) = static_cast<float>(rng.Normal(8.0, 0.3));
    }
  }
  return points;
}

TEST(TsneTest, OutputShape) {
  Rng rng(1);
  Matrix points = TwoBlobs(15, rng);
  TsneConfig config;
  config.perplexity = 10.0;
  config.iterations = 150;
  const Matrix y = Tsne(points, config);
  EXPECT_EQ(y.rows(), 30u);
  EXPECT_EQ(y.cols(), 2u);
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_TRUE(std::isfinite(y.data()[i]));
  }
}

TEST(TsneTest, SeparatesDistantClusters) {
  Rng rng(2);
  constexpr size_t kPerBlob = 25;
  Matrix points = TwoBlobs(kPerBlob, rng);
  TsneConfig config;
  config.perplexity = 12.0;
  config.iterations = 300;
  const Matrix y = Tsne(points, config);

  // Mean intra-blob distance must be far below inter-blob distance.
  double intra = 0.0, inter = 0.0;
  size_t n_intra = 0, n_inter = 0;
  for (size_t a = 0; a < 2 * kPerBlob; ++a) {
    for (size_t b = a + 1; b < 2 * kPerBlob; ++b) {
      const double dist = std::sqrt(
          SquaredDistance({y.Row(a), 2}, {y.Row(b), 2}));
      const bool same = (a < kPerBlob) == (b < kPerBlob);
      if (same) {
        intra += dist;
        ++n_intra;
      } else {
        inter += dist;
        ++n_inter;
      }
    }
  }
  intra /= double(n_intra);
  inter /= double(n_inter);
  EXPECT_GT(inter, 2.0 * intra);
}

TEST(TsneTest, DeterministicGivenSeed) {
  Rng rng(3);
  Matrix points = TwoBlobs(10, rng);
  TsneConfig config;
  config.perplexity = 8.0;
  config.iterations = 100;
  const Matrix a = Tsne(points, config);
  const Matrix b = Tsne(points, config);
  EXPECT_LT(Matrix::MaxAbsDiff(a, b), 1e-9f);
}

TEST(TsneTest, CenteredOutput) {
  Rng rng(4);
  Matrix points = TwoBlobs(10, rng);
  TsneConfig config;
  config.perplexity = 8.0;
  config.iterations = 50;
  const Matrix y = Tsne(points, config);
  for (size_t d = 0; d < 2; ++d) {
    double mean = 0.0;
    for (size_t i = 0; i < y.rows(); ++i) mean += y(i, d);
    EXPECT_NEAR(mean / double(y.rows()), 0.0, 1e-4);
  }
}

}  // namespace
}  // namespace fvae::eval
