#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/random.h"
#include "core/fvae_model.h"
#include "datagen/profile_generator.h"
#include "distributed/parallel_trainer.h"
#include "eval/tasks.h"

namespace fvae::distributed {
namespace {

core::FvaeConfig SmallConfig() {
  core::FvaeConfig config;
  config.latent_dim = 8;
  config.encoder_hidden = {16};
  config.decoder_hidden = {16};
  config.sampling_strategy = core::SamplingStrategy::kUniform;
  config.sampling_rate = 0.5;
  config.anneal_steps = 20;
  config.seed = 2;
  return config;
}

MultiFieldDataset SmallProfiles(size_t users) {
  ProfileGeneratorConfig config = ShortContentConfig(users, /*seed=*/71);
  config.fields[2].vocab_size = 256;
  config.fields[3].vocab_size = 512;
  config.num_topics = 6;
  return GenerateProfiles(config).dataset;
}

TEST(ParallelTrainerTest, SingleWorkerRuns) {
  const MultiFieldDataset data = SmallProfiles(120);
  DistributedConfig config;
  config.num_workers = 1;
  config.epochs = 1;
  config.batch_size = 32;
  ParallelFvaeTrainer trainer(SmallConfig(), config);
  const DistributedResult result = trainer.Train(data);
  EXPECT_GT(result.users_processed, 0u);
  EXPECT_GT(result.rounds, 0u);
  EXPECT_GT(result.UsersPerSecond(), 0.0);
}

TEST(ParallelTrainerTest, MultiWorkerProcessesAllShards) {
  const MultiFieldDataset data = SmallProfiles(200);
  DistributedConfig config;
  config.num_workers = 4;
  config.epochs = 2;
  config.batch_size = 16;
  config.sync_every_batches = 2;
  ParallelFvaeTrainer trainer(SmallConfig(), config);
  const DistributedResult result = trainer.Train(data);
  // Roughly epochs * num_users total user visits (round-robin shards may
  // wrap unevenly at boundaries).
  EXPECT_GT(result.users_processed, size_t(200 * 2 * 0.7));
  EXPECT_GT(result.simulated_seconds, 0.0);
}

TEST(ParallelTrainerTest, ThreadModeAlsoWorks) {
  const MultiFieldDataset data = SmallProfiles(120);
  DistributedConfig config;
  config.num_workers = 3;
  config.epochs = 1;
  config.batch_size = 16;
  config.sync_every_batches = 2;
  config.simulate_cluster = false;
  ParallelFvaeTrainer trainer(SmallConfig(), config);
  const DistributedResult result = trainer.Train(data);
  EXPECT_GT(result.users_processed, 0u);
  EXPECT_DOUBLE_EQ(result.simulated_seconds, result.seconds);
}

TEST(ParallelTrainerTest, SimulatedClusterTimeShrinksWithWorkers) {
  // Sized so per-round compute clearly dominates the delta-sync cost.
  const MultiFieldDataset data = SmallProfiles(1600);
  core::FvaeConfig model_config = SmallConfig();
  model_config.encoder_hidden = {32};
  model_config.decoder_hidden = {32};
  auto run = [&](size_t workers) {
    DistributedConfig config;
    config.num_workers = workers;
    config.epochs = 2;
    config.batch_size = 50;
    config.sync_every_batches = 4;
    ParallelFvaeTrainer trainer(model_config, config);
    return trainer.Train(data).simulated_seconds;
  };
  const double one = run(1);
  const double four = run(4);
  // Four servers split the per-round work ~4x; allow generous noise.
  EXPECT_LT(four, one * 0.6);
}

TEST(ParallelTrainerTest, AveragingSynchronizesDenseParams) {
  const MultiFieldDataset data = SmallProfiles(100);
  DistributedConfig config;
  config.num_workers = 3;
  config.epochs = 1;
  config.batch_size = 16;
  config.sync_every_batches = 1;
  ParallelFvaeTrainer trainer(SmallConfig(), config);
  trainer.Train(data);
  // After the final barrier, replica 0's model is the consensus model and
  // must produce valid embeddings.
  std::vector<uint32_t> users(10);
  std::iota(users.begin(), users.end(), 0u);
  const Matrix z = trainer.model().Encode(data, users);
  EXPECT_EQ(z.rows(), 10u);
  for (size_t i = 0; i < z.size(); ++i) {
    EXPECT_TRUE(std::isfinite(z.data()[i]));
  }
}

TEST(ParallelTrainerTest, DistributedModelLearnsSignal) {
  // The averaged model should beat chance on tag prediction.
  ProfileGeneratorConfig gen_config = ShortContentConfig(300, /*seed=*/73);
  gen_config.fields[2].vocab_size = 256;
  gen_config.fields[3].vocab_size = 512;
  gen_config.fields[3].avg_features = 10.0;
  gen_config.num_topics = 6;
  const GeneratedProfiles gen = GenerateProfiles(gen_config);

  DistributedConfig config;
  config.num_workers = 2;
  config.epochs = 10;
  config.batch_size = 32;
  config.sync_every_batches = 4;
  core::FvaeConfig model_config = SmallConfig();
  model_config.latent_dim = 16;
  model_config.encoder_hidden = {32};
  model_config.decoder_hidden = {32};
  ParallelFvaeTrainer trainer(model_config, config);
  trainer.Train(gen.dataset);

  // Wrap the trained model for the tag-prediction task.
  class Wrapper : public eval::RepresentationModel {
   public:
    explicit Wrapper(core::FieldVae* model) : model_(model) {}
    std::string Name() const override { return "distributed-fvae"; }
    void Fit(const MultiFieldDataset&) override {}
    Matrix Embed(const MultiFieldDataset& data,
                 std::span<const uint32_t> users) const override {
      return model_->Encode(data, users);
    }
    Matrix Score(const MultiFieldDataset& input,
                 std::span<const uint32_t> users, size_t field,
                 std::span<const uint64_t> candidates) const override {
      return model_->EncodeAndScore(input, users, field, candidates);
    }

   private:
    core::FieldVae* model_;
  };

  Wrapper wrapper(&trainer.model());
  std::vector<uint32_t> users(gen.dataset.num_users());
  std::iota(users.begin(), users.end(), 0u);
  Rng rng(75);
  const eval::TaskMetrics metrics = eval::RunTagPrediction(
      wrapper, gen.dataset, users, 3, gen.field_vocab[3], rng);
  EXPECT_GT(metrics.auc, 0.6);
}

}  // namespace
}  // namespace fvae::distributed
