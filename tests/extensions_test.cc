// Tests for the extension components: LayerNorm, annealing schedules,
// AudienceExpander, MostPopular baseline.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baselines/most_popular.h"
#include "common/random.h"
#include "core/trainer.h"
#include "lookalike/audience_expander.h"
#include "math/matrix.h"
#include "nn/layer_norm.h"

namespace fvae {
namespace {

// ---------- LayerNorm ----------

TEST(LayerNormTest, NormalizesPerRow) {
  nn::LayerNorm norm(4);
  Matrix input = Matrix::FromRows({{1, 2, 3, 4}, {10, 10, 10, 10}});
  Matrix output;
  norm.Forward(input, &output, false);
  // Row 0: mean 2.5, centered/scaled -> mean 0, unit variance.
  double mean = 0.0, var = 0.0;
  for (int d = 0; d < 4; ++d) mean += output(0, d);
  mean /= 4.0;
  for (int d = 0; d < 4; ++d) {
    var += (output(0, d) - mean) * (output(0, d) - mean);
  }
  var /= 4.0;
  EXPECT_NEAR(mean, 0.0, 1e-5);
  EXPECT_NEAR(var, 1.0, 1e-3);
  // Constant row: zero output (epsilon guards the division).
  for (int d = 0; d < 4; ++d) EXPECT_NEAR(output(1, d), 0.0f, 1e-4f);
}

TEST(LayerNormTest, GainBiasApplied) {
  nn::LayerNorm norm(2);
  norm.gain()(0, 0) = 2.0f;
  norm.gain()(0, 1) = 2.0f;
  norm.bias()(0, 0) = 1.0f;
  norm.bias()(0, 1) = 1.0f;
  Matrix input = Matrix::FromRows({{-1, 1}});
  Matrix output;
  norm.Forward(input, &output, false);
  // normalized = (-1, 1) exactly; y = 2*n + 1 = (-1, 3).
  EXPECT_NEAR(output(0, 0), -1.0f, 1e-3f);
  EXPECT_NEAR(output(0, 1), 3.0f, 1e-3f);
}

TEST(LayerNormTest, GradientsMatchNumerical) {
  Rng rng(3);
  nn::LayerNorm norm(6);
  // Non-trivial gain/bias.
  for (int d = 0; d < 6; ++d) {
    norm.gain()(0, d) = 1.0f + 0.1f * d;
    norm.bias()(0, d) = 0.05f * d;
  }
  Matrix input = Matrix::Gaussian(3, 6, 1.0f, rng);
  Matrix loss_weights = Matrix::Gaussian(3, 6, 1.0f, rng);

  auto loss_of = [&](const Matrix& in) {
    Matrix out;
    norm.Forward(in, &out, false);
    double total = 0.0;
    for (size_t i = 0; i < out.size(); ++i) {
      total += double(out.data()[i]) * loss_weights.data()[i];
    }
    return total;
  };

  Matrix output;
  norm.Forward(input, &output, false);
  Matrix input_grad;
  norm.Backward(loss_weights, &input_grad);
  std::vector<nn::ParamRef> params;
  norm.CollectParams(&params);
  std::vector<Matrix> analytic;
  for (auto& p : params) analytic.push_back(*p.grad);

  const float h = 1e-3f;
  for (size_t i = 0; i < input.size(); ++i) {
    Matrix plus = input, minus = input;
    plus.data()[i] += h;
    minus.data()[i] -= h;
    const double numeric = (loss_of(plus) - loss_of(minus)) / (2.0 * h);
    EXPECT_NEAR(input_grad.data()[i], numeric, 3e-2) << "input " << i;
  }
  for (size_t p = 0; p < params.size(); ++p) {
    Matrix& value = *params[p].value;
    for (size_t i = 0; i < value.size(); ++i) {
      const float original = value.data()[i];
      value.data()[i] = original + h;
      const double lp = loss_of(input);
      value.data()[i] = original - h;
      const double lm = loss_of(input);
      value.data()[i] = original;
      EXPECT_NEAR(analytic[p].data()[i], (lp - lm) / (2.0 * h), 3e-2);
    }
  }
}

// ---------- Annealing schedules ----------

TEST(AnnealScheduleTest, LinearRampsAndSaturates) {
  core::FvaeConfig config;
  config.beta = 0.4f;
  config.anneal_steps = 10;
  config.anneal_schedule = core::AnnealSchedule::kLinear;
  EXPECT_NEAR(core::AnnealedBeta(config, 1), 0.04f, 1e-6f);
  EXPECT_NEAR(core::AnnealedBeta(config, 5), 0.2f, 1e-6f);
  EXPECT_NEAR(core::AnnealedBeta(config, 10), 0.4f, 1e-6f);
  EXPECT_NEAR(core::AnnealedBeta(config, 1000), 0.4f, 1e-6f);
}

TEST(AnnealScheduleTest, CyclicalRepeats) {
  core::FvaeConfig config;
  config.beta = 1.0f;
  config.anneal_steps = 4;
  config.anneal_schedule = core::AnnealSchedule::kCyclical;
  EXPECT_NEAR(core::AnnealedBeta(config, 1), 0.25f, 1e-6f);
  EXPECT_NEAR(core::AnnealedBeta(config, 4), 1.0f, 1e-6f);
  EXPECT_NEAR(core::AnnealedBeta(config, 5), 0.25f, 1e-6f);  // restart
  EXPECT_NEAR(core::AnnealedBeta(config, 8), 1.0f, 1e-6f);
}

TEST(AnnealScheduleTest, CosineIsSmoothAndMonotone) {
  core::FvaeConfig config;
  config.beta = 1.0f;
  config.anneal_steps = 100;
  config.anneal_schedule = core::AnnealSchedule::kCosine;
  float prev = -1.0f;
  for (size_t step = 1; step <= 100; ++step) {
    const float beta = core::AnnealedBeta(config, step);
    EXPECT_GE(beta, prev - 1e-6f);
    prev = beta;
  }
  EXPECT_NEAR(core::AnnealedBeta(config, 100), 1.0f, 1e-5f);
  EXPECT_NEAR(core::AnnealedBeta(config, 50), 0.5f, 0.02f);
  EXPECT_LT(core::AnnealedBeta(config, 10), 0.1f);  // slow start
}

// ---------- AudienceExpander ----------

TEST(AudienceExpanderTest, PoolsAndExpands) {
  // Two groups along the first axis.
  Matrix embeddings = Matrix::FromRows({
      {1.0, 0.0}, {0.9, 0.1}, {1.1, -0.1},   // group A: users 0-2
      {0.0, 1.0}, {0.1, 0.9}, {-0.1, 1.1},   // group B: users 3-5
  });
  lookalike::AudienceExpander expander(embeddings);

  const std::vector<float> pooled = expander.PoolEmbedding({0, 1});
  EXPECT_NEAR(pooled[0], 0.95f, 1e-5f);
  EXPECT_NEAR(pooled[1], 0.05f, 1e-5f);

  // Seeding with two A users must surface the third A user first.
  const auto expanded = expander.Expand({0, 1}, 2);
  ASSERT_EQ(expanded.size(), 2u);
  EXPECT_EQ(expanded[0], 2u);
  // Seeds are never returned.
  for (uint32_t u : expanded) {
    EXPECT_NE(u, 0u);
    EXPECT_NE(u, 1u);
  }
}

TEST(AudienceExpanderTest, CountClamped) {
  Matrix embeddings = Matrix::FromRows({{1, 0}, {0, 1}});
  lookalike::AudienceExpander expander(embeddings);
  EXPECT_EQ(expander.Expand({0}, 100).size(), 1u);
}

// ---------- MostPopular ----------

TEST(MostPopularTest, ScoresByGlobalFrequency) {
  MultiFieldDataset::Builder builder({FieldSchema{"tag", true}});
  builder.AddUser({{{1, 1.0f}, {2, 1.0f}}});
  builder.AddUser({{{1, 1.0f}}});
  builder.AddUser({{{1, 1.0f}, {3, 1.0f}}});
  const MultiFieldDataset data = builder.Build();

  baselines::MostPopularModel model;
  model.Fit(data);
  const std::vector<uint32_t> users{0, 1};
  const std::vector<uint64_t> candidates{1, 2, 3, 99};
  const Matrix scores = model.Score(data, users, 0, candidates);
  // Identical for every user; ordered by frequency 3 > 1 = 1 > 0.
  EXPECT_FLOAT_EQ(scores(0, 0), scores(1, 0));
  EXPECT_GT(scores(0, 0), scores(0, 1));
  EXPECT_FLOAT_EQ(scores(0, 1), scores(0, 2));
  EXPECT_EQ(scores(0, 3), 0.0f);  // unseen candidate
}

TEST(MostPopularTest, EmbedShapePlaceholder) {
  MultiFieldDataset::Builder builder({FieldSchema{"f", false}});
  builder.AddUser({{{1, 1.0f}}});
  const MultiFieldDataset data = builder.Build();
  baselines::MostPopularModel model;
  model.Fit(data);
  const Matrix z = model.Embed(data, std::vector<uint32_t>{0});
  EXPECT_EQ(z.rows(), 1u);
  EXPECT_EQ(z.cols(), 1u);
}

}  // namespace
}  // namespace fvae
