#include <gtest/gtest.h>

#include <cmath>

#include "core/fvae_model.h"
#include "core/trainer.h"
#include "data/dataset.h"

namespace fvae::core {
namespace {

MultiFieldDataset Fixture(size_t users) {
  MultiFieldDataset::Builder builder(
      {FieldSchema{"ch", false}, FieldSchema{"tag", true}});
  for (size_t i = 0; i < users; ++i) {
    const uint64_t group = i % 2;
    builder.AddUser({{{group + 1, 1.0f}},
                     {{100 + group * 100, 1.0f}}});
  }
  return builder.Build();
}

FvaeConfig SmallConfig() {
  FvaeConfig config;
  config.latent_dim = 4;
  config.encoder_hidden = {8};
  config.decoder_hidden = {8};
  config.sampling_strategy = SamplingStrategy::kNone;
  config.anneal_steps = 10;
  config.seed = 3;
  return config;
}

TEST(TrainerTest, RunsRequestedEpochs) {
  const MultiFieldDataset data = Fixture(40);
  FieldVae model(SmallConfig(), data.fields());
  TrainOptions options;
  options.batch_size = 10;
  options.epochs = 3;
  const TrainResult result = TrainFvae(model, data, options);
  EXPECT_EQ(result.epoch_loss.size(), 3u);
  EXPECT_EQ(result.steps, 12u);  // 4 batches x 3 epochs
  EXPECT_EQ(result.users_processed, 120u);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_GT(result.UsersPerSecond(), 0.0);
}

TEST(TrainerTest, EpochCallbackCanStopEarly) {
  const MultiFieldDataset data = Fixture(40);
  FieldVae model(SmallConfig(), data.fields());
  TrainOptions options;
  options.batch_size = 10;
  options.epochs = 10;
  size_t calls = 0;
  options.epoch_callback = [&](size_t epoch, double loss, double elapsed) {
    EXPECT_TRUE(std::isfinite(loss));
    EXPECT_GE(elapsed, 0.0);
    ++calls;
    return epoch < 1;  // stop after the second epoch
  };
  const TrainResult result = TrainFvae(model, data, options);
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(result.epoch_loss.size(), 2u);
}

TEST(TrainerTest, StepCallbackFiresAtInterval) {
  const MultiFieldDataset data = Fixture(40);
  FieldVae model(SmallConfig(), data.fields());
  TrainOptions options;
  options.batch_size = 10;
  options.epochs = 2;
  options.eval_every_steps = 3;
  std::vector<size_t> seen;
  options.step_callback = [&](size_t step, double elapsed) {
    EXPECT_GE(elapsed, 0.0);
    seen.push_back(step);
  };
  TrainFvae(model, data, options);
  ASSERT_EQ(seen.size(), 2u);  // 8 steps total -> steps 3 and 6
  EXPECT_EQ(seen[0], 3u);
  EXPECT_EQ(seen[1], 6u);
}

TEST(TrainerTest, TimeBudgetStopsTraining) {
  const MultiFieldDataset data = Fixture(200);
  FieldVae model(SmallConfig(), data.fields());
  TrainOptions options;
  options.batch_size = 4;
  options.epochs = 100000;  // far more than the budget allows
  options.time_budget_seconds = 0.1;
  const TrainResult result = TrainFvae(model, data, options);
  EXPECT_LT(result.seconds, 5.0);
  EXPECT_LT(result.epoch_loss.size(), 100000u);
}

TEST(TrainerTest, MeanCandidatesReported) {
  const MultiFieldDataset data = Fixture(20);
  FieldVae model(SmallConfig(), data.fields());
  TrainOptions options;
  options.batch_size = 20;
  options.epochs = 1;
  const TrainResult result = TrainFvae(model, data, options);
  ASSERT_EQ(result.mean_candidates_per_field.size(), 2u);
  EXPECT_NEAR(result.mean_candidates_per_field[0], 2.0, 1e-9);
  EXPECT_NEAR(result.mean_candidates_per_field[1], 2.0, 1e-9);
}

TEST(TrainerTest, EmptyDatasetIsANoOp) {
  // Regression: an empty dataset used to abort, and the epoch callback
  // dereferenced epoch_loss.back() on a zero-batch epoch.
  MultiFieldDataset::Builder builder(
      {FieldSchema{"ch", false}, FieldSchema{"tag", true}});
  const MultiFieldDataset data = builder.Build();
  FieldVae model(SmallConfig(), data.fields());
  TrainOptions options;
  options.batch_size = 10;
  options.epochs = 3;
  bool callback_ran = false;
  options.epoch_callback = [&](size_t, double, double) {
    callback_ran = true;
    return true;
  };
  const TrainResult result = TrainFvae(model, data, options);
  EXPECT_EQ(result.steps, 0u);
  EXPECT_EQ(result.users_processed, 0u);
  EXPECT_TRUE(result.epoch_loss.empty());
  EXPECT_FALSE(callback_ran);
}

TEST(TrainerTest, LossTrendsDownOverEpochs) {
  const MultiFieldDataset data = Fixture(100);
  FvaeConfig config = SmallConfig();
  FieldVae model(config, data.fields());
  TrainOptions options;
  options.batch_size = 25;
  options.epochs = 15;
  const TrainResult result = TrainFvae(model, data, options);
  ASSERT_GE(result.epoch_loss.size(), 10u);
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front());
}

}  // namespace
}  // namespace fvae::core
