#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "common/atomic_file.h"
#include "common/failpoint.h"
#include "common/retry.h"
#include "core/checkpoint.h"
#include "core/fvae_model.h"
#include "core/model_io.h"
#include "core/trainer.h"

namespace fvae::core {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Environment-variable arming. This must be the FIRST test in the binary:
// FVAE_FAILPOINT is parsed once, on the first FailpointCheck of the
// process, and the forked child below inherits that once-flag. As long as
// nothing called FailpointCheck before the fork, the child parses the
// environment fresh.
// ---------------------------------------------------------------------------
TEST(FailpointEnvTest, EnvVariableArmsErrorActionWithHitBudget) {
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child. No gtest assertions here — communicate via the exit code.
    ::setenv("FVAE_FAILPOINT",
             "env.test_point:error@2, malformed::entry ,env.other", 1);
    if (FailpointCheck("env.test_point").code() != StatusCode::kUnavailable) {
      ::_exit(10);
    }
    if (FailpointCheck("env.test_point").code() != StatusCode::kUnavailable) {
      ::_exit(11);
    }
    // Hit budget of 2 exhausted: the point goes dormant again.
    if (!FailpointCheck("env.test_point").ok()) ::_exit(12);
    if (FailpointHitCount("env.test_point") != 2) ::_exit(13);
    // A bare name defaults to kill; prove it is armed without dying.
    if (FailpointHitCount("env.other") != 0) ::_exit(14);
    // The malformed entry must have been ignored, not crashed on.
    if (!FailpointCheck("malformed").ok()) ::_exit(15);
    ::_exit(0);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0) << "child failed at checkpoint "
                                     << WEXITSTATUS(wstatus);
}

TEST(FailpointTest, ScopedArmErrorsUntilBudgetExhausted) {
  ScopedFailpoint fp("unit.point", FailpointAction::kError, 2);
  EXPECT_EQ(FailpointCheck("unit.point").code(), StatusCode::kUnavailable);
  EXPECT_EQ(FailpointCheck("unit.point").code(), StatusCode::kUnavailable);
  EXPECT_TRUE(FailpointCheck("unit.point").ok());
  EXPECT_EQ(fp.hits(), 2u);
  EXPECT_TRUE(FailpointCheck("unit.never_armed").ok());
}

TEST(FailpointTest, DisarmedAfterScopeEnds) {
  {
    ScopedFailpoint fp("unit.scoped", FailpointAction::kError);
    EXPECT_FALSE(FailpointCheck("unit.scoped").ok());
  }
  EXPECT_TRUE(FailpointCheck("unit.scoped").ok());
}

TEST(RetryTest, RetriesOnlyUnavailable) {
  RetryOptions options;
  options.initial_backoff_ms = 0.0;
  int calls = 0;
  Status s = RetryWithBackoff(options, [&] {
    ++calls;
    return calls < 3 ? Status::Unavailable("transient")
                     : Status::Ok();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);

  calls = 0;
  s = RetryWithBackoff(options, [&] {
    ++calls;
    return Status::InvalidArgument("permanent");
  });
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);  // permanent failures are not retried
}

// ---------------------------------------------------------------------------
// Fixtures shared by the checkpoint tests.
// ---------------------------------------------------------------------------
class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fvae_ckpt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  fs::path dir_;
};

MultiFieldDataset Fixture(size_t users = 64) {
  MultiFieldDataset::Builder builder(
      {FieldSchema{"ch", false}, FieldSchema{"tag", true}});
  for (size_t i = 0; i < users; ++i) {
    const uint64_t group = i % 4;
    builder.AddUser({{{group + 1, 1.0f}},
                     {{100 + group, 1.0f}, {200 + (i % 7), 1.0f}}});
  }
  return builder.Build();
}

FvaeConfig SmallConfig() {
  FvaeConfig config;
  config.latent_dim = 6;
  config.encoder_hidden = {12};
  config.decoder_hidden = {12};
  config.anneal_steps = 8;
  config.sampling_strategy = SamplingStrategy::kUniform;
  config.sampling_rate = 0.5;
  config.seed = 7;
  return config;
}

/// A well-formed cursor for `model` (the loader insists the per-field RNG
/// vectors match the schema arity).
TrainingCursor MakeCursor(const FieldVae& model, uint64_t step) {
  TrainingCursor cursor;
  cursor.step = step;
  cursor.epoch = step / 4;
  cursor.batch_in_epoch = step % 4;
  cursor.users_processed = step * 16;
  cursor.shuffle_seed = 99;
  cursor.candidate_accum.assign(model.num_fields(), 0.0);
  cursor.model_rng = model.rng_state();
  for (size_t k = 0; k < model.num_fields(); ++k) {
    cursor.input_table_rng.push_back(model.input_table(k).rng_state());
    cursor.output_table_rng.push_back(model.output_table(k).rng_state());
  }
  return cursor;
}

Matrix EncodeAll(const FieldVae& model, const MultiFieldDataset& data) {
  std::vector<uint32_t> users(data.num_users());
  std::iota(users.begin(), users.end(), 0u);
  return model.Encode(data, users);
}

// ---------------------------------------------------------------------------
// AtomicFileWriter.
// ---------------------------------------------------------------------------
TEST_F(CheckpointTest, AtomicWriterCommitPublishes) {
  AtomicFileWriter writer;
  ASSERT_TRUE(writer.Open(Path("out.txt"), "unit.atomic").ok());
  writer.stream() << "hello";
  ASSERT_TRUE(writer.Commit().ok());
  EXPECT_EQ(writer.bytes_committed(), 5u);
  std::ifstream in(Path("out.txt"));
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "hello");
  EXPECT_FALSE(fs::exists(Path("out.txt") + ".tmp"));
}

TEST_F(CheckpointTest, AtomicWriterAbortLeavesNothing) {
  {
    AtomicFileWriter writer;
    ASSERT_TRUE(writer.Open(Path("gone.txt"), "unit.atomic").ok());
    writer.stream() << "doomed";
    writer.Abort();
  }
  EXPECT_FALSE(fs::exists(Path("gone.txt")));
  EXPECT_FALSE(fs::exists(Path("gone.txt") + ".tmp"));
}

TEST_F(CheckpointTest, AtomicWriterDestructorAborts) {
  {
    AtomicFileWriter writer;
    ASSERT_TRUE(writer.Open(Path("dtor.txt"), "unit.atomic").ok());
    writer.stream() << "dropped on the floor";
  }
  EXPECT_FALSE(fs::exists(Path("dtor.txt")));
  EXPECT_FALSE(fs::exists(Path("dtor.txt") + ".tmp"));
}

TEST_F(CheckpointTest, AtomicWriterFailureKeepsOldFile) {
  {
    std::ofstream out(Path("keep.txt"));
    out << "old";
  }
  ScopedFailpoint fp("unit.atomic.before_rename", FailpointAction::kError);
  AtomicFileWriter writer;
  ASSERT_TRUE(writer.Open(Path("keep.txt"), "unit.atomic").ok());
  writer.stream() << "new content that must not land";
  EXPECT_EQ(writer.Commit().code(), StatusCode::kUnavailable);

  std::ifstream in(Path("keep.txt"));
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "old");
  EXPECT_FALSE(fs::exists(Path("keep.txt") + ".tmp"));
}

// ---------------------------------------------------------------------------
// Kill matrix: SIGKILL the process at every registered save failpoint and
// prove the canonical checkpoint is always loadable — either the old file
// or the completely-written new one, never a torn hybrid.
// ---------------------------------------------------------------------------
TEST_F(CheckpointTest, KillAtEverySaveStageLeavesOldOrNewCheckpoint) {
  const MultiFieldDataset data = Fixture();
  FieldVae old_model(SmallConfig(), data.fields());
  TrainOptions options;
  options.batch_size = 16;
  options.epochs = 1;
  TrainFvae(old_model, data, options);

  FvaeConfig new_config = SmallConfig();
  new_config.seed = 21;
  FieldVae new_model(new_config, data.fields());
  TrainFvae(new_model, data, options);

  const struct {
    const char* stage;
    bool expect_new;  // did the rename land before the kill?
  } kStages[] = {
      {"model_io.save.before_tmp_write", false},
      {"model_io.save.after_tmp_write", false},
      {"model_io.save.before_rename", false},
      {"model_io.save.after_rename", true},
  };

  for (const auto& [stage, expect_new] : kStages) {
    SCOPED_TRACE(stage);
    const std::string path = Path("canon.fvmd");
    ASSERT_TRUE(SaveCheckpoint(old_model, MakeCursor(old_model, 1), path)
                    .ok());

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ArmFailpoint(stage, FailpointAction::kKill);
      // The kill failpoint fires mid-save; the status never materializes.
      (void)SaveCheckpoint(new_model, MakeCursor(new_model, 2), path);
      ::_exit(77);  // reached only if the failpoint failed to fire
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child exited instead of dying";
    EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

    auto loaded = LoadCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ASSERT_TRUE(loaded->has_cursor);
    EXPECT_EQ(loaded->cursor.step, expect_new ? 2u : 1u);
    const Matrix want =
        EncodeAll(expect_new ? new_model : old_model, data);
    const Matrix got = EncodeAll(*loaded->model, data);
    EXPECT_EQ(Matrix::MaxAbsDiff(want, got), 0.0f);
    fs::remove(path);
    fs::remove(path + ".tmp");
  }
}

// ---------------------------------------------------------------------------
// Exact resume.
// ---------------------------------------------------------------------------
TEST_F(CheckpointTest, ResumeReproducesUninterruptedRunBitwise) {
  const MultiFieldDataset data = Fixture(64);
  TrainOptions options;
  options.batch_size = 16;  // 4 steps per epoch
  options.epochs = 4;
  options.shuffle_seed = 5;

  // Reference: one uninterrupted run.
  FieldVae reference(SmallConfig(), data.fields());
  const TrainResult ref_result = TrainFvae(reference, data, options);
  ASSERT_EQ(ref_result.steps, 16u);

  // Same run, saving a checkpoint every 3 steps (so the mid-run
  // checkpoints land mid-epoch, the hard case for the cursor).
  TrainOptions ckpt_options = options;
  ckpt_options.checkpoint_every_steps = 3;
  ckpt_options.checkpoint_dir = Path("ckpts");
  ckpt_options.checkpoint_retain = 16;
  FieldVae full(SmallConfig(), data.fields());
  TrainFvae(full, data, ckpt_options);

  // Checkpointing must observe, never perturb, the run.
  EXPECT_EQ(Matrix::MaxAbsDiff(EncodeAll(reference, data),
                               EncodeAll(full, data)),
            0.0f);

  // Resume from a mid-run checkpoint (step 6 = epoch 1, batch 2) as if the
  // process had been killed there, and train to completion.
  auto loaded = LoadCheckpoint(Path("ckpts") + "/checkpoint-6.fvmd");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->has_cursor);
  EXPECT_EQ(loaded->cursor.step, 6u);
  EXPECT_EQ(loaded->cursor.epoch, 1u);
  EXPECT_EQ(loaded->cursor.batch_in_epoch, 2u);

  const TrainResult resumed_result =
      TrainFvaeResumingFrom(*loaded->model, data, options, loaded->cursor);

  // The resumed parameters must be bitwise identical to the uninterrupted
  // run: encoder outputs, decoder scores, and the run totals all agree.
  EXPECT_EQ(Matrix::MaxAbsDiff(EncodeAll(reference, data),
                               EncodeAll(*loaded->model, data)),
            0.0f);
  const std::vector<uint64_t> candidates{100, 101, 102, 103, 200};
  const Matrix z_ref = EncodeAll(reference, data);
  EXPECT_EQ(Matrix::MaxAbsDiff(
                reference.ScoreField(z_ref, 1, candidates),
                loaded->model->ScoreField(z_ref, 1, candidates)),
            0.0f);
  EXPECT_EQ(resumed_result.steps, ref_result.steps);
  EXPECT_EQ(resumed_result.users_processed, ref_result.users_processed);
  ASSERT_EQ(resumed_result.epoch_loss.size(), ref_result.epoch_loss.size());
  for (size_t e = 0; e < ref_result.epoch_loss.size(); ++e) {
    EXPECT_EQ(resumed_result.epoch_loss[e], ref_result.epoch_loss[e])
        << "epoch " << e;
  }
  ASSERT_EQ(resumed_result.mean_candidates_per_field.size(),
            ref_result.mean_candidates_per_field.size());
  for (size_t k = 0; k < ref_result.mean_candidates_per_field.size(); ++k) {
    EXPECT_EQ(resumed_result.mean_candidates_per_field[k],
              ref_result.mean_candidates_per_field[k]);
  }
}

TEST_F(CheckpointTest, SavedModelIsExactWarmStart) {
  const MultiFieldDataset data = Fixture();
  TrainOptions options;
  options.batch_size = 16;
  options.epochs = 2;

  FieldVae model(SmallConfig(), data.fields());
  TrainFvae(model, data, options);
  ASSERT_TRUE(SaveFieldVae(model, Path("warm.fvmd")).ok());
  auto loaded = LoadFieldVae(Path("warm.fvmd"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Training both for one more epoch must stay bitwise identical; that
  // only holds if the Adam moments, AdaGrad accumulators, and RNG streams
  // all round-tripped (a fresh optimizer diverges within one step).
  TrainOptions more = options;
  more.epochs = 1;
  TrainFvae(model, data, more);
  TrainFvae(**loaded, data, more);
  EXPECT_EQ(Matrix::MaxAbsDiff(EncodeAll(model, data),
                               EncodeAll(**loaded, data)),
            0.0f);
}

TEST_F(CheckpointTest, V1ShimLoadsLegacyFiles) {
  const MultiFieldDataset data = Fixture();
  FieldVae model(SmallConfig(), data.fields());
  TrainOptions options;
  options.batch_size = 16;
  options.epochs = 1;
  TrainFvae(model, data, options);

  ASSERT_TRUE(SaveFieldVaeV1ForTesting(model, Path("legacy.fvmd")).ok());
  auto loaded = LoadCheckpoint(Path("legacy.fvmd"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(loaded->has_cursor);  // v1 carries no cursor
  EXPECT_EQ(Matrix::MaxAbsDiff(EncodeAll(model, data),
                               EncodeAll(*loaded->model, data)),
            0.0f);
}

// ---------------------------------------------------------------------------
// CheckpointManager: rotation, discovery, retry.
// ---------------------------------------------------------------------------
TEST_F(CheckpointTest, ManagerRotatesOldCheckpoints) {
  const MultiFieldDataset data = Fixture();
  FieldVae model(SmallConfig(), data.fields());

  CheckpointManagerOptions options;
  options.dir = Path("rot");
  options.retain = 2;
  CheckpointManager manager(options);
  for (uint64_t step : {1, 2, 3, 4, 5}) {
    ASSERT_TRUE(manager.Save(model, MakeCursor(model, step)).ok());
  }
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(Path("rot"))) {
    names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names,
            (std::vector<std::string>{"checkpoint-4.fvmd",
                                      "checkpoint-5.fvmd"}));

  auto latest = CheckpointManager::LatestIn(Path("rot"));
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, Path("rot") + "/checkpoint-5.fvmd");

  auto loaded = manager.LoadLatest();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->cursor.step, 5u);
}

TEST_F(CheckpointTest, DiscoveryIgnoresTmpDebrisAndForeignFiles) {
  const MultiFieldDataset data = Fixture();
  FieldVae model(SmallConfig(), data.fields());
  CheckpointManagerOptions options;
  options.dir = Path("deb");
  CheckpointManager manager(options);
  ASSERT_TRUE(manager.Save(model, MakeCursor(model, 3)).ok());
  {
    // Crash debris and unrelated files must not win discovery.
    std::ofstream(Path("deb") + "/checkpoint-999.fvmd.tmp") << "torn";
    std::ofstream(Path("deb") + "/notes.txt") << "hi";
    std::ofstream(Path("deb") + "/checkpoint-x.fvmd") << "not a step";
  }
  auto latest = CheckpointManager::LatestIn(Path("deb"));
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(*latest, Path("deb") + "/checkpoint-3.fvmd");
}

TEST_F(CheckpointTest, LatestInMissingDirIsNotFound) {
  auto latest = CheckpointManager::LatestIn(Path("no_such_dir"));
  EXPECT_EQ(latest.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, SaveRetriesTransientFailures) {
  const MultiFieldDataset data = Fixture();
  FieldVae model(SmallConfig(), data.fields());
  CheckpointManagerOptions options;
  options.dir = Path("retry");
  options.retry.initial_backoff_ms = 0.0;
  CheckpointManager manager(options);

  // The first two attempts hit a transient error at the rename boundary;
  // the third succeeds within the default 3-attempt budget.
  ScopedFailpoint fp("model_io.save.before_rename", FailpointAction::kError,
                     2);
  ASSERT_TRUE(manager.Save(model, MakeCursor(model, 1)).ok());
  EXPECT_EQ(fp.hits(), 2u);
  EXPECT_TRUE(
      LoadCheckpoint(Path("retry") + "/checkpoint-1.fvmd").ok());
}

TEST_F(CheckpointTest, SaveSurfacesPersistentFailure) {
  const MultiFieldDataset data = Fixture();
  FieldVae model(SmallConfig(), data.fields());
  CheckpointManagerOptions options;
  options.dir = Path("fail");
  options.retry.initial_backoff_ms = 0.0;
  CheckpointManager manager(options);

  ScopedFailpoint fp("model_io.save.before_rename", FailpointAction::kError);
  EXPECT_EQ(manager.Save(model, MakeCursor(model, 1)).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(fp.hits(), 3u);  // the full attempt budget was spent
  EXPECT_FALSE(fs::exists(Path("fail") + "/checkpoint-1.fvmd"));
}

// ---------------------------------------------------------------------------
// Corruption and truncation: a damaged checkpoint must be a clean error,
// never a garbage model.
// ---------------------------------------------------------------------------
TEST_F(CheckpointTest, TruncationAtAnyOffsetIsCleanError) {
  const MultiFieldDataset data = Fixture();
  FieldVae model(SmallConfig(), data.fields());
  TrainOptions options;
  options.batch_size = 16;
  options.epochs = 1;
  TrainFvae(model, data, options);
  ASSERT_TRUE(SaveCheckpoint(model, MakeCursor(model, 4), Path("full.fvmd"))
                  .ok());

  std::ifstream in(Path("full.fvmd"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GT(bytes.size(), 64u);

  std::vector<size_t> cut_points;
  for (size_t n = 0; n < 64 && n < bytes.size(); ++n) cut_points.push_back(n);
  for (size_t n = 64; n < bytes.size(); n += 509) cut_points.push_back(n);
  for (size_t back = 1; back <= 16 && back < bytes.size(); ++back) {
    cut_points.push_back(bytes.size() - back);
  }
  for (size_t n : cut_points) {
    std::ofstream out(Path("trunc.fvmd"), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(n));
    out.close();
    auto loaded = LoadCheckpoint(Path("trunc.fvmd"));
    EXPECT_FALSE(loaded.ok()) << "prefix of " << n << " bytes loaded";
  }

  // A mid-payload truncation specifically reports an IO error.
  {
    std::ofstream out(Path("trunc.fvmd"), std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto loaded = LoadCheckpoint(Path("trunc.fvmd"));
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(CheckpointTest, BitFlipsAreDetected) {
  const MultiFieldDataset data = Fixture();
  FieldVae model(SmallConfig(), data.fields());
  ASSERT_TRUE(
      SaveCheckpoint(model, MakeCursor(model, 1), Path("flip.fvmd")).ok());
  std::ifstream in(Path("flip.fvmd"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());

  bool saw_checksum_message = false;
  for (size_t offset = bytes.size() / 3; offset < bytes.size();
       offset += bytes.size() / 3) {
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x40);
    std::ofstream out(Path("bad.fvmd"), std::ios::binary);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    out.close();
    auto loaded = LoadCheckpoint(Path("bad.fvmd"));
    EXPECT_FALSE(loaded.ok()) << "flip at " << offset << " loaded";
    if (loaded.status().message().find("checksum") != std::string::npos) {
      saw_checksum_message = true;
    }
  }
  EXPECT_TRUE(saw_checksum_message);
}

TEST_F(CheckpointTest, BadMagicDiagnosticsNameFoundBytesAndPath) {
  {
    std::ofstream out(Path("junk.fvmd"), std::ios::binary);
    out << "XYZ!not a checkpoint";
  }
  auto loaded = LoadFieldVae(Path("junk.fvmd"));
  ASSERT_FALSE(loaded.ok());
  const std::string& message = loaded.status().message();
  EXPECT_NE(message.find(Path("junk.fvmd")), std::string::npos) << message;
  EXPECT_NE(message.find("FVMD"), std::string::npos) << message;
  // The bytes actually found must appear, so a mixed-up file is obvious.
  EXPECT_NE(message.find("58 59 5a 21"), std::string::npos) << message;
}

TEST_F(CheckpointTest, UnsupportedVersionDiagnosticsNameVersionAndPath) {
  {
    std::ofstream out(Path("future.fvmd"), std::ios::binary);
    out << "FVMD";
    const uint32_t version = 99;
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  }
  auto loaded = LoadFieldVae(Path("future.fvmd"));
  ASSERT_FALSE(loaded.ok());
  const std::string& message = loaded.status().message();
  EXPECT_NE(message.find("99"), std::string::npos) << message;
  EXPECT_NE(message.find(Path("future.fvmd")), std::string::npos) << message;
  EXPECT_NE(message.find("supported"), std::string::npos) << message;
}

}  // namespace
}  // namespace fvae::core
