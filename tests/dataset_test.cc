#include <gtest/gtest.h>

#include "data/dataset.h"

namespace fvae {
namespace {

MultiFieldDataset TwoFieldFixture() {
  MultiFieldDataset::Builder builder(
      {FieldSchema{"ch", false}, FieldSchema{"tag", true}});
  builder.AddUser({{{10, 1.0f}, {11, 2.0f}}, {{100, 1.0f}}});
  builder.AddUser({{}, {{100, 1.0f}, {101, 1.0f}, {102, 3.0f}}});
  builder.AddUser({{{11, 1.0f}}, {}});
  return builder.Build();
}

TEST(DatasetTest, BasicShape) {
  const MultiFieldDataset data = TwoFieldFixture();
  EXPECT_EQ(data.num_users(), 3u);
  EXPECT_EQ(data.num_fields(), 2u);
  EXPECT_EQ(data.field(0).name, "ch");
  EXPECT_FALSE(data.field(0).is_sparse);
  EXPECT_TRUE(data.field(1).is_sparse);
}

TEST(DatasetTest, UserFieldSpans) {
  const MultiFieldDataset data = TwoFieldFixture();
  auto u0_ch = data.UserField(0, 0);
  ASSERT_EQ(u0_ch.size(), 2u);
  EXPECT_EQ(u0_ch[0].id, 10u);
  EXPECT_EQ(u0_ch[1].value, 2.0f);

  EXPECT_TRUE(data.UserField(1, 0).empty());
  EXPECT_EQ(data.UserField(1, 1).size(), 3u);
  EXPECT_TRUE(data.UserField(2, 1).empty());
}

TEST(DatasetTest, UserFieldTotal) {
  const MultiFieldDataset data = TwoFieldFixture();
  EXPECT_DOUBLE_EQ(data.UserFieldTotal(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(data.UserFieldTotal(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(data.UserFieldTotal(2, 1), 0.0);
}

TEST(DatasetTest, NnzCounts) {
  const MultiFieldDataset data = TwoFieldFixture();
  EXPECT_EQ(data.FieldNnz(0), 3u);
  EXPECT_EQ(data.FieldNnz(1), 4u);
  EXPECT_EQ(data.TotalNnz(), 7u);
  EXPECT_NEAR(data.AverageFeaturesPerUser(), 7.0 / 3.0, 1e-12);
}

TEST(DatasetTest, DistinctFeatureIdsSorted) {
  const MultiFieldDataset data = TwoFieldFixture();
  const auto tags = data.DistinctFeatureIds(1);
  ASSERT_EQ(tags.size(), 3u);
  EXPECT_EQ(tags[0], 100u);
  EXPECT_EQ(tags[1], 101u);
  EXPECT_EQ(tags[2], 102u);
  const auto chs = data.DistinctFeatureIds(0);
  ASSERT_EQ(chs.size(), 2u);
}

TEST(DatasetTest, BuilderReturnsUserIndices) {
  MultiFieldDataset::Builder builder({FieldSchema{"f", false}});
  EXPECT_EQ(builder.AddUser({{}}), 0u);
  EXPECT_EQ(builder.AddUser({{{1, 1.0f}}}), 1u);
  EXPECT_EQ(builder.AddUser({{}}), 2u);
}

TEST(DatasetTest, EmptyDataset) {
  MultiFieldDataset::Builder builder({FieldSchema{"f", false}});
  const MultiFieldDataset data = builder.Build();
  EXPECT_EQ(data.num_users(), 0u);
  EXPECT_EQ(data.TotalNnz(), 0u);
  EXPECT_EQ(data.AverageFeaturesPerUser(), 0.0);
}

TEST(DatasetTest, SummaryMentionsFieldsAndUsers) {
  const MultiFieldDataset data = TwoFieldFixture();
  const std::string summary = data.Summary();
  EXPECT_NE(summary.find("users=3"), std::string::npos);
  EXPECT_NE(summary.find("tag"), std::string::npos);
}

TEST(DatasetTest, FeatureEntryEquality) {
  EXPECT_EQ((FeatureEntry{1, 2.0f}), (FeatureEntry{1, 2.0f}));
  EXPECT_FALSE((FeatureEntry{1, 2.0f}) == (FeatureEntry{1, 3.0f}));
}

}  // namespace
}  // namespace fvae
