#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "math/vector_ops.h"

namespace fvae {
namespace {

TEST(VectorOpsTest, Dot) {
  std::vector<float> a{1, 2, 3};
  std::vector<float> b{4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(Dot(std::span<const float>{}, {}), 0.0);
}

TEST(VectorOpsTest, Axpy) {
  std::vector<float> x{1, 2};
  std::vector<float> y{10, 20};
  Axpy(3.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 13.0f);
  EXPECT_FLOAT_EQ(y[1], 26.0f);
}

TEST(VectorOpsTest, ScaleInPlace) {
  std::vector<float> x{2, -4};
  ScaleInPlace(x, 0.5f);
  EXPECT_FLOAT_EQ(x[0], 1.0f);
  EXPECT_FLOAT_EQ(x[1], -2.0f);
}

TEST(VectorOpsTest, Norm2) {
  std::vector<float> x{3, 4};
  EXPECT_NEAR(Norm2(x), 5.0, 1e-9);
}

TEST(VectorOpsTest, SquaredDistance) {
  std::vector<float> a{0, 0};
  std::vector<float> b{3, 4};
  EXPECT_NEAR(SquaredDistance(a, b), 25.0, 1e-9);
}

TEST(VectorOpsTest, CosineSimilarity) {
  std::vector<float> a{1, 0};
  std::vector<float> b{0, 1};
  std::vector<float> c{2, 0};
  std::vector<float> zero{0, 0};
  EXPECT_NEAR(CosineSimilarity(a, b), 0.0, 1e-9);
  EXPECT_NEAR(CosineSimilarity(a, c), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, zero), 0.0);
}

TEST(VectorOpsTest, SoftmaxSumsToOneAndOrders) {
  std::vector<float> logits{1.0f, 2.0f, 3.0f};
  SoftmaxInPlace(logits);
  double total = 0.0;
  for (float p : logits) total += p;
  EXPECT_NEAR(total, 1.0, 1e-6);
  EXPECT_LT(logits[0], logits[1]);
  EXPECT_LT(logits[1], logits[2]);
}

TEST(VectorOpsTest, SoftmaxIsShiftInvariant) {
  std::vector<float> a{1.0f, 2.0f, 3.0f};
  std::vector<float> b{101.0f, 102.0f, 103.0f};
  SoftmaxInPlace(a);
  SoftmaxInPlace(b);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(a[i], b[i], 1e-6);
}

TEST(VectorOpsTest, SoftmaxHandlesExtremeValues) {
  std::vector<float> logits{-1000.0f, 1000.0f};
  SoftmaxInPlace(logits);
  EXPECT_NEAR(logits[0], 0.0f, 1e-6f);
  EXPECT_NEAR(logits[1], 1.0f, 1e-6f);
}

TEST(VectorOpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  std::vector<float> logits{0.5f, -1.0f, 2.0f, 0.0f};
  std::vector<float> probs = logits;
  SoftmaxInPlace(probs);
  LogSoftmaxInPlace(logits);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(logits[i], std::log(probs[i]), 1e-5);
  }
}

TEST(VectorOpsTest, SoftmaxEmptySpanIsNoOp) {
  // Regression: the old loop computed 0/0 on an empty span once callers
  // started handing it empty candidate sets.
  std::vector<float> empty;
  SoftmaxInPlace(empty);
  LogSoftmaxInPlace(empty);
  EXPECT_TRUE(empty.empty());
}

TEST(VectorOpsTest, SoftmaxAllNegInfYieldsUniformNotNan) {
  // Regression: all-(-inf) logits used to produce exp(-inf - -inf) =
  // exp(NaN) and poison the whole distribution.
  const float inf = std::numeric_limits<float>::infinity();
  std::vector<float> logits(4, -inf);
  SoftmaxInPlace(logits);
  for (float p : logits) EXPECT_FLOAT_EQ(p, 0.25f);

  std::vector<float> log_logits(4, -inf);
  LogSoftmaxInPlace(log_logits);
  for (float lp : log_logits) EXPECT_FLOAT_EQ(lp, -std::log(4.0f));
}

TEST(VectorOpsTest, SoftmaxNanStillPoisons) {
  // NaN input is a caller bug; it must stay visible, not be laundered
  // into the all-(-inf) uniform fallback.
  std::vector<float> logits{0.0f, std::numeric_limits<float>::quiet_NaN(),
                            1.0f};
  SoftmaxInPlace(logits);
  for (float p : logits) EXPECT_TRUE(std::isnan(p));
}

TEST(VectorOpsTest, ExpLogInPlace) {
  std::vector<float> x{0.0f, 1.0f, -2.0f};
  ExpInPlace(x);
  EXPECT_NEAR(x[0], 1.0f, 1e-6f);
  EXPECT_NEAR(x[1], std::exp(1.0f), 1e-5f);
  LogInPlace(x);
  EXPECT_NEAR(x[0], 0.0f, 1e-6f);
  EXPECT_NEAR(x[1], 1.0f, 1e-5f);
  EXPECT_NEAR(x[2], -2.0f, 1e-5f);
}

TEST(VectorOpsTest, LogSumExp) {
  std::vector<float> x{0.0f, 0.0f};
  EXPECT_NEAR(LogSumExp(x), std::log(2.0), 1e-6);
  std::vector<float> big{1000.0f, 1000.0f};
  EXPECT_NEAR(LogSumExp(big), 1000.0 + std::log(2.0), 1e-3);
}

TEST(VectorOpsTest, Activations) {
  std::vector<float> t{0.0f, 100.0f};
  TanhInPlace(t);
  EXPECT_NEAR(t[0], 0.0f, 1e-6f);
  EXPECT_NEAR(t[1], 1.0f, 1e-4f);

  std::vector<float> s{0.0f};
  SigmoidInPlace(s);
  EXPECT_NEAR(s[0], 0.5f, 1e-6f);

  std::vector<float> r{-2.0f, 3.0f};
  ReluInPlace(r);
  EXPECT_EQ(r[0], 0.0f);
  EXPECT_EQ(r[1], 3.0f);
}

TEST(VectorOpsTest, MeanAndVariance) {
  std::vector<float> x{1, 2, 3, 4};
  EXPECT_NEAR(Mean(x), 2.5, 1e-9);
  EXPECT_NEAR(Variance(x), 5.0 / 3.0, 1e-6);
  EXPECT_DOUBLE_EQ(Mean(std::span<const float>{}), 0.0);
  std::vector<float> single{7};
  EXPECT_DOUBLE_EQ(Variance(single), 0.0);
}

TEST(VectorOpsTest, L2Normalize) {
  std::vector<float> x{3, 4};
  L2NormalizeInPlace(x);
  EXPECT_NEAR(Norm2(x), 1.0, 1e-6);
  std::vector<float> zero{0, 0};
  L2NormalizeInPlace(zero);  // must not produce NaN
  EXPECT_EQ(zero[0], 0.0f);
}

}  // namespace
}  // namespace fvae
