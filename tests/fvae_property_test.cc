// Parameterized property tests of the FVAE over configuration space:
// for every combination of latent dimension, depth, and sampling strategy,
// training must reduce the loss, embeddings must be finite/deterministic,
// and the candidate accounting must respect the configuration.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/fvae_model.h"
#include "core/trainer.h"
#include "datagen/profile_generator.h"

namespace fvae::core {
namespace {

MultiFieldDataset Fixture() {
  ProfileGeneratorConfig config = ShortContentConfig(150, /*seed=*/5);
  config.fields[2].vocab_size = 128;
  config.fields[3].vocab_size = 256;
  config.fields[3].avg_features = 8.0;
  config.num_topics = 4;
  return GenerateProfiles(config).dataset;
}

struct Params {
  size_t latent;
  std::vector<size_t> encoder;
  std::vector<size_t> decoder;
  SamplingStrategy strategy;
  double rate;
  float beta;
};

class FvaePropertyTest : public ::testing::TestWithParam<Params> {};

TEST_P(FvaePropertyTest, TrainsAndEncodesSanely) {
  const Params& p = GetParam();
  const MultiFieldDataset data = Fixture();

  FvaeConfig config;
  config.latent_dim = p.latent;
  config.encoder_hidden = p.encoder;
  config.decoder_hidden = p.decoder;
  config.sampling_strategy = p.strategy;
  config.sampling_rate = p.rate;
  config.beta = p.beta;
  config.anneal_steps = 20;
  config.seed = 11;
  FieldVae model(config, data.fields());

  TrainOptions options;
  options.batch_size = 50;
  options.epochs = 8;
  const TrainResult result = TrainFvae(model, data, options);

  // Loss decreases over training and stays finite.
  ASSERT_GE(result.epoch_loss.size(), 2u);
  for (double loss : result.epoch_loss) {
    ASSERT_TRUE(std::isfinite(loss)) << "non-finite loss";
  }
  EXPECT_LT(result.epoch_loss.back(), result.epoch_loss.front());

  // Embeddings: right shape, finite, deterministic.
  std::vector<uint32_t> users(16);
  std::iota(users.begin(), users.end(), 0u);
  const Matrix z1 = model.Encode(data, users);
  const Matrix z2 = model.Encode(data, users);
  EXPECT_EQ(z1.rows(), 16u);
  EXPECT_EQ(z1.cols(), p.latent);
  for (size_t i = 0; i < z1.size(); ++i) {
    ASSERT_TRUE(std::isfinite(z1.data()[i]));
  }
  EXPECT_LT(Matrix::MaxAbsDiff(z1, z2), 1e-9f);

  // Candidate accounting: sampled sparse fields never exceed the batch
  // union times the rate (within rounding), non-sparse fields are full.
  std::vector<uint32_t> batch(50);
  std::iota(batch.begin(), batch.end(), 0u);
  const StepStats stats = model.TrainStep(data, batch, p.beta);
  for (size_t k = 0; k < data.num_fields(); ++k) {
    EXPECT_GT(stats.candidates_per_field[k], 0u) << "field " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, FvaePropertyTest,
    ::testing::Values(
        Params{4, {16}, {16}, SamplingStrategy::kNone, 1.0, 0.0f},
        Params{8, {24}, {24}, SamplingStrategy::kUniform, 0.3, 0.1f},
        Params{8, {24}, {24}, SamplingStrategy::kFrequency, 0.3, 0.1f},
        Params{8, {24}, {24}, SamplingStrategy::kZipfian, 0.3, 0.1f},
        Params{16, {32, 24}, {24, 32}, SamplingStrategy::kUniform, 0.5,
               0.2f},
        Params{4, {16}, {16}, SamplingStrategy::kUniform, 0.9, 1.0f}));

class FvaeBatchSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FvaeBatchSizeTest, AnyBatchSizeWorks) {
  const size_t batch_size = GetParam();
  const MultiFieldDataset data = Fixture();
  FvaeConfig config;
  config.latent_dim = 4;
  config.encoder_hidden = {12};
  config.decoder_hidden = {12};
  config.sampling_strategy = SamplingStrategy::kUniform;
  config.sampling_rate = 0.5;
  config.seed = 3;
  FieldVae model(config, data.fields());
  std::vector<uint32_t> batch(batch_size);
  std::iota(batch.begin(), batch.end(), 0u);
  const StepStats stats = model.TrainStep(data, batch, 0.1f);
  EXPECT_TRUE(std::isfinite(stats.loss));
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, FvaeBatchSizeTest,
                         ::testing::Values(1, 2, 3, 17, 64, 150));

}  // namespace
}  // namespace fvae::core
