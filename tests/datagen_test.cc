#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/random.h"
#include "datagen/barabasi_albert.h"
#include "datagen/powerlaw.h"
#include "datagen/profile_generator.h"

namespace fvae {
namespace {

// ---------- ZipfSampler ----------

TEST(ZipfSamplerTest, ProbabilitiesNormalizedAndDecreasing) {
  ZipfSampler zipf(100, 1.1);
  double total = 0.0;
  for (size_t r = 0; r < 100; ++r) {
    total += zipf.Probability(r);
    if (r > 0) EXPECT_LE(zipf.Probability(r), zipf.Probability(r - 1));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, ExponentZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(zipf.Probability(r), 0.1, 1e-12);
  }
}

TEST(ZipfSamplerTest, EmpiricalMatchesTheoretical) {
  ZipfSampler zipf(20, 1.0);
  Rng rng(3);
  std::vector<int> counts(20, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(rng)];
  for (size_t r = 0; r < 20; ++r) {
    EXPECT_NEAR(counts[r] / double(kDraws), zipf.Probability(r), 0.01);
  }
}

// ---------- PopularityHistogram ----------

TEST(PopularityHistogramTest, CountsAndRanks) {
  PopularityHistogram hist;
  for (int i = 0; i < 8; ++i) hist.Add(1);
  for (int i = 0; i < 4; ++i) hist.Add(2);
  for (int i = 0; i < 2; ++i) hist.Add(3);
  hist.Add(4);
  EXPECT_EQ(hist.distinct_features(), 4u);
  EXPECT_EQ(hist.total_observations(), 15u);
  const auto ranks = hist.RankFrequency();
  EXPECT_EQ(ranks[0], 8u);
  EXPECT_EQ(ranks[3], 1u);
  // Frequencies 8,4,2,1 over ranks 1..4: slope is strongly negative.
  EXPECT_LT(hist.LogLogSlope(), -1.0);
}

TEST(PopularityHistogramTest, ZipfStreamHasSlopeNearMinusExponent) {
  ZipfSampler zipf(500, 1.2);
  Rng rng(7);
  PopularityHistogram hist;
  for (int i = 0; i < 200000; ++i) {
    hist.Add(static_cast<uint64_t>(zipf.Sample(rng)));
  }
  // The empirical log-log slope should be in the right ballpark.
  EXPECT_LT(hist.LogLogSlope(), -0.6);
  EXPECT_GT(hist.LogLogSlope(), -1.8);
}

// ---------- Barabasi-Albert ----------

TEST(BarabasiAlbertTest, RespectsShapeKnobs) {
  BarabasiAlbertConfig config;
  config.num_users = 500;
  config.features_per_user = 50;
  config.max_features = 300;
  config.seed = 42;
  const MultiFieldDataset data = GenerateBarabasiAlbert(config);
  EXPECT_EQ(data.num_users(), 500u);
  EXPECT_EQ(data.num_fields(), 1u);
  EXPECT_TRUE(data.field(0).is_sparse);
  // Vocabulary never exceeds the cap.
  EXPECT_LE(data.DistinctFeatureIds(0).size(), 300u);
  // Total attachments per user = features_per_user (counts sum to it).
  for (size_t u = 0; u < 10; ++u) {
    EXPECT_DOUBLE_EQ(data.UserFieldTotal(u, 0), 50.0);
  }
}

TEST(BarabasiAlbertTest, PopularityIsHeavyTailed) {
  BarabasiAlbertConfig config;
  config.num_users = 2000;
  config.features_per_user = 30;
  config.max_features = 5000;
  config.new_feature_prob = 0.1;
  config.seed = 11;
  const MultiFieldDataset data = GenerateBarabasiAlbert(config);
  PopularityHistogram hist;
  for (size_t u = 0; u < data.num_users(); ++u) {
    for (const FeatureEntry& e : data.UserField(u, 0)) hist.Add(e.id);
  }
  // Preferential attachment produces a clearly negative log-log slope.
  EXPECT_LT(hist.LogLogSlope(), -0.4);
}

TEST(BarabasiAlbertTest, DeterministicGivenSeed) {
  BarabasiAlbertConfig config;
  config.num_users = 100;
  config.features_per_user = 10;
  config.max_features = 200;
  config.seed = 9;
  const MultiFieldDataset a = GenerateBarabasiAlbert(config);
  const MultiFieldDataset b = GenerateBarabasiAlbert(config);
  ASSERT_EQ(a.TotalNnz(), b.TotalNnz());
  for (size_t u = 0; u < a.num_users(); ++u) {
    auto sa = a.UserField(u, 0);
    auto sb = b.UserField(u, 0);
    ASSERT_EQ(sa.size(), sb.size());
    for (size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i], sb[i]);
  }
}

// ---------- Profile generator ----------

TEST(ProfileGeneratorTest, ShapeMatchesConfig) {
  ProfileGeneratorConfig config = ShortContentConfig(300, /*seed=*/1);
  const GeneratedProfiles gen = GenerateProfiles(config);
  EXPECT_EQ(gen.dataset.num_users(), 300u);
  EXPECT_EQ(gen.dataset.num_fields(), 4u);
  EXPECT_EQ(gen.dominant_topic.size(), 300u);
  EXPECT_EQ(gen.topic_mixture.size(), 300u);
  EXPECT_EQ(gen.field_vocab.size(), 4u);
  EXPECT_EQ(gen.field_vocab[0].size(), 64u);
  EXPECT_EQ(gen.dataset.field(3).name, "tag");
  EXPECT_TRUE(gen.dataset.field(3).is_sparse);
}

TEST(ProfileGeneratorTest, TopicMixturesAreDistributions) {
  ProfileGeneratorConfig config = ShortContentConfig(100, /*seed=*/2);
  const GeneratedProfiles gen = GenerateProfiles(config);
  for (const auto& mixture : gen.topic_mixture) {
    double total = 0.0;
    for (float w : mixture) {
      EXPECT_GE(w, 0.0f);
      total += w;
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
  for (uint32_t t : gen.dominant_topic) {
    EXPECT_LT(t, config.num_topics);
  }
}

TEST(ProfileGeneratorTest, FeatureIdsComeFromDeclaredVocab) {
  ProfileGeneratorConfig config = ShortContentConfig(100, /*seed=*/3);
  const GeneratedProfiles gen = GenerateProfiles(config);
  for (size_t k = 0; k < 4; ++k) {
    std::unordered_set<uint64_t> vocab(gen.field_vocab[k].begin(),
                                       gen.field_vocab[k].end());
    for (size_t u = 0; u < gen.dataset.num_users(); ++u) {
      for (const FeatureEntry& e : gen.dataset.UserField(u, k)) {
        ASSERT_TRUE(vocab.count(e.id)) << "field " << k;
      }
    }
  }
}

TEST(ProfileGeneratorTest, ScatterIdsProduceSparseIdSpace) {
  ProfileGeneratorConfig config = ShortContentConfig(10, /*seed=*/4);
  config.scatter_ids = true;
  const GeneratedProfiles scattered = GenerateProfiles(config);
  // Scattered IDs should exceed the dense vocabulary range.
  bool any_large = false;
  for (uint64_t id : scattered.field_vocab[0]) {
    if (id > 1u << 20) any_large = true;
  }
  EXPECT_TRUE(any_large);

  config.scatter_ids = false;
  const GeneratedProfiles dense = GenerateProfiles(config);
  for (size_t j = 0; j < dense.field_vocab[0].size(); ++j) {
    EXPECT_EQ(dense.field_vocab[0][j], j);
  }
}

TEST(ProfileGeneratorTest, SameTopicUsersShareMoreFeatures) {
  // Inter-field correlation sanity: users of the same dominant topic should
  // overlap more in ch1 than users of different topics.
  ProfileGeneratorConfig config = ShortContentConfig(400, /*seed=*/5);
  config.num_topics = 4;
  const GeneratedProfiles gen = GenerateProfiles(config);

  auto jaccard = [&](size_t a, size_t b) {
    std::set<uint64_t> sa, sb, inter;
    for (const FeatureEntry& e : gen.dataset.UserField(a, 0)) sa.insert(e.id);
    for (const FeatureEntry& e : gen.dataset.UserField(b, 0)) sb.insert(e.id);
    if (sa.empty() || sb.empty()) return -1.0;
    for (uint64_t id : sa) {
      if (sb.count(id)) inter.insert(id);
    }
    std::set<uint64_t> uni = sa;
    uni.insert(sb.begin(), sb.end());
    return double(inter.size()) / double(uni.size());
  };

  double same_sum = 0.0, diff_sum = 0.0;
  int same_n = 0, diff_n = 0;
  for (size_t a = 0; a < 200; ++a) {
    for (size_t b = a + 1; b < a + 20 && b < 400; ++b) {
      const double j = jaccard(a, b);
      if (j < 0) continue;
      if (gen.dominant_topic[a] == gen.dominant_topic[b]) {
        same_sum += j;
        ++same_n;
      } else {
        diff_sum += j;
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 10);
  ASSERT_GT(diff_n, 10);
  EXPECT_GT(same_sum / same_n, diff_sum / diff_n);
}

TEST(ProfileGeneratorTest, PresetsDiffer) {
  const auto sc = ShortContentConfig(10, 1);
  const auto kd = KandianConfig(10, 1);
  const auto qb = QQBrowserConfig(10, 1);
  EXPECT_LT(sc.fields[3].vocab_size, kd.fields[3].vocab_size);
  EXPECT_LT(qb.fields[3].vocab_size, kd.fields[3].vocab_size);
  EXPECT_EQ(sc.fields.size(), 4u);
  EXPECT_EQ(kd.fields.size(), 4u);
  EXPECT_EQ(qb.fields.size(), 4u);
}

}  // namespace
}  // namespace fvae
