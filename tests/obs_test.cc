#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/stopwatch.h"
#include "obs/metrics_registry.h"
#include "obs/periodic_dumper.h"
#include "obs/trace.h"

namespace fvae::obs {
namespace {

// ---------- metric names ----------

TEST(MetricNameTest, ValidatesDottedSnakeCasePaths) {
  EXPECT_TRUE(IsValidMetricName("training.epoch_loss"));
  EXPECT_TRUE(IsValidMetricName("serving.lookup_latency_us"));
  EXPECT_TRUE(IsValidMetricName("a.b"));
  EXPECT_TRUE(IsValidMetricName("a.b2.c_d"));

  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("flat"));           // no dot
  EXPECT_FALSE(IsValidMetricName("Training.loss"));  // upper case
  EXPECT_FALSE(IsValidMetricName("training."));      // trailing dot
  EXPECT_FALSE(IsValidMetricName(".loss"));          // leading dot
  EXPECT_FALSE(IsValidMetricName("a..b"));           // empty segment
  EXPECT_FALSE(IsValidMetricName("a.9b"));           // digit-led segment
  EXPECT_FALSE(IsValidMetricName("a._b"));           // underscore-led
  EXPECT_FALSE(IsValidMetricName("a b.c"));          // space
}

// ---------- registry ----------

TEST(MetricsRegistryTest, InstrumentsAreNamedSingletons) {
  MetricsRegistry registry;
  Counter& c1 = registry.Counter("test.hits");
  Counter& c2 = registry.Counter("test.hits");
  EXPECT_EQ(&c1, &c2);
  c1.Increment();
  c2.Add(4);
  EXPECT_EQ(c1.Value(), 5u);

  Gauge& g = registry.Gauge("test.depth");
  g.Set(2.0);
  g.Add(0.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.SetMax(1.0);  // below the watermark: no effect
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.SetMax(7.0);
  EXPECT_DOUBLE_EQ(g.Value(), 7.0);

  LatencyHistogram& h = registry.Histo("test.latency_us");
  h.Record(10.0);
  EXPECT_EQ(&h, &registry.Histo("test.latency_us"));
  EXPECT_EQ(h.Count(), 1u);

  EXPECT_EQ(registry.MetricCount(), 3u);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndUpdatesAreExact) {
  MetricsRegistry registry;
  constexpr size_t kThreads = 8;
  constexpr size_t kIncrements = 10000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Every thread races the registration of the shared instruments and
      // additionally registers one of its own.
      Counter& shared = registry.Counter("test.shared_hits");
      Gauge& peak = registry.Gauge("test.peak");
      LatencyHistogram& histo = registry.Histo("test.latency_us");
      Counter& own =
          registry.Counter("test.thread_" + std::to_string(t));
      for (size_t i = 0; i < kIncrements; ++i) {
        shared.Increment();
        own.Increment();
        peak.SetMax(double(i));
        histo.Record(double(i % 100));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(registry.Counter("test.shared_hits").Value(),
            kThreads * kIncrements);
  EXPECT_DOUBLE_EQ(registry.Gauge("test.peak").Value(),
                   double(kIncrements - 1));
  EXPECT_EQ(registry.Histo("test.latency_us").Count(),
            kThreads * kIncrements);
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(
        registry.Counter("test.thread_" + std::to_string(t)).Value(),
        kIncrements);
  }
  // shared counter + gauge + histogram + one counter per thread.
  EXPECT_EQ(registry.MetricCount(), 3u + kThreads);
}

// ---------- exporters ----------

TEST(MetricsRegistryTest, TextSnapshotGolden) {
  MetricsRegistry registry;
  registry.Counter("test.requests").Add(3);
  registry.Gauge("test.depth").Set(1.5);
  EXPECT_EQ(registry.TextSnapshot(),
            "test.depth                           gauge      1.5\n"
            "test.requests                        counter    3\n");
}

TEST(MetricsRegistryTest, JsonlSnapshotGolden) {
  MetricsRegistry registry;
  registry.Counter("test.requests").Add(3);
  registry.Gauge("test.depth").Set(1.5);
  EXPECT_EQ(registry.JsonlSnapshot(),
            "{\"name\":\"test.depth\",\"type\":\"gauge\",\"value\":1.5}\n"
            "{\"name\":\"test.requests\",\"type\":\"counter\","
            "\"value\":3}\n");
}

TEST(MetricsRegistryTest, JsonlSnapshotHistogramLine) {
  MetricsRegistry registry;
  LatencyHistogram& h = registry.Histo("test.latency_us");
  h.Record(10.0);
  h.Record(20.0);
  const std::string snapshot = registry.JsonlSnapshot();
  EXPECT_EQ(snapshot.rfind("{\"name\":\"test.latency_us\","
                           "\"type\":\"histogram\",\"count\":2,"
                           "\"mean\":15.0,",
                           0),
            0u)
      << snapshot;
  EXPECT_NE(snapshot.find("\"p50\":"), std::string::npos);
  EXPECT_NE(snapshot.find("\"p99\":"), std::string::npos);
}

// ---------- trace spans ----------

/// Minimal field extractor for one Chrome trace event object.
std::string JsonField(const std::string& object, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = object.find(needle);
  if (at == std::string::npos) return "";
  size_t begin = at + needle.size();
  if (begin < object.size() && object[begin] == '"') {
    const size_t end = object.find('"', begin + 1);
    return object.substr(begin + 1, end - begin - 1);
  }
  size_t end = begin;
  while (end < object.size() && object[end] != ',' && object[end] != '}') {
    ++end;
  }
  return object.substr(begin, end - begin);
}

struct ParsedEvent {
  std::string name;
  int64_t ts = 0;
  int64_t dur = 0;
  uint32_t tid = 0;
};

/// Parses the {...} objects out of a "traceEvents" array.
std::vector<ParsedEvent> ParseChromeTrace(const std::string& json) {
  std::vector<ParsedEvent> events;
  const size_t array = json.find("\"traceEvents\":[");
  EXPECT_NE(array, std::string::npos) << json;
  size_t pos = array;
  while ((pos = json.find('{', pos)) != std::string::npos) {
    const size_t end = json.find('}', pos);
    const std::string object = json.substr(pos, end - pos + 1);
    ParsedEvent event;
    event.name = JsonField(object, "name");
    event.ts = std::stoll(JsonField(object, "ts"));
    event.dur = std::stoll(JsonField(object, "dur"));
    event.tid = uint32_t(std::stoul(JsonField(object, "tid")));
    EXPECT_EQ(JsonField(object, "ph"), "X") << object;
    events.push_back(event);
    pos = end + 1;
  }
  return events;
}

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder recorder;
  { TraceSpan span("test.span", &recorder); }
  EXPECT_EQ(recorder.EventCount(), 0u);
}

TEST(TraceTest, SpansNestWithinEachThread) {
  TraceRecorder recorder;
  recorder.Enable();

  constexpr size_t kThreads = 2;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      TraceSpan outer("test.outer", &recorder);
      // Make the inner span strictly containable: busy-wait ~200us so the
      // microsecond clock ticks between the start/end stamps.
      const int64_t begin = MonotonicMicros();
      while (MonotonicMicros() - begin < 100) {
      }
      {
        TraceSpan inner("test.inner", &recorder);
        const int64_t inner_begin = MonotonicMicros();
        while (MonotonicMicros() - inner_begin < 100) {
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(recorder.EventCount(), 2 * kThreads);
  const std::vector<ParsedEvent> events =
      ParseChromeTrace(recorder.ChromeTraceJson());
  ASSERT_EQ(events.size(), 2 * kThreads);

  // Per thread: exactly one outer and one inner, and the inner's
  // [ts, ts+dur) interval is contained in the outer's.
  std::vector<uint32_t> tids;
  for (const ParsedEvent& event : events) tids.push_back(event.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  ASSERT_EQ(tids.size(), kThreads) << "one buffer (tid) per thread";

  for (uint32_t tid : tids) {
    const ParsedEvent* outer = nullptr;
    const ParsedEvent* inner = nullptr;
    for (const ParsedEvent& event : events) {
      if (event.tid != tid) continue;
      if (event.name == "test.outer") outer = &event;
      if (event.name == "test.inner") inner = &event;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_LE(outer->ts, inner->ts);
    EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur);
    EXPECT_LT(inner->dur, outer->dur);
  }
}

TEST(TraceTest, EarlyEndIsIdempotent) {
  TraceRecorder recorder;
  recorder.Enable();
  TraceSpan span("test.span", &recorder);
  span.End();
  span.End();  // no double record
  EXPECT_EQ(recorder.EventCount(), 1u);
}

TEST(TraceTest, ProfileAggregatesAcrossThreads) {
  TraceRecorder recorder;
  recorder.Enable();
  std::thread other([&recorder] {
    recorder.RecordSpan("test.step", 0, 100);
    recorder.RecordSpan("test.step", 200, 300);
  });
  other.join();
  recorder.RecordSpan("test.step", 500, 200);
  recorder.RecordSpan("test.misc", 0, 10);

  const std::vector<SpanProfile> profile = recorder.Profile();
  ASSERT_EQ(profile.size(), 2u);
  // Sorted by total time descending: step (600us) before misc (10us).
  EXPECT_EQ(profile[0].name, "test.step");
  EXPECT_EQ(profile[0].count, 3u);
  EXPECT_DOUBLE_EQ(profile[0].total_us, 600.0);
  EXPECT_GT(profile[0].p99_us, 0.0);
  EXPECT_EQ(profile[1].name, "test.misc");
  EXPECT_EQ(profile[1].count, 1u);
  EXPECT_NE(recorder.ProfileText().find("test.step"), std::string::npos);
}

TEST(TraceTest, FullBufferCountsDrops) {
  TraceRecorder recorder;
  recorder.Enable();
  const size_t over = TraceRecorder::kMaxEventsPerThread + 5;
  for (size_t i = 0; i < over; ++i) {
    recorder.RecordSpan("test.spin", int64_t(i), 1);
  }
  EXPECT_EQ(recorder.EventCount(), TraceRecorder::kMaxEventsPerThread);
  EXPECT_EQ(recorder.DroppedCount(), 5u);

  recorder.Reset();
  EXPECT_EQ(recorder.EventCount(), 0u);
  EXPECT_EQ(recorder.DroppedCount(), 0u);
  recorder.RecordSpan("test.spin", 0, 1);
  EXPECT_EQ(recorder.EventCount(), 1u);
}

TEST(TraceTest, TraceScopeMacroRecordsIntoGlobal) {
  TraceRecorder& global = TraceRecorder::Global();
  global.Reset();
  global.Enable();
  { FVAE_TRACE_SCOPE("test.macro_span"); }
  global.Disable();
  EXPECT_EQ(global.EventCount(), 1u);
  EXPECT_NE(global.ChromeTraceJson().find("test.macro_span"),
            std::string::npos);
  global.Reset();
}

// ---------- periodic dumper ----------

TEST(PeriodicDumperTest, DumpsPeriodicallyAndStopsCleanly) {
  MetricsRegistry registry;
  registry.Counter("test.ticks").Add(7);

  Mutex mutex;
  std::vector<std::string> snapshots;
  PeriodicDumperOptions options;
  options.interval_seconds = 0.01;
  PeriodicDumper dumper(&registry, options,
                        [&mutex, &snapshots](const std::string& snapshot) {
                          MutexLock lock(mutex);
                          snapshots.push_back(snapshot);
                        });
  EXPECT_FALSE(dumper.running());
  dumper.Start();
  EXPECT_TRUE(dumper.running());
  // Wait for at least one periodic emission (generous bound, not a sleep
  // calibrated to the interval).
  const int64_t begin = MonotonicMicros();
  while (dumper.dumps() == 0 && MonotonicMicros() - begin < 5'000'000) {
    std::this_thread::yield();
  }
  dumper.Stop();
  EXPECT_FALSE(dumper.running());

  const uint64_t dumps_after_stop = dumper.dumps();
  EXPECT_GE(dumps_after_stop, 1u);
  {
    MutexLock lock(mutex);
    ASSERT_EQ(snapshots.size(), dumps_after_stop);
    for (const std::string& snapshot : snapshots) {
      EXPECT_NE(snapshot.find("\"name\":\"test.ticks\""),
                std::string::npos);
    }
  }

  // No emission after Stop; Start/Stop cycles are repeatable.
  dumper.Start();
  dumper.Stop();
  EXPECT_GE(dumper.dumps(), dumps_after_stop + 1);  // final emit per Stop
  const uint64_t final_dumps = dumper.dumps();
  {
    MutexLock lock(mutex);
    EXPECT_EQ(snapshots.size(), final_dumps);
  }
}

TEST(PeriodicDumperTest, StopWithoutStartIsANoop) {
  MetricsRegistry registry;
  PeriodicDumper dumper(&registry, PeriodicDumperOptions{},
                        [](const std::string&) {});
  dumper.Stop();
  EXPECT_EQ(dumper.dumps(), 0u);
}

}  // namespace
}  // namespace fvae::obs
