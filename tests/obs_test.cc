#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/stopwatch.h"
#include "obs/exemplars.h"
#include "obs/metrics_registry.h"
#include "obs/periodic_dumper.h"
#include "obs/prometheus.h"
#include "obs/slow_trace_ring.h"
#include "obs/trace.h"

namespace fvae::obs {
namespace {

// ---------- metric names ----------

TEST(MetricNameTest, ValidatesDottedSnakeCasePaths) {
  EXPECT_TRUE(IsValidMetricName("training.epoch_loss"));
  EXPECT_TRUE(IsValidMetricName("serving.lookup_latency_us"));
  EXPECT_TRUE(IsValidMetricName("a.b"));
  EXPECT_TRUE(IsValidMetricName("a.b2.c_d"));

  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("flat"));           // no dot
  EXPECT_FALSE(IsValidMetricName("Training.loss"));  // upper case
  EXPECT_FALSE(IsValidMetricName("training."));      // trailing dot
  EXPECT_FALSE(IsValidMetricName(".loss"));          // leading dot
  EXPECT_FALSE(IsValidMetricName("a..b"));           // empty segment
  EXPECT_FALSE(IsValidMetricName("a.9b"));           // digit-led segment
  EXPECT_FALSE(IsValidMetricName("a._b"));           // underscore-led
  EXPECT_FALSE(IsValidMetricName("a b.c"));          // space
}

// ---------- registry ----------

TEST(MetricsRegistryTest, InstrumentsAreNamedSingletons) {
  MetricsRegistry registry;
  Counter& c1 = registry.Counter("test.hits");
  Counter& c2 = registry.Counter("test.hits");
  EXPECT_EQ(&c1, &c2);
  c1.Increment();
  c2.Add(4);
  EXPECT_EQ(c1.Value(), 5u);

  Gauge& g = registry.Gauge("test.depth");
  g.Set(2.0);
  g.Add(0.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.SetMax(1.0);  // below the watermark: no effect
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.SetMax(7.0);
  EXPECT_DOUBLE_EQ(g.Value(), 7.0);

  LatencyHistogram& h = registry.Histo("test.latency_us");
  h.Record(10.0);
  EXPECT_EQ(&h, &registry.Histo("test.latency_us"));
  EXPECT_EQ(h.Count(), 1u);

  EXPECT_EQ(registry.MetricCount(), 3u);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndUpdatesAreExact) {
  MetricsRegistry registry;
  constexpr size_t kThreads = 8;
  constexpr size_t kIncrements = 10000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Every thread races the registration of the shared instruments and
      // additionally registers one of its own.
      Counter& shared = registry.Counter("test.shared_hits");
      Gauge& peak = registry.Gauge("test.peak");
      LatencyHistogram& histo = registry.Histo("test.latency_us");
      Counter& own =
          registry.Counter("test.thread_" + std::to_string(t));
      for (size_t i = 0; i < kIncrements; ++i) {
        shared.Increment();
        own.Increment();
        peak.SetMax(double(i));
        histo.Record(double(i % 100));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(registry.Counter("test.shared_hits").Value(),
            kThreads * kIncrements);
  EXPECT_DOUBLE_EQ(registry.Gauge("test.peak").Value(),
                   double(kIncrements - 1));
  EXPECT_EQ(registry.Histo("test.latency_us").Count(),
            kThreads * kIncrements);
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(
        registry.Counter("test.thread_" + std::to_string(t)).Value(),
        kIncrements);
  }
  // shared counter + gauge + histogram + one counter per thread.
  EXPECT_EQ(registry.MetricCount(), 3u + kThreads);
}

// ---------- exporters ----------

TEST(MetricsRegistryTest, TextSnapshotGolden) {
  MetricsRegistry registry;
  registry.Counter("test.requests").Add(3);
  registry.Gauge("test.depth").Set(1.5);
  EXPECT_EQ(registry.TextSnapshot(),
            "test.depth                           gauge      1.5\n"
            "test.requests                        counter    3\n");
}

TEST(MetricsRegistryTest, JsonlSnapshotGolden) {
  MetricsRegistry registry;
  registry.Counter("test.requests").Add(3);
  registry.Gauge("test.depth").Set(1.5);
  EXPECT_EQ(registry.JsonlSnapshot(),
            "{\"name\":\"test.depth\",\"type\":\"gauge\",\"value\":1.5}\n"
            "{\"name\":\"test.requests\",\"type\":\"counter\","
            "\"value\":3}\n");
}

TEST(MetricsRegistryTest, JsonlSnapshotHistogramLine) {
  MetricsRegistry registry;
  LatencyHistogram& h = registry.Histo("test.latency_us");
  h.Record(10.0);
  h.Record(20.0);
  const std::string snapshot = registry.JsonlSnapshot();
  EXPECT_EQ(snapshot.rfind("{\"name\":\"test.latency_us\","
                           "\"type\":\"histogram\",\"count\":2,"
                           "\"mean\":15.0,",
                           0),
            0u)
      << snapshot;
  EXPECT_NE(snapshot.find("\"p50\":"), std::string::npos);
  EXPECT_NE(snapshot.find("\"p99\":"), std::string::npos);
}

// ---------- trace spans ----------

/// Minimal field extractor for one Chrome trace event object.
std::string JsonField(const std::string& object, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = object.find(needle);
  if (at == std::string::npos) return "";
  size_t begin = at + needle.size();
  if (begin < object.size() && object[begin] == '"') {
    const size_t end = object.find('"', begin + 1);
    return object.substr(begin + 1, end - begin - 1);
  }
  size_t end = begin;
  while (end < object.size() && object[end] != ',' && object[end] != '}') {
    ++end;
  }
  return object.substr(begin, end - begin);
}

struct ParsedEvent {
  std::string name;
  int64_t ts = 0;
  int64_t dur = 0;
  uint32_t tid = 0;
};

/// Parses the {...} objects out of a "traceEvents" array.
std::vector<ParsedEvent> ParseChromeTrace(const std::string& json) {
  std::vector<ParsedEvent> events;
  const size_t array = json.find("\"traceEvents\":[");
  EXPECT_NE(array, std::string::npos) << json;
  size_t pos = array;
  while ((pos = json.find('{', pos)) != std::string::npos) {
    const size_t end = json.find('}', pos);
    const std::string object = json.substr(pos, end - pos + 1);
    ParsedEvent event;
    event.name = JsonField(object, "name");
    event.ts = std::stoll(JsonField(object, "ts"));
    event.dur = std::stoll(JsonField(object, "dur"));
    event.tid = uint32_t(std::stoul(JsonField(object, "tid")));
    EXPECT_EQ(JsonField(object, "ph"), "X") << object;
    events.push_back(event);
    pos = end + 1;
  }
  return events;
}

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder recorder;
  { TraceSpan span("test.span", &recorder); }
  EXPECT_EQ(recorder.EventCount(), 0u);
}

TEST(TraceTest, SpansNestWithinEachThread) {
  TraceRecorder recorder;
  recorder.Enable();

  constexpr size_t kThreads = 2;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      TraceSpan outer("test.outer", &recorder);
      // Make the inner span strictly containable: busy-wait ~200us so the
      // microsecond clock ticks between the start/end stamps.
      const int64_t begin = MonotonicMicros();
      while (MonotonicMicros() - begin < 100) {
      }
      {
        TraceSpan inner("test.inner", &recorder);
        const int64_t inner_begin = MonotonicMicros();
        while (MonotonicMicros() - inner_begin < 100) {
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(recorder.EventCount(), 2 * kThreads);
  const std::vector<ParsedEvent> events =
      ParseChromeTrace(recorder.ChromeTraceJson());
  ASSERT_EQ(events.size(), 2 * kThreads);

  // Per thread: exactly one outer and one inner, and the inner's
  // [ts, ts+dur) interval is contained in the outer's.
  std::vector<uint32_t> tids;
  for (const ParsedEvent& event : events) tids.push_back(event.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  ASSERT_EQ(tids.size(), kThreads) << "one buffer (tid) per thread";

  for (uint32_t tid : tids) {
    const ParsedEvent* outer = nullptr;
    const ParsedEvent* inner = nullptr;
    for (const ParsedEvent& event : events) {
      if (event.tid != tid) continue;
      if (event.name == "test.outer") outer = &event;
      if (event.name == "test.inner") inner = &event;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_LE(outer->ts, inner->ts);
    EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur);
    EXPECT_LT(inner->dur, outer->dur);
  }
}

TEST(TraceTest, EarlyEndIsIdempotent) {
  TraceRecorder recorder;
  recorder.Enable();
  TraceSpan span("test.span", &recorder);
  span.End();
  span.End();  // no double record
  EXPECT_EQ(recorder.EventCount(), 1u);
}

TEST(TraceTest, ProfileAggregatesAcrossThreads) {
  TraceRecorder recorder;
  recorder.Enable();
  std::thread other([&recorder] {
    recorder.RecordSpan("test.step", 0, 100);
    recorder.RecordSpan("test.step", 200, 300);
  });
  other.join();
  recorder.RecordSpan("test.step", 500, 200);
  recorder.RecordSpan("test.misc", 0, 10);

  const std::vector<SpanProfile> profile = recorder.Profile();
  ASSERT_EQ(profile.size(), 2u);
  // Sorted by total time descending: step (600us) before misc (10us).
  EXPECT_EQ(profile[0].name, "test.step");
  EXPECT_EQ(profile[0].count, 3u);
  EXPECT_DOUBLE_EQ(profile[0].total_us, 600.0);
  EXPECT_GT(profile[0].p99_us, 0.0);
  EXPECT_EQ(profile[1].name, "test.misc");
  EXPECT_EQ(profile[1].count, 1u);
  EXPECT_NE(recorder.ProfileText().find("test.step"), std::string::npos);
}

TEST(TraceTest, FullBufferCountsDrops) {
  TraceRecorder recorder;
  recorder.Enable();
  const size_t over = TraceRecorder::kMaxEventsPerThread + 5;
  for (size_t i = 0; i < over; ++i) {
    recorder.RecordSpan("test.spin", int64_t(i), 1);
  }
  EXPECT_EQ(recorder.EventCount(), TraceRecorder::kMaxEventsPerThread);
  EXPECT_EQ(recorder.DroppedCount(), 5u);

  recorder.Reset();
  EXPECT_EQ(recorder.EventCount(), 0u);
  EXPECT_EQ(recorder.DroppedCount(), 0u);
  recorder.RecordSpan("test.spin", 0, 1);
  EXPECT_EQ(recorder.EventCount(), 1u);
}

TEST(TraceTest, TraceScopeMacroRecordsIntoGlobal) {
  TraceRecorder& global = TraceRecorder::Global();
  global.Reset();
  global.Enable();
  { FVAE_TRACE_SCOPE("test.macro_span"); }
  global.Disable();
  EXPECT_EQ(global.EventCount(), 1u);
  EXPECT_NE(global.ChromeTraceJson().find("test.macro_span"),
            std::string::npos);
  global.Reset();
}

// ---------- distributed trace context ----------

TEST(TraceContextTest, MintedIdsAreUniqueAndNonZero) {
  std::vector<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) ids.push_back(MintSpanId());
  std::sort(ids.begin(), ids.end());
  EXPECT_NE(ids.front(), 0u);
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());

  const TraceContext root = MintTraceContext();
  EXPECT_TRUE(root.valid());
  EXPECT_NE(root.span_id, 0u);
}

TEST(TraceContextTest, ScopedContextInstallsAndRestores) {
  EXPECT_FALSE(CurrentTraceContext().valid());
  {
    ScopedTraceContext outer(TraceContext{10, 20});
    EXPECT_EQ(CurrentTraceContext().trace_id, 10u);
    {
      ScopedTraceContext inner(TraceContext{30, 40});
      EXPECT_EQ(CurrentTraceContext().trace_id, 30u);
      EXPECT_EQ(CurrentTraceContext().span_id, 40u);
    }
    EXPECT_EQ(CurrentTraceContext().trace_id, 10u);
    EXPECT_EQ(CurrentTraceContext().span_id, 20u);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
}

TEST(TraceContextTest, NestedSpansInheritTraceAndChainParents) {
  // TraceSpan installs itself as the ambient context, so a nested span
  // parents on it and an outbound RPC issued inside it would carry its id.
  TraceRecorder recorder;
  recorder.Enable();
  const TraceContext root = MintTraceContext();
  {
    ScopedTraceContext scope(root);
    TraceSpan outer("test.outer", &recorder);
    { TraceSpan inner("test.inner", &recorder); }
  }
  std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  // Both spans open in the same microsecond, so the start-sorted order is
  // not deterministic — pick them out by name.
  if (std::string(events[0].name) != "test.outer") {
    std::swap(events[0], events[1]);
  }
  const TraceEvent& outer = events[0];
  const TraceEvent& inner = events[1];
  EXPECT_STREQ(outer.name, "test.outer");
  EXPECT_STREQ(inner.name, "test.inner");
  EXPECT_EQ(outer.trace_id, root.trace_id);
  EXPECT_EQ(inner.trace_id, root.trace_id);
  EXPECT_EQ(outer.parent_span_id, root.span_id);
  EXPECT_EQ(inner.parent_span_id, outer.span_id);
  EXPECT_NE(outer.span_id, inner.span_id);
}

TEST(TraceContextTest, ContextFreeSpansKeepTheOldSerialization) {
  TraceRecorder recorder;
  recorder.Enable();
  { TraceSpan span("test.plain", &recorder); }
  // Without an ambient context the Chrome export carries no "args" block —
  // byte-compatible with pre-tracing golden files.
  EXPECT_EQ(recorder.ChromeTraceJson().find("\"args\""), std::string::npos);

  {
    ScopedTraceContext scope(TraceContext{0xabc, 0xdef});
    TraceSpan span("test.traced", &recorder);
  }
  const std::string json = recorder.ChromeTraceJson();
  EXPECT_NE(json.find("\"args\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"0000000000000abc\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"parent_span_id\":\"0000000000000def\""),
            std::string::npos)
      << json;
}

TEST(TraceContextTest, ExplicitContextRecordBypassesAmbient) {
  // The 5-arg RecordSpan is the API for spans whose identity was captured
  // elsewhere (hedge arms, batcher completions): it must not read the
  // calling thread's ambient context.
  TraceRecorder recorder;
  recorder.Enable();
  ScopedTraceContext scope(TraceContext{1, 2});
  recorder.RecordSpan("test.explicit", 100, 5, TraceContext{7, 8}, 9);
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].trace_id, 7u);
  EXPECT_EQ(events[0].span_id, 8u);
  EXPECT_EQ(events[0].parent_span_id, 9u);
}

TEST(SpanScratchTest, StagesFlushesAndCountsOverflow) {
  TraceRecorder recorder;
  recorder.Enable();
  SpanScratch scratch(2);
  scratch.NoteSpan("test.a", 10, 1, TraceContext{1, 2}, 3);
  scratch.NoteSpan("test.b", 20, 1, TraceContext{1, 4}, 2);
  scratch.NoteSpan("test.c", 30, 1, TraceContext{1, 5}, 2);  // over capacity
  EXPECT_EQ(scratch.staged(), 2u);
  EXPECT_EQ(scratch.dropped(), 1u);
  EXPECT_EQ(recorder.EventCount(), 0u);  // nothing recorded until Flush

  scratch.Flush(&recorder);
  EXPECT_EQ(scratch.staged(), 0u);
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, 1u);
  EXPECT_EQ(events[0].span_id, 2u);
  EXPECT_EQ(events[0].parent_span_id, 3u);
}

// ---------- slow-trace ring ----------

TEST(SlowTraceRingTest, CapturesAndSortsByDuration) {
  SlowTraceRing ring(4);
  for (uint64_t i = 1; i <= 3; ++i) {
    SlowTraceRing::Entry entry;
    entry.trace_id = i;
    entry.tag = i * 10;
    entry.start_us = int64_t(i) * 100;
    entry.duration_us = int64_t(i) * 1000;
    entry.verb = 2;
    entry.status = 0;
    ring.Record(entry);
  }
  const std::vector<SlowTraceRing::Entry> snapshot = ring.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].trace_id, 3u);  // longest first
  EXPECT_EQ(snapshot[0].duration_us, 3000);
  EXPECT_EQ(snapshot[2].trace_id, 1u);
  EXPECT_EQ(ring.recorded(), 3u);
  EXPECT_NE(ring.ToJson().find("\"trace_id\":\"0000000000000003\""),
            std::string::npos)
      << ring.ToJson();
}

TEST(SlowTraceRingTest, WrapKeepsOnlyTheLastCapacity) {
  SlowTraceRing ring(4);
  for (uint64_t i = 1; i <= 10; ++i) {
    SlowTraceRing::Entry entry;
    entry.trace_id = i;
    entry.duration_us = 1;
    ring.Record(entry);
  }
  const std::vector<SlowTraceRing::Entry> snapshot = ring.Snapshot();
  EXPECT_LE(snapshot.size(), 4u);
  for (const SlowTraceRing::Entry& entry : snapshot) {
    EXPECT_GE(entry.trace_id, 7u);  // only the newest survive the wrap
  }
  EXPECT_EQ(ring.recorded(), 10u);
}

TEST(SlowTraceRingTest, ConcurrentWritersNeverTearSnapshots) {
  SlowTraceRing ring(8);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&ring, &stop, t] {
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        SlowTraceRing::Entry entry;
        // trace_id and duration_us are locked together; a torn slot would
        // break the invariant checked below.
        entry.trace_id = uint64_t(t + 1);
        entry.duration_us = int64_t(t + 1) * 1000;
        entry.tag = ++n;
        ring.Record(entry);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    for (const SlowTraceRing::Entry& entry : ring.Snapshot()) {
      ASSERT_EQ(entry.duration_us, int64_t(entry.trace_id) * 1000);
    }
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
}

// ---------- exemplars ----------

TEST(ExemplarStoreTest, KeepsTopKByValueWithTraceIds) {
  ExemplarStore store(2);
  store.Offer(10.0, 1);
  store.Offer(30.0, 3);
  store.Offer(20.0, 2);
  store.Offer(5.0, 5);    // below the floor once full
  store.Offer(99.0, 0);   // no trace context: never stored
  const std::vector<ExemplarStore::Exemplar> snapshot = store.Snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].value, 30.0);
  EXPECT_EQ(snapshot[0].trace_id, 3u);
  EXPECT_EQ(snapshot[1].value, 20.0);
  EXPECT_EQ(snapshot[1].trace_id, 2u);
  EXPECT_NE(store.ToJson().find("\"trace_id\":\"0000000000000003\""),
            std::string::npos)
      << store.ToJson();
}

TEST(MetricsRegistryTest, ExemplarStoresAttachToHistogramsAndExport) {
  MetricsRegistry registry;
  registry.Histo("test.latency_us").Record(123.0);
  ExemplarStore& store = registry.Exemplars("test.latency_us");
  store.Offer(123.0, 0x77);
  // Cached-reference contract: the same name returns the same store.
  EXPECT_EQ(&registry.Exemplars("test.latency_us"), &store);
  const std::string json = registry.ExemplarsJson();
  EXPECT_NE(json.find("\"test.latency_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace_id\":\"0000000000000077\""),
            std::string::npos)
      << json;
}

// ---------- visitor + Prometheus exposition ----------

TEST(MetricsRegistryTest, VisitWalksInstrumentsInNameOrder) {
  MetricsRegistry registry;
  registry.Counter("test.b_counter").Add(2);
  registry.Gauge("test.a_gauge").Set(1.5);
  registry.Histo("test.c_histo").Record(10.0);

  class Collector : public MetricVisitor {
   public:
    std::vector<std::string> names;
    void OnCounter(const std::string& name, uint64_t value) override {
      names.push_back(name);
      EXPECT_EQ(value, 2u);
    }
    void OnGauge(const std::string& name, double value) override {
      names.push_back(name);
      EXPECT_EQ(value, 1.5);
    }
    void OnHistogram(const std::string& name,
                     const LatencyHistogram& histogram) override {
      names.push_back(name);
      EXPECT_EQ(histogram.Count(), 1u);
    }
  };
  Collector collector;
  registry.Visit(collector);
  const std::vector<std::string> expected = {
      "test.a_gauge", "test.b_counter", "test.c_histo"};
  EXPECT_EQ(collector.names, expected);
}

TEST(PrometheusTest, NameManglingPrefixesAndSubstitutes) {
  EXPECT_EQ(PrometheusName("net.server.frames_rx"),
            "fvae_net_server_frames_rx");
}

TEST(PrometheusTest, ExpositionCoversAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.Counter("test.requests").Add(41);
  registry.Gauge("test.queue_depth").Set(3.0);
  registry.Histo("test.latency_us", 1.0, 2.0, 4).Record(2.5);

  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("# TYPE fvae_test_requests_total counter\n"
                      "fvae_test_requests_total 41\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE fvae_test_queue_depth gauge\n"
                      "fvae_test_queue_depth 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE fvae_test_latency_us histogram"),
            std::string::npos)
      << text;
  // Cumulative buckets end in the +Inf series, which equals _count.
  EXPECT_NE(text.find("fvae_test_latency_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos)
      << text;
  // Sum is bucket-approximated (the histogram stores counts, not raw
  // values), so only assert the series exists.
  EXPECT_NE(text.find("fvae_test_latency_us_sum "), std::string::npos)
      << text;
  EXPECT_NE(text.find("fvae_test_latency_us_count 1"), std::string::npos)
      << text;
}

// ---------- periodic dumper ----------

TEST(PeriodicDumperTest, DumpsPeriodicallyAndStopsCleanly) {
  MetricsRegistry registry;
  registry.Counter("test.ticks").Add(7);

  Mutex mutex;
  std::vector<std::string> snapshots;
  PeriodicDumperOptions options;
  options.interval_seconds = 0.01;
  PeriodicDumper dumper(&registry, options,
                        [&mutex, &snapshots](const std::string& snapshot) {
                          MutexLock lock(mutex);
                          snapshots.push_back(snapshot);
                        });
  EXPECT_FALSE(dumper.running());
  dumper.Start();
  EXPECT_TRUE(dumper.running());
  // Wait for at least one periodic emission (generous bound, not a sleep
  // calibrated to the interval).
  const int64_t begin = MonotonicMicros();
  while (dumper.dumps() == 0 && MonotonicMicros() - begin < 5'000'000) {
    std::this_thread::yield();
  }
  dumper.Stop();
  EXPECT_FALSE(dumper.running());

  const uint64_t dumps_after_stop = dumper.dumps();
  EXPECT_GE(dumps_after_stop, 1u);
  {
    MutexLock lock(mutex);
    ASSERT_EQ(snapshots.size(), dumps_after_stop);
    for (const std::string& snapshot : snapshots) {
      EXPECT_NE(snapshot.find("\"name\":\"test.ticks\""),
                std::string::npos);
    }
  }

  // No emission after Stop; Start/Stop cycles are repeatable.
  dumper.Start();
  dumper.Stop();
  EXPECT_GE(dumper.dumps(), dumps_after_stop + 1);  // final emit per Stop
  const uint64_t final_dumps = dumper.dumps();
  {
    MutexLock lock(mutex);
    EXPECT_EQ(snapshots.size(), final_dumps);
  }
}

TEST(PeriodicDumperTest, StopFlushesAFinalSnapshotExactlyOnce) {
  // Lifecycle contract for crash-free shutdown telemetry: with an interval
  // far beyond the test's lifetime, the only emission is the final flush
  // Stop() performs — and it must see every update made before Stop().
  MetricsRegistry registry;
  fvae::obs::Counter& served = registry.Counter("test.requests_served");

  Mutex mutex;
  std::vector<std::string> snapshots;
  PeriodicDumperOptions options;
  options.interval_seconds = 3600.0;  // never fires on its own
  PeriodicDumper dumper(&registry, options,
                        [&mutex, &snapshots](const std::string& snapshot) {
                          MutexLock lock(mutex);
                          snapshots.push_back(snapshot);
                        });
  dumper.Start();
  served.Add(42);  // lands after Start, must still reach the final flush
  dumper.Stop();

  EXPECT_EQ(dumper.dumps(), 1u);
  {
    MutexLock lock(mutex);
    ASSERT_EQ(snapshots.size(), 1u);
    EXPECT_NE(snapshots[0].find("\"name\":\"test.requests_served\""),
              std::string::npos)
        << snapshots[0];
    EXPECT_NE(snapshots[0].find("\"value\":42"), std::string::npos)
        << snapshots[0];
  }

  // A second Start/Stop cycle flushes again; dumps() counts both.
  dumper.Start();
  dumper.Stop();
  EXPECT_EQ(dumper.dumps(), 2u);
  {
    MutexLock lock(mutex);
    EXPECT_EQ(snapshots.size(), 2u);
  }
}

TEST(PeriodicDumperTest, StopWithoutStartIsANoop) {
  MetricsRegistry registry;
  PeriodicDumper dumper(&registry, PeriodicDumperOptions{},
                        [](const std::string&) {});
  dumper.Stop();
  EXPECT_EQ(dumper.dumps(), 0u);
}

}  // namespace
}  // namespace fvae::obs
