#include <gtest/gtest.h>

#include <cmath>

#include "math/special.h"

namespace fvae {
namespace {

// Euler-Mascheroni constant: psi(1) = -gamma.
constexpr double kEulerGamma = 0.5772156649015329;

TEST(DigammaTest, KnownValues) {
  EXPECT_NEAR(Digamma(1.0), -kEulerGamma, 1e-9);
  // psi(2) = 1 - gamma.
  EXPECT_NEAR(Digamma(2.0), 1.0 - kEulerGamma, 1e-9);
  // psi(0.5) = -gamma - 2 ln 2.
  EXPECT_NEAR(Digamma(0.5), -kEulerGamma - 2.0 * std::log(2.0), 1e-9);
}

TEST(DigammaTest, RecurrenceHolds) {
  // psi(x + 1) = psi(x) + 1/x across a range of x.
  for (double x : {0.1, 0.7, 1.3, 5.5, 42.0, 1000.0}) {
    EXPECT_NEAR(Digamma(x + 1.0), Digamma(x) + 1.0 / x, 1e-9) << "x=" << x;
  }
}

TEST(DigammaTest, MonotoneIncreasing) {
  double prev = Digamma(0.05);
  for (double x = 0.1; x < 20.0; x += 0.37) {
    const double cur = Digamma(x);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(DigammaTest, AsymptoticallyLogX) {
  EXPECT_NEAR(Digamma(1e6), std::log(1e6), 1e-5);
}

TEST(LogGammaTest, FactorialValues) {
  // lgamma(n + 1) = log(n!).
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-9);
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-12);
}

TEST(ExpDigammaTest, MatchesExpOfDigamma) {
  for (double x : {0.3, 1.0, 7.7}) {
    EXPECT_NEAR(ExpDigamma(x), std::exp(Digamma(x)), 1e-9);
  }
}

}  // namespace
}  // namespace fvae
