#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/thread_pool.h"

namespace fvae {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, TasksSubmittedFromTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(1); });
  });
  // Wait may need two rounds since the inner task is submitted late.
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(pool, 0, 100, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  ParallelFor(pool, 5, 5, [&](size_t) { counter.fetch_add(1); });
  ParallelFor(pool, 7, 3, [&](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ParallelForTest, NonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  ParallelFor(pool, 10, 20, [&](size_t i) { sum.fetch_add(long(i)); });
  EXPECT_EQ(sum.load(), 145);  // 10 + 11 + ... + 19
}

}  // namespace
}  // namespace fvae
