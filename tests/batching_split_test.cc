#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "data/batching.h"
#include "data/dataset.h"
#include "data/split.h"

namespace fvae {
namespace {

TEST(BatchIteratorTest, CoversAllUsersOncePerEpoch) {
  BatchIterator batches(100, 7, /*seed=*/1);
  std::vector<uint32_t> batch;
  std::set<uint32_t> seen;
  size_t batch_count = 0;
  while (batches.Next(&batch)) {
    ++batch_count;
    for (uint32_t u : batch) {
      EXPECT_TRUE(seen.insert(u).second) << "duplicate user " << u;
    }
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(batch_count, batches.BatchesPerEpoch());
  EXPECT_EQ(batch_count, 15u);  // ceil(100/7)
}

TEST(BatchIteratorTest, DropRemainder) {
  BatchIterator batches(100, 7, /*seed=*/2, /*drop_remainder=*/true);
  std::vector<uint32_t> batch;
  size_t total = 0, count = 0;
  while (batches.Next(&batch)) {
    EXPECT_EQ(batch.size(), 7u);
    total += batch.size();
    ++count;
  }
  EXPECT_EQ(count, 14u);
  EXPECT_EQ(total, 98u);
  EXPECT_EQ(batches.BatchesPerEpoch(), 14u);
}

TEST(BatchIteratorTest, NewEpochReshuffles) {
  BatchIterator batches(50, 50, /*seed=*/3);
  std::vector<uint32_t> first, second;
  batches.Next(&first);
  batches.NewEpoch();
  batches.Next(&second);
  EXPECT_EQ(first.size(), 50u);
  EXPECT_EQ(second.size(), 50u);
  EXPECT_NE(first, second);  // astronomically unlikely to match
  std::set<uint32_t> s(second.begin(), second.end());
  EXPECT_EQ(s.size(), 50u);
}

TEST(BatchIteratorTest, ExhaustedEpochReturnsFalse) {
  BatchIterator batches(5, 10, /*seed=*/4);
  std::vector<uint32_t> batch;
  EXPECT_TRUE(batches.Next(&batch));
  EXPECT_EQ(batch.size(), 5u);
  EXPECT_FALSE(batches.Next(&batch));
  EXPECT_TRUE(batch.empty());
  EXPECT_FALSE(batches.Next(&batch));  // stays exhausted
}

// ---------- Splits ----------

TEST(SplitTest, PartitionIsDisjointAndComplete) {
  Rng rng(5);
  const DatasetSplit split = SplitUsers(1000, 0.1, 0.2, rng);
  EXPECT_EQ(split.valid.size(), 100u);
  EXPECT_EQ(split.test.size(), 200u);
  EXPECT_EQ(split.train.size(), 700u);
  std::set<uint32_t> all;
  for (uint32_t u : split.train) all.insert(u);
  for (uint32_t u : split.valid) all.insert(u);
  for (uint32_t u : split.test) all.insert(u);
  EXPECT_EQ(all.size(), 1000u);
}

TEST(SplitTest, ZeroFractions) {
  Rng rng(6);
  const DatasetSplit split = SplitUsers(10, 0.0, 0.0, rng);
  EXPECT_TRUE(split.valid.empty());
  EXPECT_TRUE(split.test.empty());
  EXPECT_EQ(split.train.size(), 10u);
}

MultiFieldDataset SmallFixture() {
  MultiFieldDataset::Builder builder(
      {FieldSchema{"a", false}, FieldSchema{"b", true}});
  builder.AddUser({{{1, 1.0f}, {2, 1.0f}}, {{10, 1.0f}, {11, 1.0f}}});
  builder.AddUser({{{3, 1.0f}}, {{12, 1.0f}}});
  builder.AddUser({{{1, 1.0f}}, {{10, 2.0f}, {13, 1.0f}, {14, 1.0f}}});
  return builder.Build();
}

TEST(SubsetTest, KeepsSelectedUsersInOrder) {
  const MultiFieldDataset data = SmallFixture();
  const MultiFieldDataset sub = Subset(data, {2, 0});
  EXPECT_EQ(sub.num_users(), 2u);
  // New user 0 is old user 2.
  EXPECT_EQ(sub.UserField(0, 1).size(), 3u);
  EXPECT_EQ(sub.UserField(1, 0).size(), 2u);
  EXPECT_EQ(sub.fields().size(), 2u);
  EXPECT_EQ(sub.field(1).name, "b");
}

TEST(MaskFieldTest, EmptiesExactlyOneField) {
  const MultiFieldDataset data = SmallFixture();
  const MultiFieldDataset masked = MaskField(data, 1);
  EXPECT_EQ(masked.num_users(), data.num_users());
  for (size_t u = 0; u < masked.num_users(); ++u) {
    EXPECT_TRUE(masked.UserField(u, 1).empty());
    EXPECT_EQ(masked.UserField(u, 0).size(), data.UserField(u, 0).size());
  }
}

TEST(HoldOutTest, InvariantsHold) {
  const MultiFieldDataset data = SmallFixture();
  Rng rng(9);
  const ReconstructionSplit split = HoldOutWithinUsers(data, 0.5, rng);
  ASSERT_EQ(split.held_out.size(), data.num_users());
  for (size_t u = 0; u < data.num_users(); ++u) {
    for (size_t k = 0; k < data.num_fields(); ++k) {
      const size_t original = data.UserField(u, k).size();
      const size_t kept = split.input.UserField(u, k).size();
      const size_t held = split.held_out[u][k].size();
      EXPECT_EQ(kept + held, original);
      if (original >= 2) {
        EXPECT_GE(kept, 1u) << "all entries held out for user " << u;
      }
      if (original == 1) {
        EXPECT_EQ(held, 0u) << "single entry must stay in input";
      }
    }
  }
}

TEST(HoldOutTest, ZeroFractionHoldsNothing) {
  const MultiFieldDataset data = SmallFixture();
  Rng rng(10);
  const ReconstructionSplit split = HoldOutWithinUsers(data, 0.0, rng);
  for (size_t u = 0; u < data.num_users(); ++u) {
    for (size_t k = 0; k < data.num_fields(); ++k) {
      EXPECT_TRUE(split.held_out[u][k].empty());
    }
  }
}

TEST(HoldOutTest, HeldOutEntriesComeFromSource) {
  const MultiFieldDataset data = SmallFixture();
  Rng rng(11);
  const ReconstructionSplit split = HoldOutWithinUsers(data, 0.4, rng);
  for (size_t u = 0; u < data.num_users(); ++u) {
    for (size_t k = 0; k < data.num_fields(); ++k) {
      for (const FeatureEntry& held : split.held_out[u][k]) {
        bool found = false;
        for (const FeatureEntry& src : data.UserField(u, k)) {
          if (src == held) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found);
      }
    }
  }
}

}  // namespace
}  // namespace fvae
