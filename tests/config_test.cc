#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "common/config.h"

namespace fvae {
namespace {

TEST(ConfigMapTest, ParsesKeyValues) {
  auto config = ConfigMap::Parse(
      "train.epochs = 10\n"
      "model.latent = 64\n"
      "name = my experiment\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetInt("train.epochs", 0), 10);
  EXPECT_EQ(config->GetInt("model.latent", 0), 64);
  EXPECT_EQ(config->GetString("name", ""), "my experiment");
  EXPECT_EQ(config->size(), 3u);
}

TEST(ConfigMapTest, CommentsAndBlanksIgnored) {
  auto config = ConfigMap::Parse(
      "# a comment\n"
      "\n"
      "key = value  # trailing comment\n"
      "   \n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->size(), 1u);
  EXPECT_EQ(config->GetString("key", ""), "value");
}

TEST(ConfigMapTest, LastDuplicateWins) {
  auto config = ConfigMap::Parse("k = 1\nk = 2\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetInt("k", 0), 2);
}

TEST(ConfigMapTest, MalformedLineFails) {
  EXPECT_FALSE(ConfigMap::Parse("not a key value line\n").ok());
  EXPECT_FALSE(ConfigMap::Parse("= value\n").ok());
}

TEST(ConfigMapTest, TypedGettersFallBack) {
  auto config = ConfigMap::Parse("x = notanumber\nflag = yes\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetInt("x", -1), -1);
  EXPECT_EQ(config->GetDouble("x", 2.5), 2.5);
  EXPECT_EQ(config->GetInt("missing", 7), 7);
  EXPECT_TRUE(config->GetBool("flag", false));
  EXPECT_FALSE(config->GetBool("missing", false));
}

TEST(ConfigMapTest, BoolSpellings) {
  auto config = ConfigMap::Parse(
      "a = true\nb = 1\nc = false\nd = 0\ne = maybe\n");
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config->GetBool("a", false));
  EXPECT_TRUE(config->GetBool("b", false));
  EXPECT_FALSE(config->GetBool("c", true));
  EXPECT_FALSE(config->GetBool("d", true));
  EXPECT_TRUE(config->GetBool("e", true));  // unparseable -> fallback
}

TEST(ConfigMapTest, SetAndKeysSorted) {
  ConfigMap config;
  config.Set("b", "2");
  config.Set("a", "1");
  EXPECT_TRUE(config.Has("a"));
  EXPECT_FALSE(config.Has("z"));
  const auto keys = config.Keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

TEST(ConfigMapTest, ToStringRoundTrips) {
  ConfigMap config;
  config.Set("x.y", "3.5");
  config.Set("name", "hello world");
  auto reparsed = ConfigMap::Parse(config.ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->GetDouble("x.y", 0.0), 3.5);
  EXPECT_EQ(reparsed->GetString("name", ""), "hello world");
}

TEST(ConfigMapTest, LoadFile) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("fvae_config_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "run.conf").string();
  {
    std::ofstream out(path);
    out << "epochs = 3\n";
  }
  auto config = ConfigMap::LoadFile(path);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->GetInt("epochs", 0), 3);
  EXPECT_FALSE(ConfigMap::LoadFile(path + ".missing").ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fvae
