#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <unistd.h>

#include "core/fvae_model.h"
#include "core/model_io.h"
#include "core/trainer.h"

namespace fvae::core {
namespace {

class ModelIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fvae_model_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

MultiFieldDataset Fixture() {
  MultiFieldDataset::Builder builder(
      {FieldSchema{"ch", false}, FieldSchema{"tag", true}});
  for (int i = 0; i < 32; ++i) {
    builder.AddUser({{{1, 1.0f}}, {{100, 1.0f}, {101, 1.0f}}});
    builder.AddUser({{{2, 1.0f}}, {{200, 1.0f}}});
  }
  return builder.Build();
}

FvaeConfig Config() {
  FvaeConfig config;
  config.latent_dim = 8;
  config.encoder_hidden = {16, 12};
  config.decoder_hidden = {12, 16};
  config.alpha = {1.0f, 2.0f};
  config.beta = 0.17f;
  config.sampling_strategy = SamplingStrategy::kZipfian;
  config.sampling_rate = 0.42;
  config.seed = 9;
  return config;
}

TEST_F(ModelIoTest, RoundTripPreservesInference) {
  const MultiFieldDataset data = Fixture();
  FieldVae model(Config(), data.fields());
  TrainOptions options;
  options.batch_size = 16;
  options.epochs = 4;
  TrainFvae(model, data, options);

  ASSERT_TRUE(SaveFieldVae(model, Path("model.bin")).ok());
  auto loaded = LoadFieldVae(Path("model.bin"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Embeddings must be bit-identical.
  std::vector<uint32_t> users(8);
  std::iota(users.begin(), users.end(), 0u);
  const Matrix z_original = model.Encode(data, users);
  const Matrix z_loaded = (*loaded)->Encode(data, users);
  EXPECT_LT(Matrix::MaxAbsDiff(z_original, z_loaded), 1e-9f);

  // Field scores must match too (decoder + output tables round-trip).
  const std::vector<uint64_t> candidates{100, 101, 200};
  const Matrix s_original = model.ScoreField(z_original, 1, candidates);
  const Matrix s_loaded = (*loaded)->ScoreField(z_loaded, 1, candidates);
  EXPECT_LT(Matrix::MaxAbsDiff(s_original, s_loaded), 1e-9f);
}

TEST_F(ModelIoTest, RoundTripPreservesConfigAndSchemas) {
  const MultiFieldDataset data = Fixture();
  FieldVae model(Config(), data.fields());
  ASSERT_TRUE(SaveFieldVae(model, Path("fresh.bin")).ok());
  auto loaded = LoadFieldVae(Path("fresh.bin"));
  ASSERT_TRUE(loaded.ok());

  const FvaeConfig& config = (*loaded)->config();
  EXPECT_EQ(config.latent_dim, 8u);
  EXPECT_EQ(config.encoder_hidden, (std::vector<size_t>{16, 12}));
  EXPECT_EQ(config.decoder_hidden, (std::vector<size_t>{12, 16}));
  ASSERT_EQ(config.alpha.size(), 2u);
  EXPECT_FLOAT_EQ(config.alpha[1], 2.0f);
  EXPECT_FLOAT_EQ(config.beta, 0.17f);
  EXPECT_EQ(config.sampling_strategy, SamplingStrategy::kZipfian);
  EXPECT_DOUBLE_EQ(config.sampling_rate, 0.42);

  ASSERT_EQ((*loaded)->field_schemas().size(), 2u);
  EXPECT_EQ((*loaded)->field_schemas()[0].name, "ch");
  EXPECT_TRUE((*loaded)->field_schemas()[1].is_sparse);
}

TEST_F(ModelIoTest, LoadedModelCanKeepTraining) {
  const MultiFieldDataset data = Fixture();
  FieldVae model(Config(), data.fields());
  TrainOptions options;
  options.batch_size = 16;
  options.epochs = 2;
  TrainFvae(model, data, options);
  ASSERT_TRUE(SaveFieldVae(model, Path("warm.bin")).ok());
  auto loaded = LoadFieldVae(Path("warm.bin"));
  ASSERT_TRUE(loaded.ok());
  const TrainResult result = TrainFvae(**loaded, data, options);
  EXPECT_GT(result.steps, 0u);
  EXPECT_TRUE(std::isfinite(result.epoch_loss.back()));
}

TEST_F(ModelIoTest, MissingFileFails) {
  auto loaded = LoadFieldVae(Path("missing.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST_F(ModelIoTest, TruncatedFileFails) {
  const MultiFieldDataset data = Fixture();
  FieldVae model(Config(), data.fields());
  std::vector<uint32_t> batch{0, 1, 2, 3};
  model.TrainStep(data, batch, 0.1f);
  ASSERT_TRUE(SaveFieldVae(model, Path("trunc.bin")).ok());
  std::filesystem::resize_file(
      Path("trunc.bin"),
      std::filesystem::file_size(Path("trunc.bin")) / 3);
  EXPECT_FALSE(LoadFieldVae(Path("trunc.bin")).ok());
}

TEST_F(ModelIoTest, GarbageFileFails) {
  {
    std::ofstream out(Path("garbage.bin"), std::ios::binary);
    out << "not a model checkpoint at all";
  }
  auto loaded = LoadFieldVae(Path("garbage.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace fvae::core
