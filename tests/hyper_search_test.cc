#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/hyper_search.h"

namespace fvae::core {
namespace {

TEST(SampleConfigTest, StaysWithinSpace) {
  FvaeSearchSpace space;
  space.latent_choices = {8, 16};
  space.hidden_choices = {32};
  space.beta_min = 0.1f;
  space.beta_max = 0.2f;
  space.sampling_rate_min = 0.3;
  space.sampling_rate_max = 0.4;
  space.alpha_log10_min = -1.0f;
  space.alpha_log10_max = 0.0f;
  FvaeConfig base;
  base.anneal_steps = 77;  // must pass through untouched
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const FvaeConfig config = SampleConfig(space, base, 3, rng);
    EXPECT_TRUE(config.latent_dim == 8 || config.latent_dim == 16);
    EXPECT_EQ(config.encoder_hidden[0], 32u);
    EXPECT_EQ(config.decoder_hidden[0], 32u);
    EXPECT_GE(config.beta, 0.1f);
    EXPECT_LE(config.beta, 0.2f);
    EXPECT_GE(config.sampling_rate, 0.3);
    EXPECT_LE(config.sampling_rate, 0.4);
    ASSERT_EQ(config.alpha.size(), 3u);
    for (float alpha : config.alpha) {
      EXPECT_GE(alpha, 0.1f - 1e-6f);
      EXPECT_LE(alpha, 1.0f + 1e-6f);
    }
    EXPECT_EQ(config.anneal_steps, 77u);
  }
}

TEST(SampleConfigTest, AlphaSearchCanBeDisabled) {
  FvaeSearchSpace space;
  space.search_alpha = false;
  FvaeConfig base;
  Rng rng(2);
  const FvaeConfig config = SampleConfig(space, base, 4, rng);
  EXPECT_TRUE(config.alpha.empty());
}

TEST(RandomSearchTest, FindsGoodRegion) {
  // Objective rewards beta near 0.3: best trial must land closer than a
  // single fixed guess would.
  FvaeSearchSpace space;
  space.beta_min = 0.0f;
  space.beta_max = 1.0f;
  space.search_alpha = false;
  FvaeConfig base;
  Rng rng(3);
  const SearchOutcome outcome = RandomSearch(
      space, base, 2, 50,
      [](const FvaeConfig& config) {
        return -std::fabs(double(config.beta) - 0.3);
      },
      rng);
  EXPECT_EQ(outcome.trials.size(), 50u);
  EXPECT_NEAR(outcome.best_config.beta, 0.3f, 0.05f);
  EXPECT_EQ(outcome.best_score,
            -std::fabs(double(outcome.best_config.beta) - 0.3));
  // best_score is the max over trials.
  for (const SearchTrial& trial : outcome.trials) {
    EXPECT_LE(trial.score, outcome.best_score + 1e-12);
  }
}

TEST(RandomSearchTest, DeterministicGivenRng) {
  FvaeSearchSpace space;
  FvaeConfig base;
  auto objective = [](const FvaeConfig& config) {
    return double(config.beta) + config.sampling_rate;
  };
  Rng rng_a(7), rng_b(7);
  const SearchOutcome a = RandomSearch(space, base, 2, 10, objective, rng_a);
  const SearchOutcome b = RandomSearch(space, base, 2, 10, objective, rng_b);
  EXPECT_EQ(a.best_score, b.best_score);
  EXPECT_EQ(a.best_config.latent_dim, b.best_config.latent_dim);
}

TEST(RandomSearchTest, ExploresDiverseConfigs) {
  FvaeSearchSpace space;
  space.latent_choices = {8, 16, 32, 64};
  FvaeConfig base;
  Rng rng(11);
  const SearchOutcome outcome = RandomSearch(
      space, base, 2, 40, [](const FvaeConfig&) { return 0.0; }, rng);
  std::set<size_t> latents;
  for (const SearchTrial& trial : outcome.trials) {
    latents.insert(trial.config.latent_dim);
  }
  EXPECT_GE(latents.size(), 3u);  // random search actually explores
}

}  // namespace
}  // namespace fvae::core
