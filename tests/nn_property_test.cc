// Parameterized (property-style) gradient checks over layer shapes and
// network depths: for every configuration, analytic gradients must match
// central finite differences.

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "math/matrix.h"
#include "nn/dense.h"
#include "nn/mlp.h"

namespace fvae::nn {
namespace {

/// loss = sum(weights ⊙ layer(input)); returns max |analytic - numeric|
/// over input and parameter gradients.
double MaxGradientError(Layer& layer, Matrix input, uint64_t seed) {
  Rng rng(seed);
  Matrix output;
  layer.Forward(input, &output, false);
  const Matrix loss_weights =
      Matrix::Gaussian(output.rows(), output.cols(), 1.0f, rng);

  auto loss_of = [&](const Matrix& in) {
    Matrix out;
    layer.Forward(in, &out, false);
    double total = 0.0;
    for (size_t i = 0; i < out.size(); ++i) {
      total += double(out.data()[i]) * loss_weights.data()[i];
    }
    return total;
  };

  layer.Forward(input, &output, false);
  Matrix input_grad;
  layer.Backward(loss_weights, &input_grad);
  std::vector<ParamRef> params;
  layer.CollectParams(&params);
  std::vector<Matrix> analytic;
  analytic.reserve(params.size());
  for (const ParamRef& p : params) analytic.push_back(*p.grad);

  double max_err = 0.0;
  const float h = 1e-3f;
  for (size_t i = 0; i < input.size(); ++i) {
    Matrix plus = input, minus = input;
    plus.data()[i] += h;
    minus.data()[i] -= h;
    const double numeric = (loss_of(plus) - loss_of(minus)) / (2.0 * h);
    max_err = std::max(max_err,
                       std::fabs(double(input_grad.data()[i]) - numeric));
  }
  for (size_t p = 0; p < params.size(); ++p) {
    Matrix& value = *params[p].value;
    for (size_t i = 0; i < value.size(); ++i) {
      const float original = value.data()[i];
      value.data()[i] = original + h;
      const double lp = loss_of(input);
      value.data()[i] = original - h;
      const double lm = loss_of(input);
      value.data()[i] = original;
      const double numeric = (lp - lm) / (2.0 * h);
      max_err = std::max(
          max_err, std::fabs(double(analytic[p].data()[i]) - numeric));
    }
  }
  return max_err;
}

class DenseShapeGradTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DenseShapeGradTest, GradientsMatchNumerics) {
  const auto [batch, in_dim, out_dim] = GetParam();
  Rng rng(batch * 100 + in_dim * 10 + out_dim);
  DenseLayer layer(in_dim, out_dim, rng);
  const Matrix input = Matrix::Gaussian(batch, in_dim, 1.0f, rng);
  EXPECT_LT(MaxGradientError(layer, input, 7), 5e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DenseShapeGradTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(1, 7, 3),
                      std::make_tuple(5, 3, 9), std::make_tuple(8, 8, 8),
                      std::make_tuple(2, 16, 4)));

class MlpDepthGradTest
    : public ::testing::TestWithParam<std::tuple<std::vector<size_t>,
                                                 Activation, bool>> {};

TEST_P(MlpDepthGradTest, GradientsMatchNumerics) {
  const auto [dims, activation, activate_output] = GetParam();
  Rng rng(dims.size() * 1000 + dims.back());
  Mlp mlp(dims, activation, rng, activate_output);
  const Matrix input = Matrix::Gaussian(3, dims.front(), 0.7f, rng);
  EXPECT_LT(MaxGradientError(mlp, input, 13), 8e-2);
}

INSTANTIATE_TEST_SUITE_P(
    Depths, MlpDepthGradTest,
    ::testing::Values(
        std::make_tuple(std::vector<size_t>{4, 3}, Activation::kTanh, false),
        std::make_tuple(std::vector<size_t>{4, 6, 3}, Activation::kTanh,
                        false),
        std::make_tuple(std::vector<size_t>{4, 6, 3}, Activation::kTanh,
                        true),
        std::make_tuple(std::vector<size_t>{3, 5, 5, 2},
                        Activation::kSigmoid, false),
        std::make_tuple(std::vector<size_t>{2, 8, 2}, Activation::kTanh,
                        true)));

}  // namespace
}  // namespace fvae::nn
