#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "math/kernels/kernel_table.h"
#include "math/special.h"

namespace fvae {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNan = std::numeric_limits<float>::quiet_NaN();

/// Distance between two floats in units of last place, treating the float
/// line as the ordered integer line (negative floats mirrored). Returns a
/// huge value when exactly one side is NaN.
uint64_t UlpDistance(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) {
    return (std::isnan(a) && std::isnan(b)) ? 0 : UINT64_MAX;
  }
  // Monotone map from sign-magnitude float bits to the integer line.
  auto key = [](float f) -> int64_t {
    int32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    return bits < 0 ? -(int64_t)(bits & 0x7fffffff) : (int64_t)bits;
  };
  const int64_t ka = key(a), kb = key(b);
  return static_cast<uint64_t>(ka > kb ? ka - kb : kb - ka);
}

/// ULP-bounded closeness with an absolute floor for results near zero
/// (where relative/ULP comparisons are meaninglessly strict).
::testing::AssertionResult Close(float a, float b, uint64_t max_ulps,
                                 float abs_eps) {
  if (std::isnan(a) && std::isnan(b)) return ::testing::AssertionSuccess();
  if (a == b) return ::testing::AssertionSuccess();
  if (std::fabs(a - b) <= abs_eps) return ::testing::AssertionSuccess();
  const uint64_t d = UlpDistance(a, b);
  if (d <= max_ulps) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " vs " << b << " differ by " << d << " ulps";
}

std::vector<float> RandomVec(size_t n, std::mt19937* rng, float lo = -1.0f,
                             float hi = 1.0f) {
  std::uniform_real_distribution<float> dist(lo, hi);
  std::vector<float> v(n);
  for (float& x : v) x = dist(*rng);
  return v;
}

// Runs first in this binary: with FVAE_FORCE_ISA set (the forced-ISA ctest
// legs), first-use init must install exactly the forced ISA when the CPU
// has it.
TEST(KernelDispatchTest, EnvOverrideRespected) {
  const char* forced = std::getenv("FVAE_FORCE_ISA");
  if (forced == nullptr) GTEST_SKIP() << "FVAE_FORCE_ISA not set";
  for (Isa isa : {Isa::kScalar, Isa::kAvx2, Isa::kAvx512}) {
    if (std::string(forced) == IsaName(isa)) {
      if (IsaSupported(isa)) {
        EXPECT_EQ(ActiveIsa(), isa) << "env override ignored";
      } else {
        // Unsupported forced ISA keeps the detected best.
        EXPECT_TRUE(IsaSupported(ActiveIsa()));
      }
      return;
    }
  }
  GTEST_SKIP() << "unrecognized FVAE_FORCE_ISA value: " << forced;
}

TEST(KernelDispatchTest, TableIsFullyPopulated) {
  const KernelTable& t = Kernels();
  EXPECT_NE(t.gemm_accumulate, nullptr);
  EXPECT_NE(t.dot, nullptr);
  EXPECT_NE(t.axpy, nullptr);
  EXPECT_NE(t.softmax_inplace, nullptr);
  EXPECT_NE(t.log_softmax_inplace, nullptr);
  EXPECT_NE(t.log_sum_exp, nullptr);
  EXPECT_NE(t.exp_inplace, nullptr);
  EXPECT_NE(t.log_inplace, nullptr);
  EXPECT_NE(t.tanh_inplace, nullptr);
  EXPECT_NE(t.sigmoid_inplace, nullptr);
  EXPECT_NE(t.multinomial_grad, nullptr);
  EXPECT_TRUE(IsaSupported(t.isa));
}

TEST(KernelDispatchTest, ForceIsaSwitchesAndRestores) {
  const Isa entry = ActiveIsa();
  ASSERT_TRUE(ForceIsa(Isa::kScalar));
  EXPECT_EQ(ActiveIsa(), Isa::kScalar);
  ASSERT_TRUE(ForceIsa(entry));
  EXPECT_EQ(ActiveIsa(), entry);
}

/// Parametrized over every ISA the host supports; unsupported ISAs skip.
/// Each test compares the forced table against a locally built scalar
/// reference table, so parity is checked kernel-for-kernel.
class KernelIsaTest : public ::testing::TestWithParam<Isa> {
 protected:
  void SetUp() override {
    entry_isa_ = ActiveIsa();
    if (!IsaSupported(GetParam())) {
      GTEST_SKIP() << IsaName(GetParam()) << " not supported on this CPU";
    }
    ASSERT_TRUE(ForceIsa(GetParam()));
    FillScalar(&ref_);
  }
  void TearDown() override { ForceIsa(entry_isa_); }

  const KernelTable& T() { return Kernels(); }

  KernelTable ref_;
  Isa entry_isa_ = Isa::kScalar;
};

TEST_P(KernelIsaTest, GemmParityAcrossTailSizes) {
  // Sizes straddle every strip width (1/8/16/32) and their remainders.
  const size_t sizes[] = {1, 3, 7, 17, 31, 63, 65};
  std::mt19937 rng(42);
  for (size_t m : {size_t{1}, size_t{4}, size_t{7}}) {
    for (size_t k : sizes) {
      for (size_t n : sizes) {
        const std::vector<float> a = RandomVec(m * k, &rng);
        const std::vector<float> b = RandomVec(k * n, &rng);
        std::vector<float> got = RandomVec(m * n, &rng);
        std::vector<float> want = got;
        T().gemm_accumulate(a.data(), b.data(), got.data(), m, k, n);
        ref_.gemm_accumulate(a.data(), b.data(), want.data(), m, k, n);
        for (size_t i = 0; i < m * n; ++i) {
          EXPECT_TRUE(Close(got[i], want[i], 64,
                            1e-6f * static_cast<float>(k)))
              << "m=" << m << " k=" << k << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

TEST_P(KernelIsaTest, GemmPropagatesInfAndNanLikeScalar) {
  // 0 * inf in the accumulation must yield NaN in every path — the old
  // tiled GEMM skipped zero multiplicands in its remainder loop, so the
  // tail diverged from the body on exactly these inputs.
  const size_t m = 1, k = 2;
  for (size_t n : {size_t{1}, size_t{8}, size_t{17}}) {
    std::vector<float> a = {0.0f, 1.0f};
    std::vector<float> b(k * n, 1.0f);
    b[0] = kInf;  // B(0,0) pairs with A's zero: 0 * inf = NaN
    std::vector<float> got(m * n, 0.0f), want(m * n, 0.0f);
    T().gemm_accumulate(a.data(), b.data(), got.data(), m, k, n);
    ref_.gemm_accumulate(a.data(), b.data(), want.data(), m, k, n);
    EXPECT_TRUE(std::isnan(got[0])) << "n=" << n;
    EXPECT_TRUE(std::isnan(want[0])) << "n=" << n;
    for (size_t i = 1; i < n; ++i) {
      EXPECT_EQ(std::isnan(got[i]), std::isnan(want[i]))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST_P(KernelIsaTest, DotAndAxpyParity) {
  std::mt19937 rng(7);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{17}, size_t{65},
                   size_t{256}}) {
    const std::vector<float> x = RandomVec(n, &rng);
    const std::vector<float> y = RandomVec(n, &rng);
    EXPECT_NEAR(T().dot(x.data(), y.data(), n),
                ref_.dot(x.data(), y.data(), n), 1e-9 * (double(n) + 1.0));
    std::vector<float> got = y, want = y;
    T().axpy(0.37f, x.data(), got.data(), n);
    ref_.axpy(0.37f, x.data(), want.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(Close(got[i], want[i], 2, 1e-7f)) << "n=" << n;
    }
  }
}

TEST_P(KernelIsaTest, ElementwiseParityAgainstScalar) {
  std::mt19937 rng(11);
  for (size_t n : {size_t{1}, size_t{7}, size_t{16}, size_t{33},
                   size_t{100}}) {
    const std::vector<float> base = RandomVec(n, &rng, -10.0f, 10.0f);
    for (auto op : {&KernelTable::exp_inplace, &KernelTable::log_inplace,
                    &KernelTable::tanh_inplace,
                    &KernelTable::sigmoid_inplace}) {
      std::vector<float> got = base, want = base;
      if (op == &KernelTable::log_inplace) {
        for (float& v : got) v = std::fabs(v) + 0.01f;
        want = got;
      }
      (T().*op)(got.data(), n);
      (ref_.*op)(want.data(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(Close(got[i], want[i], 8, 1e-6f)) << "n=" << n;
      }
    }
  }
}

TEST_P(KernelIsaTest, VectorExpLogMatchScalarTwinsBitwise) {
  if (GetParam() == Isa::kScalar) {
    GTEST_SKIP() << "scalar table uses libm, not the polynomial twins";
  }
  // The SIMD exp/log and ExpApprox/LogApprox share range reduction,
  // coefficients, and FMA shapes, so agreement is bitwise.
  std::vector<float> xs;
  for (float v = -100.0f; v <= 100.0f; v += 0.618f) xs.push_back(v);
  xs.insert(xs.end(), {0.0f, -0.0f, 88.3762626647950f, 88.5f,
                       -87.3365478515625f, -87.5f, 1.0f, -1.0f});
  std::vector<float> e = xs;
  T().exp_inplace(e.data(), e.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    const float want = ExpApprox(xs[i]);
    EXPECT_EQ(std::memcmp(&e[i], &want, sizeof(float)), 0)
        << "exp(" << xs[i] << ") = " << e[i] << " want " << want;
  }
  std::vector<float> ls;
  for (float v = 0.001f; v <= 50.0f; v += 0.1337f) ls.push_back(v);
  ls.insert(ls.end(), {1.0f, 0.5f, 2.0f, 1e-30f, 1e30f});
  std::vector<float> l = ls;
  T().log_inplace(l.data(), l.size());
  for (size_t i = 0; i < ls.size(); ++i) {
    const float want = LogApprox(ls[i]);
    EXPECT_EQ(std::memcmp(&l[i], &want, sizeof(float)), 0)
        << "log(" << ls[i] << ") = " << l[i] << " want " << want;
  }
}

TEST_P(KernelIsaTest, ExpSaturatesAndPropagatesSpecials) {
  // 88.0 is near — but safely inside — the saturation clamp; at the exact
  // boundary the approximation already rounds to +inf (like ExpApprox).
  std::vector<float> x = {100.0f, -100.0f, kNan, kInf, -kInf, 0.0f,
                          88.0f, -87.0f};
  T().exp_inplace(x.data(), x.size());
  EXPECT_EQ(x[0], kInf);        // above the clamp: +inf, not garbage
  EXPECT_EQ(x[1], 0.0f);        // below the clamp: exact zero
  EXPECT_TRUE(std::isnan(x[2]));
  EXPECT_EQ(x[3], kInf);
  EXPECT_EQ(x[4], 0.0f);
  EXPECT_EQ(x[5], 1.0f);
  EXPECT_TRUE(std::isfinite(x[6]) && x[6] > 0.0f);
  // exp(-87) ~ 1.6e-38 sits just above min-normal: must survive, not be
  // flushed or saturated to zero by an over-wide clamp.
  EXPECT_TRUE(x[7] > 0.0f && std::fpclassify(x[7]) == FP_NORMAL)
      << "near-underflow value must stay normal, got " << x[7];
}

TEST_P(KernelIsaTest, LogSpecials) {
  std::vector<float> x = {0.0f, -1.0f, kInf, kNan, 1.0f};
  T().log_inplace(x.data(), x.size());
  EXPECT_EQ(x[0], -kInf);
  EXPECT_TRUE(std::isnan(x[1]));
  EXPECT_EQ(x[2], kInf);
  EXPECT_TRUE(std::isnan(x[3]));
  EXPECT_EQ(x[4], 0.0f);
}

TEST_P(KernelIsaTest, SoftmaxEdgeCases) {
  // Empty span: no touch, no NaN (regression: used to divide 0/0).
  std::vector<float> sentinel = {42.0f};
  T().softmax_inplace(sentinel.data(), 0);
  T().log_softmax_inplace(sentinel.data(), 0);
  EXPECT_EQ(sentinel[0], 42.0f);

  // All-(-inf) logits: uniform, not NaN (regression: exp(-inf - -inf)).
  for (size_t n : {size_t{1}, size_t{5}, size_t{19}}) {
    std::vector<float> x(n, -kInf);
    T().softmax_inplace(x.data(), n);
    for (float p : x) EXPECT_FLOAT_EQ(p, 1.0f / static_cast<float>(n));
    std::vector<float> lx(n, -kInf);
    T().log_softmax_inplace(lx.data(), n);
    for (float lp : lx) {
      EXPECT_FLOAT_EQ(lp, -std::log(static_cast<float>(n)));
    }
  }

  // NaN anywhere poisons the whole output, matching what the scalar
  // exp -> sum -> normalize chain does.
  for (size_t pos : {size_t{0}, size_t{9}, size_t{16}}) {
    std::vector<float> x(17, 0.5f);
    x[pos] = kNan;
    T().softmax_inplace(x.data(), x.size());
    for (float p : x) EXPECT_TRUE(std::isnan(p)) << "pos=" << pos;
    std::vector<float> lx(17, 0.5f);
    lx[pos] = kNan;
    T().log_softmax_inplace(lx.data(), lx.size());
    for (float lp : lx) EXPECT_TRUE(std::isnan(lp)) << "pos=" << pos;
  }

  // A +inf logit dominates: its probability is NaN-free only at the inf
  // slot under the scalar semantics (inf - inf = NaN elsewhere... exp of
  // -inf shift). Scalar and vector must agree elementwise on NaN-ness.
  std::vector<float> got = {1.0f, kInf, 0.0f, 2.0f};
  std::vector<float> want = got;
  T().softmax_inplace(got.data(), got.size());
  ref_.softmax_inplace(want.data(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(std::isnan(got[i]), std::isnan(want[i])) << "i=" << i;
    if (!std::isnan(got[i])) {
      EXPECT_TRUE(Close(got[i], want[i], 16, 1e-6f)) << "i=" << i;
    }
  }
}

TEST_P(KernelIsaTest, SoftmaxParityAgainstScalar) {
  std::mt19937 rng(23);
  for (size_t n : {size_t{1}, size_t{2}, size_t{8}, size_t{17}, size_t{64},
                   size_t{129}}) {
    const std::vector<float> base = RandomVec(n, &rng, -8.0f, 8.0f);
    std::vector<float> got = base, want = base;
    T().softmax_inplace(got.data(), n);
    ref_.softmax_inplace(want.data(), n);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(Close(got[i], want[i], 256, 1e-6f)) << "n=" << n;
      total += got[i];
    }
    EXPECT_NEAR(total, 1.0, 1e-5);

    got = base;
    want = base;
    T().log_softmax_inplace(got.data(), n);
    ref_.log_softmax_inplace(want.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(Close(got[i], want[i], 256, 1e-5f)) << "n=" << n;
    }
    EXPECT_NEAR(T().log_sum_exp(base.data(), n),
                ref_.log_sum_exp(base.data(), n), 1e-5);
  }
}

TEST_P(KernelIsaTest, LogSumExpEdgeCases) {
  EXPECT_EQ(T().log_sum_exp(nullptr, 0), -HUGE_VAL);
  std::vector<float> allneg(7, -kInf);
  EXPECT_EQ(T().log_sum_exp(allneg.data(), allneg.size()), -HUGE_VAL);
  std::vector<float> shifted = {1000.0f, 1000.0f};
  EXPECT_NEAR(T().log_sum_exp(shifted.data(), 2), 1000.0 + std::log(2.0),
              1e-3);
}

TEST_P(KernelIsaTest, MultinomialGradFlushesSubnormalMass) {
  // lp = -87 gives softmax mass ~1.6e-38; scaled by total_count = 0.5 the
  // naive product is subnormal. The kernel must emit exactly zero there,
  // never subnormal garbage, even with FVAE_FTZ=0.
  const size_t n = 9;
  std::vector<float> lp(n, -87.0f);
  lp[0] = 0.0f;  // carries ~all the mass
  std::vector<float> counts(n, 0.0f);
  counts[0] = 0.5f;
  std::vector<float> grad(n, kNan);
  T().multinomial_grad(lp.data(), counts.data(), 0.5f, grad.data(), n);
  EXPECT_TRUE(Close(grad[0], 0.0f, 4, 1e-6f));
  for (size_t j = 1; j < n; ++j) {
    EXPECT_EQ(grad[j], 0.0f) << "j=" << j;
    EXPECT_NE(std::fpclassify(grad[j]), FP_SUBNORMAL);
  }
}

TEST_P(KernelIsaTest, MultinomialGradParityAndNan) {
  std::mt19937 rng(99);
  for (size_t n : {size_t{1}, size_t{6}, size_t{17}, size_t{70}}) {
    std::vector<float> lp = RandomVec(n, &rng, -6.0f, 0.0f);
    ref_.log_softmax_inplace(lp.data(), n);  // normalize so mass sums to 1
    const std::vector<float> counts = RandomVec(n, &rng, 0.0f, 3.0f);
    float total = 0.0f;
    for (float c : counts) total += c;
    std::vector<float> got(n), want(n);
    T().multinomial_grad(lp.data(), counts.data(), total, got.data(), n);
    ref_.multinomial_grad(lp.data(), counts.data(), total, want.data(), n);
    for (size_t j = 0; j < n; ++j) {
      EXPECT_TRUE(Close(got[j], want[j], 32, 1e-5f)) << "n=" << n;
    }
  }
  // NaN in log_probs must reach the gradient, not be flushed away.
  std::vector<float> lp = {0.0f, kNan, -1.0f};
  std::vector<float> counts = {1.0f, 0.0f, 1.0f};
  std::vector<float> grad(3);
  T().multinomial_grad(lp.data(), counts.data(), 2.0f, grad.data(), 3);
  EXPECT_TRUE(std::isnan(grad[1]));
}

TEST_P(KernelIsaTest, TanhAndSigmoidSpecials) {
  std::vector<float> t = {0.0f, 50.0f, -50.0f, kNan, kInf, -kInf};
  T().tanh_inplace(t.data(), t.size());
  EXPECT_EQ(t[0], 0.0f);
  EXPECT_FLOAT_EQ(t[1], 1.0f);
  EXPECT_FLOAT_EQ(t[2], -1.0f);
  EXPECT_TRUE(std::isnan(t[3]));
  EXPECT_FLOAT_EQ(t[4], 1.0f);
  EXPECT_FLOAT_EQ(t[5], -1.0f);

  std::vector<float> s = {0.0f, 100.0f, -100.0f, kNan};
  T().sigmoid_inplace(s.data(), s.size());
  EXPECT_FLOAT_EQ(s[0], 0.5f);
  EXPECT_FLOAT_EQ(s[1], 1.0f);
  EXPECT_EQ(s[2], 0.0f);
  EXPECT_TRUE(std::isnan(s[3]));
}

INSTANTIATE_TEST_SUITE_P(AllIsas, KernelIsaTest,
                         ::testing::Values(Isa::kScalar, Isa::kAvx2,
                                           Isa::kAvx512),
                         [](const ::testing::TestParamInfo<Isa>& info) {
                           return std::string(IsaName(info.param));
                         });

}  // namespace
}  // namespace fvae
