#include <gtest/gtest.h>

#include "common/random.h"
#include "lookalike/ab_test.h"
#include "lookalike/lookalike_system.h"
#include "math/matrix.h"

namespace fvae::lookalike {
namespace {

TEST(LookalikeSystemTest, AccountEmbeddingIsFollowerMean) {
  Matrix users = Matrix::FromRows({{1, 0}, {3, 0}, {0, 5}});
  const std::vector<std::vector<uint32_t>> followers{{0, 1}, {2}, {}};
  LookalikeSystem system(users, followers);
  EXPECT_EQ(system.num_accounts(), 3u);
  EXPECT_FLOAT_EQ(system.account_embeddings()(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(system.account_embeddings()(0, 1), 0.0f);
  EXPECT_FLOAT_EQ(system.account_embeddings()(1, 1), 5.0f);
  // No followers -> zero embedding.
  EXPECT_FLOAT_EQ(system.account_embeddings()(2, 0), 0.0f);
}

TEST(LookalikeSystemTest, RecallOrdersByL2Distance) {
  Matrix users = Matrix::FromRows({{0, 0}, {10, 0}, {0, 10}, {1, 1}});
  // Accounts anchored at users 0, 1, 2 respectively.
  const std::vector<std::vector<uint32_t>> followers{{0}, {1}, {2}};
  LookalikeSystem system(users, followers);
  // User 3 at (1,1): nearest account is 0, then ties-ish between 1 and 2.
  const auto recalled = system.Recall(3, 3, {});
  ASSERT_EQ(recalled.size(), 3u);
  EXPECT_EQ(recalled[0], 0u);
}

TEST(LookalikeSystemTest, RecallExcludes) {
  Matrix users = Matrix::FromRows({{0, 0}, {1, 0}});
  const std::vector<std::vector<uint32_t>> followers{{0}, {1}};
  LookalikeSystem system(users, followers);
  const auto recalled = system.Recall(0, 5, {0});
  ASSERT_EQ(recalled.size(), 1u);
  EXPECT_EQ(recalled[0], 1u);
}

TEST(LookalikeSystemTest, RecallCountCaps) {
  Matrix users = Matrix::FromRows({{0, 0}});
  const std::vector<std::vector<uint32_t>> followers{{0}, {0}, {0}};
  LookalikeSystem system(users, followers);
  EXPECT_EQ(system.Recall(0, 2, {}).size(), 2u);
  EXPECT_EQ(system.Recall(0, 99, {}).size(), 3u);
}

// ---------- A/B test ----------

class AbTestFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // 300 users, 6 topics: mixture = mostly one-hot by construction.
    Rng rng(9);
    for (int u = 0; u < 300; ++u) {
      std::vector<float> mix(6, 0.02f);
      mix[u % 6] = 0.90f;
      mixtures_.push_back(std::move(mix));
    }
    config_.num_accounts = 60;
    config_.recommendations_per_user = 5;
    config_.seed_followers_per_account = 10;
    config_.seed = 13;
  }

  /// Ideal embeddings: the ground-truth topic mixture itself.
  Matrix OracleEmbeddings() const {
    Matrix z(mixtures_.size(), 6);
    for (size_t u = 0; u < mixtures_.size(); ++u) {
      for (size_t t = 0; t < 6; ++t) z(u, t) = mixtures_[u][t];
    }
    return z;
  }

  /// Noise embeddings: pure Gaussian, no structure.
  Matrix RandomEmbeddings() const {
    Rng rng(31);
    return Matrix::Gaussian(mixtures_.size(), 6, 1.0f, rng);
  }

  std::vector<std::vector<float>> mixtures_;
  AbTestConfig config_;
};

TEST_F(AbTestFixture, AffinityIsInUnitInterval) {
  LookalikeAbTest ab(mixtures_, config_);
  for (uint32_t u = 0; u < 20; ++u) {
    for (uint32_t a = 0; a < 20; ++a) {
      const double affinity = ab.Affinity(u, a);
      EXPECT_GE(affinity, 0.0);
      EXPECT_LE(affinity, 1.0);
    }
  }
}

TEST_F(AbTestFixture, SeedGraphIsPopulated) {
  LookalikeAbTest ab(mixtures_, config_);
  ASSERT_EQ(ab.seed_followers().size(), 60u);
  for (const auto& followers : ab.seed_followers()) {
    EXPECT_EQ(followers.size(), 10u);
  }
}

TEST_F(AbTestFixture, BetterEmbeddingsWinEveryMetric) {
  LookalikeAbTest ab(mixtures_, config_);
  const ArmMetrics oracle = ab.RunArm("oracle", OracleEmbeddings());
  const ArmMetrics random = ab.RunArm("random", RandomEmbeddings());

  EXPECT_GT(oracle.following_clicks, random.following_clicks);
  EXPECT_GT(oracle.likes, random.likes);
  EXPECT_GT(oracle.shares, random.shares);
  EXPECT_EQ(oracle.name, "oracle");
}

TEST_F(AbTestFixture, ArmsAreReproducible) {
  LookalikeAbTest ab(mixtures_, config_);
  const ArmMetrics a = ab.RunArm("x", OracleEmbeddings());
  const ArmMetrics b = ab.RunArm("x", OracleEmbeddings());
  EXPECT_EQ(a.following_clicks, b.following_clicks);
  EXPECT_EQ(a.likes, b.likes);
  EXPECT_EQ(a.shares, b.shares);
}

TEST_F(AbTestFixture, ProfileModeRewardsProfileSimilarity) {
  // Dataset with two disjoint interest groups.
  MultiFieldDataset::Builder builder({FieldSchema{"tag", true}});
  for (int i = 0; i < 60; ++i) {
    const bool group_a = i % 2 == 0;
    builder.AddUser({{{group_a ? 1u : 100u, 1.0f},
                      {group_a ? 2u : 200u, 1.0f}}});
  }
  const MultiFieldDataset data = builder.Build();

  AbTestConfig config;
  config.num_accounts = 10;
  config.recommendations_per_user = 3;
  config.seed_followers_per_account = 5;
  config.seed = 3;
  LookalikeAbTest ab(data, config);

  // Affinity is 1 for same-group prototypes and 0 across groups.
  // Check a few pairs: users 0 and 2 share a profile exactly.
  bool found_one = false, found_zero = false;
  for (uint32_t a = 0; a < 10; ++a) {
    const double affinity = ab.Affinity(0, a);
    if (affinity > 0.99) found_one = true;
    if (affinity < 0.01) found_zero = true;
  }
  EXPECT_TRUE(found_one);
  EXPECT_TRUE(found_zero);

  // Group-separating embeddings beat random ones.
  Matrix good(60, 2);
  for (int i = 0; i < 60; ++i) good(i, i % 2) = 1.0f;
  Rng rng(5);
  const Matrix noise = Matrix::Gaussian(60, 2, 1.0f, rng);
  const ArmMetrics good_arm = ab.RunArm("good", good);
  const ArmMetrics noise_arm = ab.RunArm("noise", noise);
  EXPECT_GT(good_arm.following_clicks, noise_arm.following_clicks);
}

TEST_F(AbTestFixture, AvgMetricsHandleZeroUsers) {
  ArmMetrics empty;
  EXPECT_EQ(empty.AvgLike(), 0.0);
  EXPECT_EQ(empty.AvgShare(), 0.0);
  ArmMetrics some;
  some.likes = 10;
  some.users_liked = 4;
  EXPECT_DOUBLE_EQ(some.AvgLike(), 2.5);
}

}  // namespace
}  // namespace fvae::lookalike
