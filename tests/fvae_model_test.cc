#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/random.h"
#include "core/fvae_model.h"
#include "core/trainer.h"
#include "datagen/profile_generator.h"

namespace fvae::core {
namespace {

/// Tiny two-field dataset with a deterministic structure: users of group A
/// have ch feature 1 and tag 100; group B has ch 2 and tag 200.
MultiFieldDataset GroupedFixture(size_t users_per_group) {
  MultiFieldDataset::Builder builder(
      {FieldSchema{"ch", false}, FieldSchema{"tag", true}});
  for (size_t i = 0; i < users_per_group; ++i) {
    builder.AddUser({{{1, 1.0f}}, {{100, 1.0f}}});
    builder.AddUser({{{2, 1.0f}}, {{200, 1.0f}}});
  }
  return builder.Build();
}

FvaeConfig SmallConfig() {
  FvaeConfig config;
  config.latent_dim = 8;
  config.encoder_hidden = {16};
  config.decoder_hidden = {16};
  config.beta = 0.1f;
  config.anneal_steps = 50;
  config.sampling_strategy = SamplingStrategy::kNone;
  config.seed = 7;
  return config;
}

TEST(FieldVaeTest, ConstructionExposesShape) {
  FieldVae model(SmallConfig(), {{"a", false}, {"b", true}});
  EXPECT_EQ(model.num_fields(), 2u);
  EXPECT_EQ(model.latent_dim(), 8u);
  EXPECT_EQ(model.KnownFeatures(0), 0u);
  EXPECT_GT(model.ParameterCount(), 0u);
}

TEST(FieldVaeTest, TrainStepReturnsFiniteStats) {
  const MultiFieldDataset data = GroupedFixture(16);
  FieldVae model(SmallConfig(), data.fields());
  std::vector<uint32_t> batch(8);
  std::iota(batch.begin(), batch.end(), 0u);
  const StepStats stats = model.TrainStep(data, batch, 0.1f);
  ASSERT_EQ(stats.field_nll.size(), 2u);
  EXPECT_TRUE(std::isfinite(stats.loss));
  EXPECT_TRUE(std::isfinite(stats.kl));
  EXPECT_GE(stats.kl, -1e-4);
  for (double nll : stats.field_nll) {
    EXPECT_TRUE(std::isfinite(nll));
    EXPECT_GE(nll, 0.0);
  }
  // Both candidates sets cover this tiny fixture's vocab.
  EXPECT_EQ(stats.candidates_per_field[0], 2u);
  EXPECT_EQ(stats.candidates_per_field[1], 2u);
}

TEST(FieldVaeTest, TrainingGrowsVocabularies) {
  const MultiFieldDataset data = GroupedFixture(4);
  FieldVae model(SmallConfig(), data.fields());
  std::vector<uint32_t> batch(data.num_users());
  std::iota(batch.begin(), batch.end(), 0u);
  model.TrainStep(data, batch, 0.0f);
  EXPECT_EQ(model.KnownFeatures(0), 2u);
  EXPECT_EQ(model.KnownFeatures(1), 2u);
}

TEST(FieldVaeTest, LossDecreasesWithTraining) {
  const MultiFieldDataset data = GroupedFixture(32);
  FieldVae model(SmallConfig(), data.fields());
  std::vector<uint32_t> batch(data.num_users());
  std::iota(batch.begin(), batch.end(), 0u);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 60; ++step) {
    const StepStats stats = model.TrainStep(data, batch, 0.0f);
    if (step == 0) first = stats.loss;
    last = stats.loss;
  }
  EXPECT_LT(last, first * 0.8) << "training did not reduce the loss";
}

TEST(FieldVaeTest, EncodeFoldInMatchesDatasetEncode) {
  const MultiFieldDataset data = GroupedFixture(8);
  FieldVae model(SmallConfig(), data.fields());
  std::vector<uint32_t> batch(data.num_users());
  std::iota(batch.begin(), batch.end(), 0u);
  model.TrainStep(data, batch, 0.1f);

  // Encoding the same sparse field vectors through the fold-in entry point
  // must reproduce the dataset path bit for bit (same inference code).
  const std::vector<uint32_t> users{0, 1};
  const Matrix via_dataset = model.Encode(data, users);
  const RawUserFeatures raw_a{{{1, 1.0f}}, {{100, 1.0f}}};   // user 0
  const RawUserFeatures raw_b{{{2, 1.0f}}, {{200, 1.0f}}};   // user 1
  const std::vector<const RawUserFeatures*> raw{&raw_a, &raw_b};
  const Matrix via_foldin = model.EncodeFoldIn(raw);
  ASSERT_EQ(via_foldin.rows(), 2u);
  ASSERT_EQ(via_foldin.cols(), model.latent_dim());
  for (size_t i = 0; i < via_dataset.rows(); ++i) {
    for (size_t d = 0; d < via_dataset.cols(); ++d) {
      EXPECT_EQ(via_dataset.at(i, d), via_foldin.at(i, d));
    }
  }

  // Unknown feature IDs are skipped, matching cold-start Encode behaviour.
  const RawUserFeatures unknown{{{777, 1.0f}}, {{888, 1.0f}}};
  const std::vector<const RawUserFeatures*> cold{&unknown};
  const Matrix cold_mu = model.EncodeFoldIn(cold);
  for (size_t d = 0; d < cold_mu.cols(); ++d) {
    EXPECT_TRUE(std::isfinite(cold_mu.at(0, d)));
  }
}

TEST(FieldVaeTest, EncodeIsDeterministicAndMeanBased) {
  const MultiFieldDataset data = GroupedFixture(8);
  FieldVae model(SmallConfig(), data.fields());
  std::vector<uint32_t> batch(data.num_users());
  std::iota(batch.begin(), batch.end(), 0u);
  model.TrainStep(data, batch, 0.1f);

  const std::vector<uint32_t> users{0, 1, 2};
  const Matrix z1 = model.Encode(data, users);
  const Matrix z2 = model.Encode(data, users);
  EXPECT_EQ(z1.rows(), 3u);
  EXPECT_EQ(z1.cols(), 8u);
  EXPECT_LT(Matrix::MaxAbsDiff(z1, z2), 1e-9f);
}

TEST(FieldVaeTest, EncodeWithVarianceClampsLogvar) {
  const MultiFieldDataset data = GroupedFixture(4);
  FieldVae model(SmallConfig(), data.fields());
  Matrix mu, logvar;
  const std::vector<uint32_t> users{0, 1};
  model.EncodeWithVariance(data, users, &mu, &logvar);
  for (size_t i = 0; i < logvar.size(); ++i) {
    EXPECT_LE(logvar.data()[i], 10.0f);
    EXPECT_GE(logvar.data()[i], -10.0f);
  }
}

TEST(FieldVaeTest, ColdFeaturesAreSkippedAtInference) {
  const MultiFieldDataset data = GroupedFixture(4);
  FieldVae model(SmallConfig(), data.fields());
  std::vector<uint32_t> all(data.num_users());
  std::iota(all.begin(), all.end(), 0u);
  model.TrainStep(data, all, 0.0f);

  // A dataset with one known and one never-seen feature.
  MultiFieldDataset::Builder builder(data.fields());
  builder.AddUser({{{1, 1.0f}, {999, 1.0f}}, {}});
  builder.AddUser({{{1, 1.0f}}, {}});
  const MultiFieldDataset probe = builder.Build();
  const std::vector<uint32_t> users{0, 1};
  const Matrix z = model.Encode(probe, users);
  // Unknown feature contributes nothing: both users encode identically.
  for (size_t d = 0; d < z.cols(); ++d) {
    EXPECT_FLOAT_EQ(z(0, d), z(1, d));
  }
  // And the unknown ID was NOT added to the vocabulary.
  EXPECT_EQ(model.KnownFeatures(0), 2u);
}

TEST(FieldVaeTest, ScoreFieldShapesAndUnknownCandidates) {
  const MultiFieldDataset data = GroupedFixture(8);
  FieldVae model(SmallConfig(), data.fields());
  std::vector<uint32_t> all(data.num_users());
  std::iota(all.begin(), all.end(), 0u);
  model.TrainStep(data, all, 0.0f);

  const Matrix z = model.Encode(data, std::vector<uint32_t>{0, 1});
  const std::vector<uint64_t> candidates{100, 200, 555555};
  const Matrix scores = model.ScoreField(z, 1, candidates);
  EXPECT_EQ(scores.rows(), 2u);
  EXPECT_EQ(scores.cols(), 3u);
  // Unknown candidate scores exactly zero.
  EXPECT_EQ(scores(0, 2), 0.0f);
  EXPECT_EQ(scores(1, 2), 0.0f);
}

TEST(FieldVaeTest, LearnsGroupStructure) {
  // After training, a group-A user must score tag 100 above tag 200.
  const MultiFieldDataset data = GroupedFixture(64);
  FvaeConfig config = SmallConfig();
  FieldVae model(config, data.fields());
  std::vector<uint32_t> all(data.num_users());
  std::iota(all.begin(), all.end(), 0u);
  Rng rng(3);
  for (int step = 0; step < 120; ++step) {
    rng.Shuffle(all);
    std::vector<uint32_t> batch(all.begin(), all.begin() + 32);
    model.TrainStep(data, batch, 0.05f);
  }
  // Fold-in: users identified by channel only.
  MultiFieldDataset::Builder builder(data.fields());
  builder.AddUser({{{1, 1.0f}}, {}});  // group A
  builder.AddUser({{{2, 1.0f}}, {}});  // group B
  const MultiFieldDataset probe = builder.Build();
  const Matrix scores = model.EncodeAndScore(
      probe, std::vector<uint32_t>{0, 1}, 1,
      std::vector<uint64_t>{100, 200});
  EXPECT_GT(scores(0, 0), scores(0, 1)) << "group A prefers tag 100";
  EXPECT_GT(scores(1, 1), scores(1, 0)) << "group B prefers tag 200";
}

TEST(FieldVaeTest, DecoderHiddenShapeAndDeterminism) {
  const MultiFieldDataset data = GroupedFixture(8);
  FieldVae model(SmallConfig(), data.fields());
  std::vector<uint32_t> all(data.num_users());
  std::iota(all.begin(), all.end(), 0u);
  model.TrainStep(data, all, 0.0f);
  const Matrix z = model.Encode(data, std::vector<uint32_t>{0, 1, 2});
  const Matrix h1 = model.DecoderHidden(z);
  const Matrix h2 = model.DecoderHidden(z);
  EXPECT_EQ(h1.rows(), 3u);
  EXPECT_EQ(h1.cols(), 16u);  // decoder_hidden.back()
  EXPECT_LT(Matrix::MaxAbsDiff(h1, h2), 1e-9f);
  // tanh-bounded trunk output.
  for (size_t i = 0; i < h1.size(); ++i) {
    EXPECT_LE(std::fabs(h1.data()[i]), 1.0f);
  }
}

TEST(FieldVaeTest, AlphaWeightsMustMatchFieldCount) {
  FvaeConfig config = SmallConfig();
  config.alpha = {1.0f, 2.0f};  // matches two fields
  const MultiFieldDataset data = GroupedFixture(4);
  FieldVae model(config, data.fields());
  std::vector<uint32_t> batch{0, 1};
  const StepStats stats = model.TrainStep(data, batch, 0.0f);
  EXPECT_TRUE(std::isfinite(stats.loss));
}

TEST(FieldVaeTest, SamplingReducesCandidateSets) {
  // Build a dataset with a wide sparse tag field.
  ProfileGeneratorConfig gen_config = ShortContentConfig(200, /*seed=*/5);
  const GeneratedProfiles gen = GenerateProfiles(gen_config);

  FvaeConfig config = SmallConfig();
  config.sampling_strategy = SamplingStrategy::kUniform;
  config.sampling_rate = 0.1;
  FieldVae sampled(config, gen.dataset.fields());

  FvaeConfig full_config = SmallConfig();
  full_config.sampling_strategy = SamplingStrategy::kNone;
  FieldVae full(full_config, gen.dataset.fields());

  std::vector<uint32_t> batch(128);
  std::iota(batch.begin(), batch.end(), 0u);
  const StepStats s1 = sampled.TrainStep(gen.dataset, batch, 0.0f);
  const StepStats s2 = full.TrainStep(gen.dataset, batch, 0.0f);
  // The tag field (index 3, sparse) must be subsampled to ~10%.
  EXPECT_LT(s1.candidates_per_field[3],
            s2.candidates_per_field[3] / 5);
  // Non-sparse fields are untouched by sampling.
  EXPECT_EQ(s1.candidates_per_field[0], s2.candidates_per_field[0]);
}

TEST(FieldVaeTest, FullSoftmaxScoresEveryKnownFeature) {
  FvaeConfig config = SmallConfig();
  config.batched_softmax = false;
  const MultiFieldDataset data = GroupedFixture(8);
  FieldVae model(config, data.fields());
  std::vector<uint32_t> first_batch{0, 1};   // sees ch 1/2? user0=A,user1=B
  model.TrainStep(data, first_batch, 0.0f);
  // Second step with a batch covering the same users: candidate set must be
  // the full known vocabulary (2 per field), not just the batch union.
  std::vector<uint32_t> tiny_batch{0};  // group A only
  const StepStats stats = model.TrainStep(data, tiny_batch, 0.0f);
  EXPECT_EQ(stats.candidates_per_field[0], 2u);
  EXPECT_EQ(stats.candidates_per_field[1], 2u);
}

TEST(FieldVaeTest, DenseParamsStableAcrossReplicas) {
  const MultiFieldDataset data = GroupedFixture(4);
  FieldVae a(SmallConfig(), data.fields());
  FieldVae b(SmallConfig(), data.fields());
  auto pa = a.DenseParams();
  auto pb = b.DenseParams();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->rows(), pb[i]->rows());
    ASSERT_EQ(pa[i]->cols(), pb[i]->cols());
    // Same seed -> identical dense init.
    EXPECT_LT(Matrix::MaxAbsDiff(*pa[i], *pb[i]), 1e-9f);
  }
}

TEST(FieldVaeTest, DeepEncoderAndDecoderWork) {
  FvaeConfig config = SmallConfig();
  config.encoder_hidden = {16, 12};
  config.decoder_hidden = {12, 16};
  const MultiFieldDataset data = GroupedFixture(8);
  FieldVae model(config, data.fields());
  std::vector<uint32_t> batch(8);
  std::iota(batch.begin(), batch.end(), 0u);
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 40; ++step) {
    const StepStats stats = model.TrainStep(data, batch, 0.0f);
    if (step == 0) first = stats.loss;
    last = stats.loss;
  }
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace fvae::core
