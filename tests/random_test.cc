#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/random.h"

namespace fvae {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.Next64() == b.Next64();
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(uint64_t{17}), 17u);
  }
}

TEST(RngTest, UniformIntOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(uint64_t{1}), 0u);
  }
}

TEST(RngTest, UniformIntIsApproximatelyUniform) {
  Rng rng(99);
  constexpr uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / double(kBuckets), 5 * std::sqrt(kDraws));
  }
}

TEST(RngTest, UniformIntRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-3}, int64_t{4});
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
  }
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  constexpr int kDraws = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 50000; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / 50000.0, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(23);
  for (double shape : {0.5, 1.0, 3.0, 10.0}) {
    double sum = 0.0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i) sum += rng.Gamma(shape);
    EXPECT_NEAR(sum / kDraws, shape, 0.1 * std::max(1.0, shape))
        << "shape " << shape;
  }
}

TEST(RngTest, GammaIsPositive) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.Gamma(0.2), 0.0);
  }
}

TEST(RngTest, PoissonMean) {
  Rng rng(31);
  for (double lambda : {0.5, 4.0, 100.0}) {
    double sum = 0.0;
    constexpr int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) sum += double(rng.Poisson(lambda));
    EXPECT_NEAR(sum / kDraws, lambda, 0.1 * std::max(1.0, lambda))
        << "lambda " << lambda;
  }
}

TEST(RngTest, PoissonZeroRate) {
  Rng rng(37);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(41);
  const std::vector<double> alpha{0.5, 1.0, 2.0};
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> draw = rng.Dirichlet(alpha);
    ASSERT_EQ(draw.size(), 3u);
    double total = 0.0;
    for (double v : draw) {
      EXPECT_GE(v, 0.0);
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(RngTest, DirichletMeanProportionalToAlpha) {
  Rng rng(43);
  const std::vector<double> alpha{1.0, 3.0};
  double sum0 = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) sum0 += rng.Dirichlet(alpha)[0];
  EXPECT_NEAR(sum0 / kDraws, 0.25, 0.01);
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(47);
  for (int trial = 0; trial < 50; ++trial) {
    const auto picks = rng.SampleWithoutReplacement(100, 20);
    ASSERT_EQ(picks.size(), 20u);
    std::set<uint64_t> unique(picks.begin(), picks.end());
    EXPECT_EQ(unique.size(), 20u);
    for (uint64_t p : picks) EXPECT_LT(p, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(53);
  const auto picks = rng.SampleWithoutReplacement(10, 10);
  std::set<uint64_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(59);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RngTest, WorksWithStdDistributions) {
  Rng rng(61);
  // Satisfies UniformRandomBitGenerator.
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

// ---------- AliasSampler ----------

TEST(AliasSamplerTest, MatchesWeights) {
  Rng rng(67);
  AliasSampler sampler({1.0, 2.0, 7.0});
  constexpr int kDraws = 100000;
  std::vector<int> counts(3, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  EXPECT_NEAR(counts[0] / double(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / double(kDraws), 0.2, 0.01);
  EXPECT_NEAR(counts[2] / double(kDraws), 0.7, 0.01);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  Rng rng(71);
  AliasSampler sampler({0.0, 1.0, 0.0, 1.0});
  for (int i = 0; i < 10000; ++i) {
    const size_t s = sampler.Sample(rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasSamplerTest, SingleElement) {
  Rng rng(73);
  AliasSampler sampler({5.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 0u);
}

TEST(AliasSamplerTest, UniformWeights) {
  Rng rng(79);
  AliasSampler sampler(std::vector<double>(8, 1.0));
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, kDraws / 8.0, 400.0);
}

}  // namespace
}  // namespace fvae
