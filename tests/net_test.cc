#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <semaphore>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "core/fvae_model.h"
#include "math/matrix.h"
#include "net/epoll_loop.h"
#include "net/fd.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "net/shard_router.h"
#include "net/timer_wheel.h"
#include "net/wire.h"
#include "serving/embedding_service.h"
#include "serving/fold_in.h"

namespace fvae::net {
namespace {

using serving::EmbeddingService;
using serving::EmbeddingServiceOptions;
using serving::FoldInEncoder;
using serving::ShardedEmbeddingStore;

/// Deterministic encoder (same contract as serving_test's fake): every
/// output element equals the first feature id of field 0. Optional
/// per-batch sleep forces hedging; the gate makes drain races deterministic.
class FakeEncoder : public FoldInEncoder {
 public:
  explicit FakeEncoder(size_t dim, int sleep_ms = 0)
      : dim_(dim), sleep_ms_(sleep_ms) {}

  Matrix EncodeBatch(
      std::span<const core::RawUserFeatures* const> users) override {
    calls.fetch_add(1);
    users_encoded.fetch_add(users.size());
    if (gated_) {
      entered.store(true);
      gate.acquire();
    }
    if (sleep_ms_ > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    }
    Matrix out(users.size(), dim_);
    for (size_t i = 0; i < users.size(); ++i) {
      const auto& field0 = (*users[i])[0];
      const float value = field0.empty() ? -1.0f : float(field0[0].id);
      for (size_t d = 0; d < dim_; ++d) out(i, d) = value;
    }
    return out;
  }

  size_t dim() const override { return dim_; }

  void EnableGate() { gated_ = true; }

  std::atomic<int> calls{0};
  std::atomic<size_t> users_encoded{0};
  std::atomic<bool> entered{false};
  std::counting_semaphore<1024> gate{0};

 private:
  size_t dim_;
  int sleep_ms_;
  bool gated_ = false;
};

core::RawUserFeatures RawUser(uint64_t feature_id) {
  return {{{feature_id, 1.0f}}};
}

std::string Endpoint(uint16_t port) {
  return "127.0.0.1:" + std::to_string(port);
}

/// One serve stack: store + encoder + service + RPC server on an ephemeral
/// port.
struct TestServer {
  explicit TestServer(size_t dim = 4, RpcServerOptions options = {},
                      EmbeddingServiceOptions service_options = {},
                      int encoder_sleep_ms = 0)
      : encoder(dim, encoder_sleep_ms),
        service(ShardedEmbeddingStore(4), &encoder, service_options),
        server(&service, options) {
    EXPECT_TRUE(server.Start().ok());
  }
  ~TestServer() { server.Stop(); }

  std::string endpoint() { return Endpoint(server.port()); }

  FakeEncoder encoder;
  EmbeddingService service;
  RpcServer server;
};

// ---------- wire format ----------

TEST(WireTest, HeaderLayoutIsStable) {
  static_assert(sizeof(FrameHeader) == 24);
  FrameHeader header;
  EXPECT_EQ(header.magic, kFrameMagic);
  EXPECT_EQ(header.version, kProtocolVersion);
}

TEST(WireTest, LookupRequestRoundTrip) {
  std::vector<uint8_t> payload;
  EncodeLookupRequest(payload, 0xdeadbeefcafe1234ull);
  Result<uint64_t> user = DecodeLookupRequest(payload.data(), payload.size());
  ASSERT_TRUE(user.ok());
  EXPECT_EQ(*user, 0xdeadbeefcafe1234ull);

  // Short and long payloads are both rejected.
  EXPECT_FALSE(DecodeLookupRequest(payload.data(), 7).ok());
  payload.push_back(0);
  EXPECT_FALSE(DecodeLookupRequest(payload.data(), payload.size()).ok());
}

TEST(WireTest, FoldInRequestRoundTrip) {
  core::RawUserFeatures features = {
      {{101, 1.0f}, {202, 0.5f}}, {}, {{303, 2.0f}}};
  std::vector<uint8_t> payload;
  EncodeFoldInRequest(payload, 42, features);
  Result<FoldInRequest> decoded =
      DecodeFoldInRequest(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->user_id, 42u);
  ASSERT_EQ(decoded->features.size(), features.size());
  for (size_t f = 0; f < features.size(); ++f) {
    ASSERT_EQ(decoded->features[f].size(), features[f].size());
    for (size_t i = 0; i < features[f].size(); ++i) {
      EXPECT_EQ(decoded->features[f][i].id, features[f][i].id);
      EXPECT_FLOAT_EQ(decoded->features[f][i].value, features[f][i].value);
    }
  }
}

TEST(WireTest, FoldInRequestRejectsAbsurdCounts) {
  // Claim 2^31 fields with a 12-byte body: must reject before allocating.
  std::vector<uint8_t> payload;
  const uint64_t user = 1;
  const uint32_t fields = 1u << 31;
  payload.resize(sizeof(user) + sizeof(fields));
  std::memcpy(payload.data(), &user, sizeof(user));
  std::memcpy(payload.data() + sizeof(user), &fields, sizeof(fields));
  EXPECT_FALSE(DecodeFoldInRequest(payload.data(), payload.size()).ok());
}

TEST(WireTest, EmbeddingResponseRoundTrip) {
  const std::vector<float> embedding = {1.5f, -2.25f, 0.0f, 7.0f};
  std::vector<uint8_t> payload;
  EncodeEmbeddingResponse(payload, embedding);
  Result<std::vector<float>> decoded =
      DecodeEmbeddingResponse(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, embedding);
}

std::vector<uint8_t> BuildFrame(Verb verb, uint64_t tag,
                                const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> bytes;
  AppendFrame(bytes, verb, WireStatus::kOk, 0, tag, payload.data(),
              payload.size());
  return bytes;
}

TEST(FrameParserTest, ParsesFrameFedBytewise) {
  std::vector<uint8_t> payload;
  EncodeLookupRequest(payload, 77);
  const std::vector<uint8_t> bytes = BuildFrame(Verb::kLookup, 9, payload);

  FrameParser parser;
  for (size_t i = 0; i < bytes.size(); ++i) {
    // Truncated at every offset: incomplete, never an error.
    Result<Frame> frame = parser.Next();
    ASSERT_FALSE(frame.ok());
    ASSERT_EQ(frame.status().code(), StatusCode::kUnavailable)
        << "offset " << i << ": " << frame.status().ToString();
    parser.Feed(&bytes[i], 1);
  }
  Result<Frame> frame = parser.Next();
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->header.tag, 9u);
  EXPECT_EQ(frame->payload, payload);
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(FrameParserTest, RejectsBitFlippedCrc) {
  std::vector<uint8_t> payload;
  EncodeLookupRequest(payload, 77);
  // Flip one bit in each payload byte position in turn; every variant must
  // fail CRC validation.
  for (size_t i = 0; i < payload.size(); ++i) {
    std::vector<uint8_t> bytes = BuildFrame(Verb::kLookup, 1, payload);
    bytes[kHeaderBytes + i] ^= 0x10;
    FrameParser parser;
    parser.Feed(bytes.data(), bytes.size());
    Result<Frame> frame = parser.Next();
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kIoError) << "byte " << i;
  }
}

TEST(FrameParserTest, RejectsBadMagicAndVersion) {
  std::vector<uint8_t> bytes = BuildFrame(Verb::kHealth, 1, {});
  bytes[0] ^= 0xff;  // magic
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  EXPECT_EQ(parser.Next().status().code(), StatusCode::kInvalidArgument);

  bytes = BuildFrame(Verb::kHealth, 1, {});
  bytes[4] = 99;  // version
  FrameParser parser2;
  parser2.Feed(bytes.data(), bytes.size());
  EXPECT_EQ(parser2.Next().status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameParserTest, RejectsOversizedLengthPrefix) {
  std::vector<uint8_t> bytes = BuildFrame(Verb::kHealth, 1, {});
  const uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(bytes.data() + 16, &huge, sizeof(huge));  // length field
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  // Rejected from the header alone — no waiting for 16 MiB that will never
  // arrive, no allocation.
  EXPECT_EQ(parser.Next().status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameParserTest, ParsesPipelinedFrames) {
  std::vector<uint8_t> stream;
  for (uint64_t tag = 1; tag <= 5; ++tag) {
    std::vector<uint8_t> payload;
    EncodeLookupRequest(payload, tag * 100);
    AppendFrame(stream, Verb::kLookup, WireStatus::kOk, 0, tag,
                payload.data(), payload.size());
  }
  FrameParser parser;
  parser.Feed(stream.data(), stream.size());
  for (uint64_t tag = 1; tag <= 5; ++tag) {
    Result<Frame> frame = parser.Next();
    ASSERT_TRUE(frame.ok());
    EXPECT_EQ(frame->header.tag, tag);
  }
  EXPECT_EQ(parser.Next().status().code(), StatusCode::kUnavailable);
}

// ---------- trace-context compatibility ----------

std::vector<uint8_t> BuildTracedFrame(Verb verb, uint64_t tag,
                                      const std::vector<uint8_t>& payload,
                                      const obs::TraceContext& trace) {
  std::vector<uint8_t> bytes;
  AppendFrame(bytes, verb, WireStatus::kOk, 0, tag, payload.data(),
              payload.size(), kProtocolVersion, &trace);
  return bytes;
}

TEST(TraceContextTest, PrefixRoundTripsAndStripsClean) {
  std::vector<uint8_t> payload;
  EncodeLookupRequest(payload, 77);
  const obs::TraceContext trace{0xdeadbeefcafe1234ull, 0x42ull};
  const std::vector<uint8_t> bytes =
      BuildTracedFrame(Verb::kLookup, 9, payload, trace);

  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  Result<Frame> frame = parser.Next();
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->header.flags & kFlagTraceContext, kFlagTraceContext);
  EXPECT_EQ(frame->payload.size(), payload.size() + kTraceContextBytes);

  Result<obs::TraceContext> extracted = ExtractTraceContext(&*frame);
  ASSERT_TRUE(extracted.ok());
  EXPECT_EQ(extracted->trace_id, trace.trace_id);
  EXPECT_EQ(extracted->span_id, trace.span_id);
  // The prefix is gone, the flag is cleared, and the body is byte-identical
  // to what the sender encoded.
  EXPECT_EQ(frame->payload, payload);
  EXPECT_EQ(frame->header.flags & kFlagTraceContext, 0);
}

TEST(TraceContextTest, V1FramesNeverCarryThePrefix) {
  // A v2 sender talking to a v1 peer downgrades: the trace pointer is
  // ignored, the frame is a plain v1 frame an old parser accepts.
  std::vector<uint8_t> payload;
  EncodeLookupRequest(payload, 77);
  const obs::TraceContext trace{123, 456};
  std::vector<uint8_t> bytes;
  AppendFrame(bytes, Verb::kLookup, WireStatus::kOk, 0, 5, payload.data(),
              payload.size(), /*version=*/1, &trace);

  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  Result<Frame> frame = parser.Next();
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->header.version, 1);
  EXPECT_EQ(frame->header.flags & kFlagTraceContext, 0);
  EXPECT_EQ(frame->payload, payload);

  // Extraction on an unflagged frame is the identity: {0,0}, untouched.
  Result<obs::TraceContext> extracted = ExtractTraceContext(&*frame);
  ASSERT_TRUE(extracted.ok());
  EXPECT_FALSE(extracted->valid());
  EXPECT_EQ(frame->payload, payload);
}

TEST(TraceContextTest, TraceFlagOnV1FrameIsRejected) {
  // The header CRC covers payload bytes only, so flipping the version byte
  // down to 1 leaves an otherwise-valid frame whose flags claim a prefix
  // v1 cannot have — ValidateHeader must kill it.
  std::vector<uint8_t> payload;
  EncodeLookupRequest(payload, 77);
  std::vector<uint8_t> bytes =
      BuildTracedFrame(Verb::kLookup, 9, payload, {1, 2});
  bytes[4] = 1;  // version byte
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  EXPECT_EQ(parser.Next().status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceContextTest, FlaggedFrameTooShortForPrefixIsRejected) {
  // Set the trace bit on a frame whose payload cannot hold the 16-byte
  // prefix. flags live at header offset 7 and are outside the CRC region.
  std::vector<uint8_t> bytes = BuildFrame(Verb::kHealth, 1, {});
  bytes[7] |= kFlagTraceContext;
  FrameParser parser;
  parser.Feed(bytes.data(), bytes.size());
  EXPECT_EQ(parser.Next().status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceContextTest, TracedFrameParsesFedBytewise) {
  std::vector<uint8_t> payload;
  EncodeLookupRequest(payload, 42);
  const std::vector<uint8_t> bytes =
      BuildTracedFrame(Verb::kLookup, 3, payload, {7, 8});

  FrameParser parser;
  for (size_t i = 0; i < bytes.size(); ++i) {
    // Truncation at every offset of the extended frame — header, prefix,
    // body — is incomplete, never an error.
    Result<Frame> frame = parser.Next();
    ASSERT_FALSE(frame.ok());
    ASSERT_EQ(frame.status().code(), StatusCode::kUnavailable)
        << "offset " << i << ": " << frame.status().ToString();
    parser.Feed(&bytes[i], 1);
  }
  Result<Frame> frame = parser.Next();
  ASSERT_TRUE(frame.ok());
  Result<obs::TraceContext> extracted = ExtractTraceContext(&*frame);
  ASSERT_TRUE(extracted.ok());
  EXPECT_EQ(extracted->trace_id, 7u);
  EXPECT_EQ(extracted->span_id, 8u);
}

TEST(TraceContextTest, BitFlippedTraceBytesFailCrc) {
  // The CRC covers the trace prefix: corruption in any of its 16 bytes is
  // caught before the context can mis-stitch two unrelated traces.
  std::vector<uint8_t> payload;
  EncodeLookupRequest(payload, 77);
  for (size_t i = 0; i < kTraceContextBytes; ++i) {
    std::vector<uint8_t> bytes =
        BuildTracedFrame(Verb::kLookup, 1, payload, {0xabcd, 0xef01});
    bytes[kHeaderBytes + i] ^= 0x10;
    FrameParser parser;
    parser.Feed(bytes.data(), bytes.size());
    Result<Frame> frame = parser.Next();
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kIoError)
        << "prefix byte " << i;
  }
}

TEST(TraceContextTest, IntrospectRequestRoundTrip) {
  for (IntrospectFormat format :
       {IntrospectFormat::kJson, IntrospectFormat::kPrometheus}) {
    std::vector<uint8_t> payload;
    EncodeIntrospectRequest(payload, format);
    Result<IntrospectFormat> decoded =
        DecodeIntrospectRequest(payload.data(), payload.size());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, format);
  }
  EXPECT_FALSE(DecodeIntrospectRequest(nullptr, 0).ok());
}

// ---------- timer wheel ----------

TEST(TimerWheelTest, FiresInOrderAndHonorsCancel) {
  TimerWheel wheel(/*tick_micros=*/1000, /*num_slots=*/8);
  std::vector<int> fired;
  wheel.Schedule(0, 3000, [&] { fired.push_back(3); });
  const auto cancel_me = wheel.Schedule(0, 5000, [&] { fired.push_back(5); });
  wheel.Schedule(0, 9000, [&] { fired.push_back(9); });  // > one rotation
  EXPECT_EQ(wheel.pending(), 3u);

  wheel.Cancel(cancel_me);
  EXPECT_EQ(wheel.pending(), 2u);

  wheel.Advance(4000);
  EXPECT_EQ(fired, std::vector<int>({3}));
  wheel.Advance(8000);
  EXPECT_EQ(fired, std::vector<int>({3}));  // 9 ms timer not due yet
  wheel.Advance(10000);
  EXPECT_EQ(fired, std::vector<int>({3, 9}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, CallbackMayReschedule) {
  TimerWheel wheel(1000, 8);
  int count = 0;
  std::function<void()> rearm = [&] {
    ++count;
    if (count < 3) wheel.Schedule(count * 2000, 2000, rearm);
  };
  wheel.Schedule(0, 2000, rearm);
  for (int64_t t = 1000; t <= 10000; t += 1000) wheel.Advance(t);
  EXPECT_EQ(count, 3);
}

// ---------- fd helpers ----------

TEST(FdTest, MoveSemanticsAndRelease) {
  Result<Fd> listener = TcpListen(0);
  ASSERT_TRUE(listener.ok());
  const int raw = listener->get();
  Fd moved = std::move(*listener);
  EXPECT_EQ(moved.get(), raw);
  EXPECT_FALSE(listener->valid());  // NOLINT(bugprone-use-after-move)
  const int released = moved.Release();
  EXPECT_EQ(released, raw);
  EXPECT_FALSE(moved.valid());
  Fd adopted(released);  // Re-own so the descriptor still closes.
}

TEST(FdTest, EndpointParsing) {
  ASSERT_TRUE(EndpointPort("127.0.0.1:8080").ok());
  EXPECT_EQ(*EndpointPort("127.0.0.1:8080"), 8080);
  EXPECT_FALSE(EndpointPort("10.0.0.1:8080").ok());
  EXPECT_FALSE(EndpointPort("127.0.0.1").ok());
  EXPECT_FALSE(EndpointPort("127.0.0.1:notaport").ok());
  EXPECT_FALSE(EndpointPort("127.0.0.1:99999").ok());
}

TEST(FdTest, ConnectToClosedPortFails) {
  // Grab an ephemeral port, close the listener, then dial it.
  uint16_t port = 0;
  {
    Result<Fd> listener = TcpListen(0);
    ASSERT_TRUE(listener.ok());
    Result<uint16_t> local = LocalPort(listener->get());
    ASSERT_TRUE(local.ok());
    port = *local;
  }
  EXPECT_FALSE(TcpConnect(port, 200).ok());
}

// ---------- epoll loop ----------

TEST(EpollLoopTest, PostRunsTasksOnLoopThread) {
  EpollLoop loop;
  ASSERT_TRUE(loop.Init().ok());
  std::atomic<int> ran{0};
  std::atomic<bool> in_loop_thread{false};
  std::thread runner([&] { loop.Run(); });
  loop.Post([&] {
    in_loop_thread.store(loop.InLoopThread());
    ran.fetch_add(1);
  });
  for (int i = 0; i < 500 && ran.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  loop.Stop();
  runner.join();
  EXPECT_EQ(ran.load(), 1);
  EXPECT_TRUE(in_loop_thread.load());
}

TEST(EpollLoopTest, TimerFires) {
  EpollLoop loop;
  ASSERT_TRUE(loop.Init().ok());
  std::atomic<bool> fired{false};
  std::thread runner([&] { loop.Run(); });
  loop.Post([&] {
    loop.ScheduleTimer(20'000, [&] { fired.store(true); });
  });
  for (int i = 0; i < 1000 && !fired.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  loop.Stop();
  runner.join();
  EXPECT_TRUE(fired.load());
}

// ---------- RPC server end-to-end ----------

TEST(RpcServerTest, HealthLookupFoldInStats) {
  TestServer ts(/*dim=*/4);

  Result<std::unique_ptr<RpcChannel>> channel =
      RpcChannel::Connect(ts.endpoint());
  ASSERT_TRUE(channel.ok());
  RpcChannel& rpc = **channel;

  EXPECT_TRUE(rpc.Health().ok());

  // Cold user: fold-in encodes and materializes.
  Result<std::vector<float>> encoded = rpc.EncodeFoldIn(7, RawUser(123));
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  ASSERT_EQ(encoded->size(), 4u);
  EXPECT_FLOAT_EQ((*encoded)[0], 123.0f);

  // Now hot: lookup serves from the store.
  Result<std::vector<float>> looked_up = rpc.Lookup(7);
  ASSERT_TRUE(looked_up.ok());
  EXPECT_EQ(*looked_up, *encoded);

  // Unknown user: wire-level NotFound maps back to a Status.
  Result<std::vector<float>> missing = rpc.Lookup(999);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  Result<std::string> stats = rpc.Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"serving\""), std::string::npos);
  EXPECT_NE(stats->find("\"frames_rx\""), std::string::npos);

  EXPECT_GE(ts.server.metrics().frames_rx.Value(), 5u);
  EXPECT_GE(ts.server.metrics().frames_tx.Value(), 5u);
  // The server records latency just after queueing a response, so the last
  // sample can land a beat after the client read the reply.
  for (int i = 0;
       i < 1000 && ts.server.metrics().request_latency_us().Count() < 5u;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(ts.server.metrics().request_latency_us().Count(), 5u);
}

TEST(RpcServerTest, MalformedBytesCloseConnection) {
  TestServer ts;
  for (int variant = 0; variant < 3; ++variant) {
    Result<Fd> conn = TcpConnect(ts.server.port());
    ASSERT_TRUE(conn.ok());
    std::vector<uint8_t> bytes = BuildFrame(Verb::kHealth, 1, {});
    switch (variant) {
      case 0:
        bytes[0] ^= 0xff;  // bad magic
        break;
      case 1: {
        const uint32_t huge = kMaxPayloadBytes + 1;  // hostile length
        std::memcpy(bytes.data() + 16, &huge, sizeof(huge));
        break;
      }
      case 2: {
        // CRC flip needs a non-empty payload.
        std::vector<uint8_t> payload;
        EncodeLookupRequest(payload, 1);
        bytes = BuildFrame(Verb::kLookup, 1, payload);
        bytes[kHeaderBytes] ^= 0x01;
        break;
      }
    }
    ASSERT_TRUE(SendAll(conn->get(), bytes.data(), bytes.size()).ok());
    // Server must close on us (recv sees EOF) rather than answer.
    const Status readable =
        WaitReadable(conn->get(), MonotonicMicros() + 2'000'000);
    ASSERT_TRUE(readable.ok()) << "server did not react to garbage";
    char buffer[64];
    EXPECT_EQ(::recv(conn->get(), buffer, sizeof(buffer), 0), 0)
        << "expected EOF, got data (variant " << variant << ")";
  }
  EXPECT_GE(ts.server.metrics().protocol_errors.Value(), 3u);
  // No leaked connections: the open-connection gauge returns to zero.
  for (int i = 0; i < 2000 && ts.server.metrics().open_connections() != 0.0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(ts.server.metrics().open_connections(), 0.0);
  EXPECT_EQ(ts.server.metrics().connections_accepted.Value(),
            ts.server.metrics().connections_closed.Value());
}

TEST(RpcServerTest, SlowLorisIsKicked) {
  RpcServerOptions options;
  options.frame_assembly_timeout_micros = 150'000;
  TestServer ts(4, options);

  Result<Fd> conn = TcpConnect(ts.server.port());
  ASSERT_TRUE(conn.ok());
  const std::vector<uint8_t> bytes = BuildFrame(Verb::kHealth, 1, {});
  // Dribble one byte per poll interval; each byte arrives "fresh", but the
  // frame never completes — the assembly clock must kick the connection
  // anyway.
  Status send_status = Status::Ok();
  for (size_t i = 0; i < bytes.size() - 1 && send_status.ok(); ++i) {
    send_status = SendAll(conn->get(), &bytes[i], 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  // Either the dribble already hit a closed socket, or the next read sees
  // EOF within the watchdog budget.
  if (send_status.ok()) {
    const Status readable =
        WaitReadable(conn->get(), MonotonicMicros() + 2'000'000);
    ASSERT_TRUE(readable.ok()) << "slow-loris connection never kicked";
    char buffer[16];
    EXPECT_EQ(::recv(conn->get(), buffer, sizeof(buffer), 0), 0);
  }
  EXPECT_GE(ts.server.metrics().idle_timeouts.Value(), 1u);
}

TEST(RpcServerTest, BackpressurePausesReadsAndRecovers) {
  RpcServerOptions options;
  options.write_buffer_high_watermark = 1;  // any pending byte pauses reads
  TestServer ts(/*dim=*/4096, options);

  // Materialize one hot user with a fat embedding (~16 KiB per response).
  Result<std::unique_ptr<RpcChannel>> warm =
      RpcChannel::Connect(ts.endpoint());
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE((*warm)->EncodeFoldIn(1, RawUser(5)).ok());

  Result<std::unique_ptr<RpcChannel>> channel =
      RpcChannel::Connect(ts.endpoint());
  ASSERT_TRUE(channel.ok());
  RpcChannel& rpc = **channel;

  // Pipeline a few thousand lookups without reading a single response:
  // ~64 MiB of responses exceed even generously auto-tuned kernel socket
  // buffers (tcp_rmem max is 32 MiB on some hosts), so the server's write
  // queue grows past the watermark and its read side must pause.
  constexpr int kRequests = 4000;
  std::vector<uint8_t> payload;
  EncodeLookupRequest(payload, 1);
  std::vector<uint64_t> tags;
  tags.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    Result<uint64_t> tag = rpc.SendRequest(Verb::kLookup, payload);
    ASSERT_TRUE(tag.ok()) << "request " << i;
    tags.push_back(*tag);
  }
  // Now drain: every response must arrive, in order, intact.
  for (int i = 0; i < kRequests; ++i) {
    Result<Frame> frame =
        rpc.ReadResponse(tags[i], MonotonicMicros() + 10'000'000);
    ASSERT_TRUE(frame.ok()) << "response " << i << ": "
                            << frame.status().ToString();
    Result<std::vector<float>> embedding =
        DecodeEmbeddingResponse(frame->payload.data(), frame->payload.size());
    ASSERT_TRUE(embedding.ok());
    ASSERT_EQ(embedding->size(), 4096u);
    EXPECT_FLOAT_EQ((*embedding)[0], 5.0f);
  }
  EXPECT_GE(ts.server.metrics().backpressure_pauses.Value(), 1u);
}

TEST(RpcServerTest, GracefulDrainFlushesInflightFoldIn) {
  TestServer ts;
  ts.encoder.EnableGate();

  Result<std::unique_ptr<RpcChannel>> channel =
      RpcChannel::Connect(ts.endpoint());
  ASSERT_TRUE(channel.ok());
  RpcChannel& rpc = **channel;

  std::vector<uint8_t> payload;
  EncodeFoldInRequest(payload, 5, RawUser(55));
  Result<uint64_t> tag = rpc.SendRequest(Verb::kEncodeFoldIn, payload);
  ASSERT_TRUE(tag.ok());
  // Wait until the encoder actually holds the request, so Stop() races a
  // genuinely in-flight fold-in.
  for (int i = 0; i < 2000 && !ts.encoder.entered.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(ts.encoder.entered.load());

  std::thread stopper([&] { ts.server.Stop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ts.encoder.gate.release();  // let the encode finish mid-drain

  Result<Frame> frame = rpc.ReadResponse(*tag, MonotonicMicros() + 5'000'000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  Result<std::vector<float>> embedding =
      DecodeEmbeddingResponse(frame->payload.data(), frame->payload.size());
  ASSERT_TRUE(embedding.ok());
  EXPECT_FLOAT_EQ((*embedding)[0], 55.0f);
  stopper.join();
}

TEST(RpcServerTest, ConcurrentClientsUnderLoad) {
  RpcServerOptions options;
  options.num_workers = 3;
  TestServer ts(/*dim=*/8, options);

  constexpr int kThreads = 8;
  constexpr int kCallsPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Result<std::unique_ptr<RpcChannel>> channel =
          RpcChannel::Connect(ts.endpoint());
      if (!channel.ok()) {
        failures.fetch_add(kCallsPerThread);
        return;
      }
      RpcChannel& rpc = **channel;
      for (int i = 0; i < kCallsPerThread; ++i) {
        const uint64_t user = uint64_t(t) * 1000 + i;
        Result<std::vector<float>> encoded =
            rpc.EncodeFoldIn(user, RawUser(user + 1));
        if (!encoded.ok() || (*encoded)[0] != float(user + 1)) {
          failures.fetch_add(1);
          continue;
        }
        Result<std::vector<float>> looked_up = rpc.Lookup(user);
        if (!looked_up.ok() || *looked_up != *encoded) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(ts.server.metrics().frames_rx.Value(),
            uint64_t(kThreads) * kCallsPerThread * 2);
}

// ---------- shard router ----------

TEST(ShardRouterTest, ConsistentHashingCoversAllShards) {
  // Ring-only properties need no live servers: health checks off, no calls
  // issued.
  ShardRouterOptions options;
  options.enable_health_checks = false;
  ShardRouterClient router(
      {"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"}, options);

  std::vector<int> per_shard(3, 0);
  for (uint64_t user = 0; user < 3000; ++user) {
    const size_t owner = router.OwnerOf(user);
    ASSERT_LT(owner, 3u);
    per_shard[owner]++;
    EXPECT_EQ(router.OwnerOf(user), owner);  // deterministic
    const std::vector<size_t> candidates = router.CandidatesFor(user);
    ASSERT_EQ(candidates.size(), 3u);
    EXPECT_EQ(candidates[0], owner);
    EXPECT_NE(candidates[1], candidates[2]);
  }
  // Virtual nodes keep the split roughly even; allow a generous band.
  for (int count : per_shard) {
    EXPECT_GT(count, 3000 / 3 / 2) << "badly skewed ring";
  }
}

TEST(ShardRouterTest, RoutedFoldInAndLookup) {
  TestServer a(4), b(4), c(4);
  ShardRouterOptions options;
  options.enable_health_checks = false;
  options.enable_hedging = false;
  ShardRouterClient router({a.endpoint(), b.endpoint(), c.endpoint()},
                           options);

  constexpr uint64_t kUsers = 60;
  for (uint64_t user = 0; user < kUsers; ++user) {
    Result<std::vector<float>> encoded =
        router.EncodeFoldIn(user, RawUser(user + 7));
    ASSERT_TRUE(encoded.ok()) << user << ": " << encoded.status().ToString();
    EXPECT_FLOAT_EQ((*encoded)[0], float(user + 7));
  }
  for (uint64_t user = 0; user < kUsers; ++user) {
    Result<std::vector<float>> looked_up = router.Lookup(user);
    ASSERT_TRUE(looked_up.ok()) << user;
    EXPECT_FLOAT_EQ((*looked_up)[0], float(user + 7));
  }
  // Per-shard accounting saw every request exactly once (no hedges, no
  // failovers).
  uint64_t total = 0;
  for (size_t shard = 0; shard < router.num_shards(); ++shard) {
    total += router.metrics().shard_requests(shard).Value();
  }
  EXPECT_EQ(total, kUsers * 2);
  EXPECT_EQ(router.metrics().hedges.Value(), 0u);
  EXPECT_EQ(router.metrics().failovers.Value(), 0u);
  EXPECT_EQ(router.metrics().failures.Value(), 0u);
  EXPECT_EQ(router.metrics().call_latency_us().Count(), kUsers * 2);
}

TEST(ShardRouterTest, FailoverKeepsSurvivingShardKeysAt100Percent) {
  auto a = std::make_unique<TestServer>(4);
  auto b = std::make_unique<TestServer>(4);
  ShardRouterOptions options;
  options.enable_health_checks = false;
  options.enable_hedging = false;
  options.connect_timeout_ms = 200;
  options.breaker_failure_threshold = 2;
  options.breaker_open_micros = 60'000'000;  // hold open for the whole test
  ShardRouterClient router({a->endpoint(), b->endpoint()}, options);

  // Fold users into their owning shards.
  std::vector<uint64_t> on_a, on_b;
  for (uint64_t user = 0; user < 40; ++user) {
    (router.OwnerOf(user) == 0 ? on_a : on_b).push_back(user);
    ASSERT_TRUE(router.EncodeFoldIn(user, RawUser(user + 1)).ok()) << user;
  }
  ASSERT_FALSE(on_a.empty());
  ASSERT_FALSE(on_b.empty());

  // Kill shard 0: connections die and the port stops answering.
  a.reset();

  // Every key owned by the surviving shard keeps succeeding — 100%.
  for (uint64_t user : on_b) {
    Result<std::vector<float>> looked_up = router.Lookup(user);
    ASSERT_TRUE(looked_up.ok())
        << "lost key " << user << " on surviving shard: "
        << looked_up.status().ToString();
    EXPECT_FLOAT_EQ((*looked_up)[0], float(user + 1));
  }
  // Keys owned by the dead shard fail over to the survivor, which answers
  // NotFound (alive, but the embedding lived on the dead shard) — that is
  // successful transport, not a routing failure.
  for (uint64_t user : on_a) {
    Result<std::vector<float>> looked_up = router.Lookup(user);
    ASSERT_FALSE(looked_up.ok()) << user;
    EXPECT_EQ(looked_up.status().code(), StatusCode::kNotFound) << user;
  }
  EXPECT_GE(router.metrics().failovers.Value(), 1u);
  EXPECT_GE(router.metrics().breaker_trips.Value(), 1u);
  EXPECT_TRUE(router.BreakerOpen(0));
  EXPECT_FALSE(router.BreakerOpen(1));
}

TEST(ShardRouterTest, HedgedRetryFiresOnSlowShard) {
  // Both shards stall 60 ms per encode; the router hedges after ~2 ms, so
  // the duplicate send is guaranteed to fire (and either arm may win).
  TestServer a(4, {}, {}, /*encoder_sleep_ms=*/60);
  TestServer b(4, {}, {}, /*encoder_sleep_ms=*/60);

  ShardRouterOptions options;
  options.enable_health_checks = false;
  options.enable_hedging = true;
  options.hedge_min_samples = 0;  // trust the (empty) histogram right away
  options.hedge_min_delay_micros = 2'000;
  options.hedge_max_delay_micros = 2'000;
  options.call_deadline_micros = 5'000'000;
  ShardRouterClient router({a.endpoint(), b.endpoint()}, options);

  Result<std::vector<float>> encoded = router.EncodeFoldIn(1, RawUser(9));
  ASSERT_TRUE(encoded.ok()) << encoded.status().ToString();
  EXPECT_FLOAT_EQ((*encoded)[0], 9.0f);
  EXPECT_GE(router.metrics().hedges.Value(), 1u);
}

TEST(ShardRouterTest, HealthProbesCloseBreaker) {
  TestServer a(4);
  ShardRouterOptions options;
  options.enable_health_checks = true;
  options.health_period_micros = 20'000;
  options.enable_hedging = false;
  ShardRouterClient router({a.endpoint()}, options);
  for (int i = 0; i < 2000 && router.metrics().health_probes.Value() < 3;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(router.metrics().health_probes.Value(), 3u);
  EXPECT_EQ(router.metrics().health_failures.Value(), 0u);
  EXPECT_FALSE(router.BreakerOpen(0));
}

// ---------- channel pool ----------

TEST(ChannelPoolTest, ReusesReleasedChannels) {
  TestServer ts;
  ChannelPool pool(ts.endpoint());
  Result<std::unique_ptr<RpcChannel>> first = pool.Acquire();
  ASSERT_TRUE(first.ok());
  RpcChannel* raw = first->get();
  ASSERT_TRUE((*first)->Health().ok());
  pool.Release(std::move(*first));
  EXPECT_EQ(pool.idle(), 1u);
  Result<std::unique_ptr<RpcChannel>> second = pool.Acquire();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->get(), raw);  // the same channel came back
  EXPECT_EQ(pool.idle(), 0u);
}

}  // namespace
}  // namespace fvae::net
