# Empty dependencies file for fig7_alpha_sweep.
# This may be replaced when dependencies are built.
