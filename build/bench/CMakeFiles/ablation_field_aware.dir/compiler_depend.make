# Empty compiler generated dependencies file for ablation_field_aware.
# This may be replaced when dependencies are built.
