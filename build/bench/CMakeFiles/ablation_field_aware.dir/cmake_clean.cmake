file(REMOVE_RECURSE
  "CMakeFiles/ablation_field_aware.dir/ablation_field_aware.cc.o"
  "CMakeFiles/ablation_field_aware.dir/ablation_field_aware.cc.o.d"
  "ablation_field_aware"
  "ablation_field_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_field_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
