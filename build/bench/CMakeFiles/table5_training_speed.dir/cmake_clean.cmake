file(REMOVE_RECURSE
  "CMakeFiles/table5_training_speed.dir/table5_training_speed.cc.o"
  "CMakeFiles/table5_training_speed.dir/table5_training_speed.cc.o.d"
  "table5_training_speed"
  "table5_training_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_training_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
