# Empty dependencies file for fig8_beta_sweep.
# This may be replaced when dependencies are built.
