# Empty compiler generated dependencies file for table4_billion_scale.
# This may be replaced when dependencies are built.
