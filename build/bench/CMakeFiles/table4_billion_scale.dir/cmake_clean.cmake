file(REMOVE_RECURSE
  "CMakeFiles/table4_billion_scale.dir/table4_billion_scale.cc.o"
  "CMakeFiles/table4_billion_scale.dir/table4_billion_scale.cc.o.d"
  "table4_billion_scale"
  "table4_billion_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_billion_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
