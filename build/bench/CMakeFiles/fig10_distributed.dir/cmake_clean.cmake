file(REMOVE_RECURSE
  "CMakeFiles/fig10_distributed.dir/fig10_distributed.cc.o"
  "CMakeFiles/fig10_distributed.dir/fig10_distributed.cc.o.d"
  "fig10_distributed"
  "fig10_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
