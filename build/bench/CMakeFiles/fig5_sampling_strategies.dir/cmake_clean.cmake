file(REMOVE_RECURSE
  "CMakeFiles/fig5_sampling_strategies.dir/fig5_sampling_strategies.cc.o"
  "CMakeFiles/fig5_sampling_strategies.dir/fig5_sampling_strategies.cc.o.d"
  "fig5_sampling_strategies"
  "fig5_sampling_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_sampling_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
