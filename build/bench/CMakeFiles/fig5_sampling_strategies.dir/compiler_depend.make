# Empty compiler generated dependencies file for fig5_sampling_strategies.
# This may be replaced when dependencies are built.
