# Empty dependencies file for ablation_efficiency.
# This may be replaced when dependencies are built.
