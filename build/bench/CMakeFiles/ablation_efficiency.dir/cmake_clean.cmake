file(REMOVE_RECURSE
  "CMakeFiles/ablation_efficiency.dir/ablation_efficiency.cc.o"
  "CMakeFiles/ablation_efficiency.dir/ablation_efficiency.cc.o.d"
  "ablation_efficiency"
  "ablation_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
