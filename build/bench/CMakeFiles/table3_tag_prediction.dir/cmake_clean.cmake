file(REMOVE_RECURSE
  "CMakeFiles/table3_tag_prediction.dir/table3_tag_prediction.cc.o"
  "CMakeFiles/table3_tag_prediction.dir/table3_tag_prediction.cc.o.d"
  "table3_tag_prediction"
  "table3_tag_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_tag_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
