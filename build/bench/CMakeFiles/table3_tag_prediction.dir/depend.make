# Empty dependencies file for table3_tag_prediction.
# This may be replaced when dependencies are built.
