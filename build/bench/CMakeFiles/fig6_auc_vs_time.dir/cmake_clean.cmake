file(REMOVE_RECURSE
  "CMakeFiles/fig6_auc_vs_time.dir/fig6_auc_vs_time.cc.o"
  "CMakeFiles/fig6_auc_vs_time.dir/fig6_auc_vs_time.cc.o.d"
  "fig6_auc_vs_time"
  "fig6_auc_vs_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_auc_vs_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
