# Empty compiler generated dependencies file for fig6_auc_vs_time.
# This may be replaced when dependencies are built.
