file(REMOVE_RECURSE
  "CMakeFiles/table2_reconstruction.dir/table2_reconstruction.cc.o"
  "CMakeFiles/table2_reconstruction.dir/table2_reconstruction.cc.o.d"
  "table2_reconstruction"
  "table2_reconstruction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_reconstruction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
