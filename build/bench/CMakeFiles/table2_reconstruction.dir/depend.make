# Empty dependencies file for table2_reconstruction.
# This may be replaced when dependencies are built.
