file(REMOVE_RECURSE
  "CMakeFiles/table6_ab_test.dir/table6_ab_test.cc.o"
  "CMakeFiles/table6_ab_test.dir/table6_ab_test.cc.o.d"
  "table6_ab_test"
  "table6_ab_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_ab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
