# Empty dependencies file for table6_ab_test.
# This may be replaced when dependencies are built.
