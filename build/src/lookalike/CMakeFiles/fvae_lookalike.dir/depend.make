# Empty dependencies file for fvae_lookalike.
# This may be replaced when dependencies are built.
