file(REMOVE_RECURSE
  "CMakeFiles/fvae_lookalike.dir/ab_test.cc.o"
  "CMakeFiles/fvae_lookalike.dir/ab_test.cc.o.d"
  "CMakeFiles/fvae_lookalike.dir/ann_index.cc.o"
  "CMakeFiles/fvae_lookalike.dir/ann_index.cc.o.d"
  "CMakeFiles/fvae_lookalike.dir/audience_expander.cc.o"
  "CMakeFiles/fvae_lookalike.dir/audience_expander.cc.o.d"
  "CMakeFiles/fvae_lookalike.dir/lookalike_system.cc.o"
  "CMakeFiles/fvae_lookalike.dir/lookalike_system.cc.o.d"
  "libfvae_lookalike.a"
  "libfvae_lookalike.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvae_lookalike.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
