file(REMOVE_RECURSE
  "libfvae_lookalike.a"
)
