
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lookalike/ab_test.cc" "src/lookalike/CMakeFiles/fvae_lookalike.dir/ab_test.cc.o" "gcc" "src/lookalike/CMakeFiles/fvae_lookalike.dir/ab_test.cc.o.d"
  "/root/repo/src/lookalike/ann_index.cc" "src/lookalike/CMakeFiles/fvae_lookalike.dir/ann_index.cc.o" "gcc" "src/lookalike/CMakeFiles/fvae_lookalike.dir/ann_index.cc.o.d"
  "/root/repo/src/lookalike/audience_expander.cc" "src/lookalike/CMakeFiles/fvae_lookalike.dir/audience_expander.cc.o" "gcc" "src/lookalike/CMakeFiles/fvae_lookalike.dir/audience_expander.cc.o.d"
  "/root/repo/src/lookalike/lookalike_system.cc" "src/lookalike/CMakeFiles/fvae_lookalike.dir/lookalike_system.cc.o" "gcc" "src/lookalike/CMakeFiles/fvae_lookalike.dir/lookalike_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fvae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/fvae_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
