file(REMOVE_RECURSE
  "CMakeFiles/fvae_baselines.dir/feature_indexer.cc.o"
  "CMakeFiles/fvae_baselines.dir/feature_indexer.cc.o.d"
  "CMakeFiles/fvae_baselines.dir/fvae_adapter.cc.o"
  "CMakeFiles/fvae_baselines.dir/fvae_adapter.cc.o.d"
  "CMakeFiles/fvae_baselines.dir/lda.cc.o"
  "CMakeFiles/fvae_baselines.dir/lda.cc.o.d"
  "CMakeFiles/fvae_baselines.dir/most_popular.cc.o"
  "CMakeFiles/fvae_baselines.dir/most_popular.cc.o.d"
  "CMakeFiles/fvae_baselines.dir/mult_vae.cc.o"
  "CMakeFiles/fvae_baselines.dir/mult_vae.cc.o.d"
  "CMakeFiles/fvae_baselines.dir/pca.cc.o"
  "CMakeFiles/fvae_baselines.dir/pca.cc.o.d"
  "CMakeFiles/fvae_baselines.dir/skipgram.cc.o"
  "CMakeFiles/fvae_baselines.dir/skipgram.cc.o.d"
  "libfvae_baselines.a"
  "libfvae_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvae_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
