
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/feature_indexer.cc" "src/baselines/CMakeFiles/fvae_baselines.dir/feature_indexer.cc.o" "gcc" "src/baselines/CMakeFiles/fvae_baselines.dir/feature_indexer.cc.o.d"
  "/root/repo/src/baselines/fvae_adapter.cc" "src/baselines/CMakeFiles/fvae_baselines.dir/fvae_adapter.cc.o" "gcc" "src/baselines/CMakeFiles/fvae_baselines.dir/fvae_adapter.cc.o.d"
  "/root/repo/src/baselines/lda.cc" "src/baselines/CMakeFiles/fvae_baselines.dir/lda.cc.o" "gcc" "src/baselines/CMakeFiles/fvae_baselines.dir/lda.cc.o.d"
  "/root/repo/src/baselines/most_popular.cc" "src/baselines/CMakeFiles/fvae_baselines.dir/most_popular.cc.o" "gcc" "src/baselines/CMakeFiles/fvae_baselines.dir/most_popular.cc.o.d"
  "/root/repo/src/baselines/mult_vae.cc" "src/baselines/CMakeFiles/fvae_baselines.dir/mult_vae.cc.o" "gcc" "src/baselines/CMakeFiles/fvae_baselines.dir/mult_vae.cc.o.d"
  "/root/repo/src/baselines/pca.cc" "src/baselines/CMakeFiles/fvae_baselines.dir/pca.cc.o" "gcc" "src/baselines/CMakeFiles/fvae_baselines.dir/pca.cc.o.d"
  "/root/repo/src/baselines/skipgram.cc" "src/baselines/CMakeFiles/fvae_baselines.dir/skipgram.cc.o" "gcc" "src/baselines/CMakeFiles/fvae_baselines.dir/skipgram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fvae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/fvae_math.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/fvae_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fvae_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fvae_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fvae_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/fvae_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
