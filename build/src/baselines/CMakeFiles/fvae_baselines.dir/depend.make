# Empty dependencies file for fvae_baselines.
# This may be replaced when dependencies are built.
