file(REMOVE_RECURSE
  "libfvae_baselines.a"
)
