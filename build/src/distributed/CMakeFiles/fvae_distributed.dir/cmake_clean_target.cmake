file(REMOVE_RECURSE
  "libfvae_distributed.a"
)
