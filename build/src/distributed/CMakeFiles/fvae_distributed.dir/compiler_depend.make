# Empty compiler generated dependencies file for fvae_distributed.
# This may be replaced when dependencies are built.
