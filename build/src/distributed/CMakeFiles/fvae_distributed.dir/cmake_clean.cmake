file(REMOVE_RECURSE
  "CMakeFiles/fvae_distributed.dir/parallel_trainer.cc.o"
  "CMakeFiles/fvae_distributed.dir/parallel_trainer.cc.o.d"
  "libfvae_distributed.a"
  "libfvae_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvae_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
