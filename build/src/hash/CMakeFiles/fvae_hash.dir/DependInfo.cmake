
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/dynamic_hash_table.cc" "src/hash/CMakeFiles/fvae_hash.dir/dynamic_hash_table.cc.o" "gcc" "src/hash/CMakeFiles/fvae_hash.dir/dynamic_hash_table.cc.o.d"
  "/root/repo/src/hash/feature_hashing.cc" "src/hash/CMakeFiles/fvae_hash.dir/feature_hashing.cc.o" "gcc" "src/hash/CMakeFiles/fvae_hash.dir/feature_hashing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fvae_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
