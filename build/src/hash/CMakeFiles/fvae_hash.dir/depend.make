# Empty dependencies file for fvae_hash.
# This may be replaced when dependencies are built.
