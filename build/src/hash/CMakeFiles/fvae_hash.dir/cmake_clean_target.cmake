file(REMOVE_RECURSE
  "libfvae_hash.a"
)
