file(REMOVE_RECURSE
  "CMakeFiles/fvae_hash.dir/dynamic_hash_table.cc.o"
  "CMakeFiles/fvae_hash.dir/dynamic_hash_table.cc.o.d"
  "CMakeFiles/fvae_hash.dir/feature_hashing.cc.o"
  "CMakeFiles/fvae_hash.dir/feature_hashing.cc.o.d"
  "libfvae_hash.a"
  "libfvae_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvae_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
