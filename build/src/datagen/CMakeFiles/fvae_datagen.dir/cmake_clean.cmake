file(REMOVE_RECURSE
  "CMakeFiles/fvae_datagen.dir/barabasi_albert.cc.o"
  "CMakeFiles/fvae_datagen.dir/barabasi_albert.cc.o.d"
  "CMakeFiles/fvae_datagen.dir/powerlaw.cc.o"
  "CMakeFiles/fvae_datagen.dir/powerlaw.cc.o.d"
  "CMakeFiles/fvae_datagen.dir/profile_generator.cc.o"
  "CMakeFiles/fvae_datagen.dir/profile_generator.cc.o.d"
  "libfvae_datagen.a"
  "libfvae_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvae_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
