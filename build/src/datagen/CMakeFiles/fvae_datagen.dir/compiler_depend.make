# Empty compiler generated dependencies file for fvae_datagen.
# This may be replaced when dependencies are built.
