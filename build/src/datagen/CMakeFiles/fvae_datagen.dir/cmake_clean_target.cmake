file(REMOVE_RECURSE
  "libfvae_datagen.a"
)
