
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/barabasi_albert.cc" "src/datagen/CMakeFiles/fvae_datagen.dir/barabasi_albert.cc.o" "gcc" "src/datagen/CMakeFiles/fvae_datagen.dir/barabasi_albert.cc.o.d"
  "/root/repo/src/datagen/powerlaw.cc" "src/datagen/CMakeFiles/fvae_datagen.dir/powerlaw.cc.o" "gcc" "src/datagen/CMakeFiles/fvae_datagen.dir/powerlaw.cc.o.d"
  "/root/repo/src/datagen/profile_generator.cc" "src/datagen/CMakeFiles/fvae_datagen.dir/profile_generator.cc.o" "gcc" "src/datagen/CMakeFiles/fvae_datagen.dir/profile_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fvae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fvae_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
