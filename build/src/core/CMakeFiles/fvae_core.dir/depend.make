# Empty dependencies file for fvae_core.
# This may be replaced when dependencies are built.
