file(REMOVE_RECURSE
  "CMakeFiles/fvae_core.dir/fvae_model.cc.o"
  "CMakeFiles/fvae_core.dir/fvae_model.cc.o.d"
  "CMakeFiles/fvae_core.dir/hyper_search.cc.o"
  "CMakeFiles/fvae_core.dir/hyper_search.cc.o.d"
  "CMakeFiles/fvae_core.dir/model_io.cc.o"
  "CMakeFiles/fvae_core.dir/model_io.cc.o.d"
  "CMakeFiles/fvae_core.dir/sampling.cc.o"
  "CMakeFiles/fvae_core.dir/sampling.cc.o.d"
  "CMakeFiles/fvae_core.dir/trainer.cc.o"
  "CMakeFiles/fvae_core.dir/trainer.cc.o.d"
  "libfvae_core.a"
  "libfvae_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvae_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
