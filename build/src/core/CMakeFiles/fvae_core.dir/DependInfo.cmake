
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fvae_model.cc" "src/core/CMakeFiles/fvae_core.dir/fvae_model.cc.o" "gcc" "src/core/CMakeFiles/fvae_core.dir/fvae_model.cc.o.d"
  "/root/repo/src/core/hyper_search.cc" "src/core/CMakeFiles/fvae_core.dir/hyper_search.cc.o" "gcc" "src/core/CMakeFiles/fvae_core.dir/hyper_search.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/fvae_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/fvae_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/sampling.cc" "src/core/CMakeFiles/fvae_core.dir/sampling.cc.o" "gcc" "src/core/CMakeFiles/fvae_core.dir/sampling.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/fvae_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/fvae_core.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fvae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/fvae_math.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/fvae_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fvae_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fvae_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
