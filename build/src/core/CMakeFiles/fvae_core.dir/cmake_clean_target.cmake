file(REMOVE_RECURSE
  "libfvae_core.a"
)
