# Empty dependencies file for fvae_common.
# This may be replaced when dependencies are built.
