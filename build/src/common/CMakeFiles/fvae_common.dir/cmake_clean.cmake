file(REMOVE_RECURSE
  "CMakeFiles/fvae_common.dir/config.cc.o"
  "CMakeFiles/fvae_common.dir/config.cc.o.d"
  "CMakeFiles/fvae_common.dir/logging.cc.o"
  "CMakeFiles/fvae_common.dir/logging.cc.o.d"
  "CMakeFiles/fvae_common.dir/random.cc.o"
  "CMakeFiles/fvae_common.dir/random.cc.o.d"
  "CMakeFiles/fvae_common.dir/status.cc.o"
  "CMakeFiles/fvae_common.dir/status.cc.o.d"
  "CMakeFiles/fvae_common.dir/string_util.cc.o"
  "CMakeFiles/fvae_common.dir/string_util.cc.o.d"
  "CMakeFiles/fvae_common.dir/thread_pool.cc.o"
  "CMakeFiles/fvae_common.dir/thread_pool.cc.o.d"
  "libfvae_common.a"
  "libfvae_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvae_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
