file(REMOVE_RECURSE
  "libfvae_common.a"
)
