file(REMOVE_RECURSE
  "CMakeFiles/fvae_nn.dir/activations.cc.o"
  "CMakeFiles/fvae_nn.dir/activations.cc.o.d"
  "CMakeFiles/fvae_nn.dir/dense.cc.o"
  "CMakeFiles/fvae_nn.dir/dense.cc.o.d"
  "CMakeFiles/fvae_nn.dir/embedding.cc.o"
  "CMakeFiles/fvae_nn.dir/embedding.cc.o.d"
  "CMakeFiles/fvae_nn.dir/layer_norm.cc.o"
  "CMakeFiles/fvae_nn.dir/layer_norm.cc.o.d"
  "CMakeFiles/fvae_nn.dir/losses.cc.o"
  "CMakeFiles/fvae_nn.dir/losses.cc.o.d"
  "CMakeFiles/fvae_nn.dir/mlp.cc.o"
  "CMakeFiles/fvae_nn.dir/mlp.cc.o.d"
  "CMakeFiles/fvae_nn.dir/optimizer.cc.o"
  "CMakeFiles/fvae_nn.dir/optimizer.cc.o.d"
  "libfvae_nn.a"
  "libfvae_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvae_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
