
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/nn/CMakeFiles/fvae_nn.dir/activations.cc.o" "gcc" "src/nn/CMakeFiles/fvae_nn.dir/activations.cc.o.d"
  "/root/repo/src/nn/dense.cc" "src/nn/CMakeFiles/fvae_nn.dir/dense.cc.o" "gcc" "src/nn/CMakeFiles/fvae_nn.dir/dense.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/fvae_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/fvae_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/layer_norm.cc" "src/nn/CMakeFiles/fvae_nn.dir/layer_norm.cc.o" "gcc" "src/nn/CMakeFiles/fvae_nn.dir/layer_norm.cc.o.d"
  "/root/repo/src/nn/losses.cc" "src/nn/CMakeFiles/fvae_nn.dir/losses.cc.o" "gcc" "src/nn/CMakeFiles/fvae_nn.dir/losses.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/fvae_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/fvae_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/fvae_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/fvae_nn.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fvae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/fvae_math.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/fvae_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
