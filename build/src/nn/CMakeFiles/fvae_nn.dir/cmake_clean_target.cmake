file(REMOVE_RECURSE
  "libfvae_nn.a"
)
