# Empty compiler generated dependencies file for fvae_nn.
# This may be replaced when dependencies are built.
