
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serving/embedding_store.cc" "src/serving/CMakeFiles/fvae_serving.dir/embedding_store.cc.o" "gcc" "src/serving/CMakeFiles/fvae_serving.dir/embedding_store.cc.o.d"
  "/root/repo/src/serving/serving_proxy.cc" "src/serving/CMakeFiles/fvae_serving.dir/serving_proxy.cc.o" "gcc" "src/serving/CMakeFiles/fvae_serving.dir/serving_proxy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fvae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/fvae_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
