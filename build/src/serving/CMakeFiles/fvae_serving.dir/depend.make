# Empty dependencies file for fvae_serving.
# This may be replaced when dependencies are built.
