file(REMOVE_RECURSE
  "libfvae_serving.a"
)
