file(REMOVE_RECURSE
  "CMakeFiles/fvae_serving.dir/embedding_store.cc.o"
  "CMakeFiles/fvae_serving.dir/embedding_store.cc.o.d"
  "CMakeFiles/fvae_serving.dir/serving_proxy.cc.o"
  "CMakeFiles/fvae_serving.dir/serving_proxy.cc.o.d"
  "libfvae_serving.a"
  "libfvae_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvae_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
