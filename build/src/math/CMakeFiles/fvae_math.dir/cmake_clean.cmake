file(REMOVE_RECURSE
  "CMakeFiles/fvae_math.dir/matrix.cc.o"
  "CMakeFiles/fvae_math.dir/matrix.cc.o.d"
  "CMakeFiles/fvae_math.dir/special.cc.o"
  "CMakeFiles/fvae_math.dir/special.cc.o.d"
  "CMakeFiles/fvae_math.dir/stats.cc.o"
  "CMakeFiles/fvae_math.dir/stats.cc.o.d"
  "CMakeFiles/fvae_math.dir/svd.cc.o"
  "CMakeFiles/fvae_math.dir/svd.cc.o.d"
  "CMakeFiles/fvae_math.dir/vector_ops.cc.o"
  "CMakeFiles/fvae_math.dir/vector_ops.cc.o.d"
  "libfvae_math.a"
  "libfvae_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvae_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
