# Empty compiler generated dependencies file for fvae_math.
# This may be replaced when dependencies are built.
