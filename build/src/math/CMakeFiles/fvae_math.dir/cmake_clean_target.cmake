file(REMOVE_RECURSE
  "libfvae_math.a"
)
