
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/cluster_metrics.cc" "src/eval/CMakeFiles/fvae_eval.dir/cluster_metrics.cc.o" "gcc" "src/eval/CMakeFiles/fvae_eval.dir/cluster_metrics.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/fvae_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/fvae_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/tasks.cc" "src/eval/CMakeFiles/fvae_eval.dir/tasks.cc.o" "gcc" "src/eval/CMakeFiles/fvae_eval.dir/tasks.cc.o.d"
  "/root/repo/src/eval/tsne.cc" "src/eval/CMakeFiles/fvae_eval.dir/tsne.cc.o" "gcc" "src/eval/CMakeFiles/fvae_eval.dir/tsne.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fvae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/fvae_math.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fvae_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
