file(REMOVE_RECURSE
  "libfvae_eval.a"
)
