file(REMOVE_RECURSE
  "CMakeFiles/fvae_eval.dir/cluster_metrics.cc.o"
  "CMakeFiles/fvae_eval.dir/cluster_metrics.cc.o.d"
  "CMakeFiles/fvae_eval.dir/metrics.cc.o"
  "CMakeFiles/fvae_eval.dir/metrics.cc.o.d"
  "CMakeFiles/fvae_eval.dir/tasks.cc.o"
  "CMakeFiles/fvae_eval.dir/tasks.cc.o.d"
  "CMakeFiles/fvae_eval.dir/tsne.cc.o"
  "CMakeFiles/fvae_eval.dir/tsne.cc.o.d"
  "libfvae_eval.a"
  "libfvae_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvae_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
