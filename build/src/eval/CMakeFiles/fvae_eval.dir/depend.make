# Empty dependencies file for fvae_eval.
# This may be replaced when dependencies are built.
