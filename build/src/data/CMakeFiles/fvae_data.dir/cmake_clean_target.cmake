file(REMOVE_RECURSE
  "libfvae_data.a"
)
