file(REMOVE_RECURSE
  "CMakeFiles/fvae_data.dir/batching.cc.o"
  "CMakeFiles/fvae_data.dir/batching.cc.o.d"
  "CMakeFiles/fvae_data.dir/dataset.cc.o"
  "CMakeFiles/fvae_data.dir/dataset.cc.o.d"
  "CMakeFiles/fvae_data.dir/io.cc.o"
  "CMakeFiles/fvae_data.dir/io.cc.o.d"
  "CMakeFiles/fvae_data.dir/split.cc.o"
  "CMakeFiles/fvae_data.dir/split.cc.o.d"
  "CMakeFiles/fvae_data.dir/streaming.cc.o"
  "CMakeFiles/fvae_data.dir/streaming.cc.o.d"
  "libfvae_data.a"
  "libfvae_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvae_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
