# Empty compiler generated dependencies file for fvae_data.
# This may be replaced when dependencies are built.
