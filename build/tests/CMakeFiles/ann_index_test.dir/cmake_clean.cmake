file(REMOVE_RECURSE
  "CMakeFiles/ann_index_test.dir/ann_index_test.cc.o"
  "CMakeFiles/ann_index_test.dir/ann_index_test.cc.o.d"
  "ann_index_test"
  "ann_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ann_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
