# Empty compiler generated dependencies file for lookalike_test.
# This may be replaced when dependencies are built.
