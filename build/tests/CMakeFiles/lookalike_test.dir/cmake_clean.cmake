file(REMOVE_RECURSE
  "CMakeFiles/lookalike_test.dir/lookalike_test.cc.o"
  "CMakeFiles/lookalike_test.dir/lookalike_test.cc.o.d"
  "lookalike_test"
  "lookalike_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookalike_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
