# Empty dependencies file for cluster_metrics_test.
# This may be replaced when dependencies are built.
