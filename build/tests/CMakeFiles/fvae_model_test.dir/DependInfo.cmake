
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fvae_model_test.cc" "tests/CMakeFiles/fvae_model_test.dir/fvae_model_test.cc.o" "gcc" "tests/CMakeFiles/fvae_model_test.dir/fvae_model_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/fvae_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/fvae_math.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/fvae_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fvae_data.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/fvae_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fvae_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fvae_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/fvae_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/fvae_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/lookalike/CMakeFiles/fvae_lookalike.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/fvae_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/distributed/CMakeFiles/fvae_distributed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
