file(REMOVE_RECURSE
  "CMakeFiles/fvae_model_test.dir/fvae_model_test.cc.o"
  "CMakeFiles/fvae_model_test.dir/fvae_model_test.cc.o.d"
  "fvae_model_test"
  "fvae_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvae_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
