# Empty compiler generated dependencies file for fvae_model_test.
# This may be replaced when dependencies are built.
