file(REMOVE_RECURSE
  "CMakeFiles/fvae_property_test.dir/fvae_property_test.cc.o"
  "CMakeFiles/fvae_property_test.dir/fvae_property_test.cc.o.d"
  "fvae_property_test"
  "fvae_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvae_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
