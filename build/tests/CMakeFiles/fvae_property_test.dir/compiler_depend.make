# Empty compiler generated dependencies file for fvae_property_test.
# This may be replaced when dependencies are built.
