# Empty dependencies file for mult_vae_test.
# This may be replaced when dependencies are built.
