file(REMOVE_RECURSE
  "CMakeFiles/mult_vae_test.dir/mult_vae_test.cc.o"
  "CMakeFiles/mult_vae_test.dir/mult_vae_test.cc.o.d"
  "mult_vae_test"
  "mult_vae_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mult_vae_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
