file(REMOVE_RECURSE
  "CMakeFiles/batching_split_test.dir/batching_split_test.cc.o"
  "CMakeFiles/batching_split_test.dir/batching_split_test.cc.o.d"
  "batching_split_test"
  "batching_split_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batching_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
