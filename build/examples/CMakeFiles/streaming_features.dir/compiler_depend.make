# Empty compiler generated dependencies file for streaming_features.
# This may be replaced when dependencies are built.
