file(REMOVE_RECURSE
  "CMakeFiles/streaming_features.dir/streaming_features.cpp.o"
  "CMakeFiles/streaming_features.dir/streaming_features.cpp.o.d"
  "streaming_features"
  "streaming_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
