# Empty compiler generated dependencies file for hyperparameter_search.
# This may be replaced when dependencies are built.
