file(REMOVE_RECURSE
  "CMakeFiles/lookalike_service.dir/lookalike_service.cpp.o"
  "CMakeFiles/lookalike_service.dir/lookalike_service.cpp.o.d"
  "lookalike_service"
  "lookalike_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lookalike_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
