# Empty dependencies file for lookalike_service.
# This may be replaced when dependencies are built.
