# Empty compiler generated dependencies file for tag_prediction_pipeline.
# This may be replaced when dependencies are built.
