file(REMOVE_RECURSE
  "CMakeFiles/tag_prediction_pipeline.dir/tag_prediction_pipeline.cpp.o"
  "CMakeFiles/tag_prediction_pipeline.dir/tag_prediction_pipeline.cpp.o.d"
  "tag_prediction_pipeline"
  "tag_prediction_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_prediction_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
