file(REMOVE_RECURSE
  "CMakeFiles/fvae.dir/fvae_cli.cpp.o"
  "CMakeFiles/fvae.dir/fvae_cli.cpp.o.d"
  "fvae"
  "fvae.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fvae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
