# Empty dependencies file for fvae.
# This may be replaced when dependencies are built.
