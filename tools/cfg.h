#ifndef FVAE_TOOLS_CFG_H_
#define FVAE_TOOLS_CFG_H_

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "tools/cpp_lexer.h"

/// Per-function control-flow graphs for fvae_lint's path-sensitive
/// analyses (tools/dataflow.h). BuildCfg() parses one function body — a
/// token range produced by tools/cpp_lexer.h and delimited by the
/// brace-matched body indices that tools/tu_facts.h records on every
/// FunctionFacts — into basic blocks of statements:
///
///   - `if`/`else` (including `else if` chains and `if constexpr`), with
///     short-circuit `&&`/`||` conditions split into one guard node per
///     operand when the condition uses a single operator kind (a mixed
///     `a && b || c` condition stays one node — the analyses are
///     condition-blind, so only the edge structure matters);
///   - `while`, `do`/`while`, classic and range `for`; `while (true)`,
///     `while (1)` and `for (;;)` get no loop-head exit edge, so code
///     after an infinite loop is only reachable through `break` — the
///     request-batcher worker pattern (`for (;;) { ... if (done) {
///     mu.Unlock(); return; } ... }`) has exactly the paths it executes;
///   - `switch`/`case` with fall-through edges between consecutive case
///     groups, `break` to the statement after the switch, and a
///     head-to-after edge only when there is no `default:`;
///   - early `return` / `throw` / `co_return` (edge to the exit node),
///     `break` / `continue` (edges to the innermost break/continue
///     targets), `goto` (conservative edge to exit);
///   - `try`/`catch` over-approximated: the catch block joins the states
///     from before the try and from its fall-through exit.
///
/// Statements are token ranges [begin, end) into the file's token vector;
/// braces *inside* a statement (lambda bodies, braced initializers, local
/// struct definitions) are swallowed into that statement, so a lambda's
/// control flow is opaque — documented blind spot, matching the fact
/// extractor's treatment. Code after a terminator lands in a fresh node
/// with no predecessors; `Cfg::reachable` (BFS from entry) lets analyses
/// both skip dead statements and *report* facts recorded in them as
/// unreachable. A node budget bounds pathological inputs: an over-budget
/// function sets `truncated` and the dataflow analyses skip it.

namespace fvae::lint {

/// One statement: a token range in the file's token stream. `line` is the
/// first token's line (use token lines for finer attribution).
struct CfgStmt {
  size_t begin = 0;  // inclusive token index
  size_t end = 0;    // exclusive token index
  size_t line = 0;
};

struct CfgNode {
  std::vector<CfgStmt> stmts;
  std::vector<size_t> succ;
  std::vector<size_t> pred;
};

struct Cfg {
  static constexpr size_t kEntry = 0;
  static constexpr size_t kExit = 1;
  std::vector<CfgNode> nodes;   // nodes[0] = entry, nodes[1] = exit
  std::vector<bool> reachable;  // from entry, over succ edges
  bool truncated = false;       // over budget: analyses must skip
};

namespace cfg_detail {

/// Node-count budget per function. Far above anything a real function
/// produces (the repo's largest bodies build well under 300 nodes); a
/// token stream pathological enough to exceed it marks the CFG truncated
/// rather than stalling the lint run.
constexpr size_t kMaxNodes = 4096;
constexpr size_t kMaxDepth = 200;  // statement-nesting recursion guard

class CfgBuilder {
 public:
  CfgBuilder(const std::vector<Tok>& toks, size_t begin, size_t end)
      : toks_(toks), begin_(begin), end_(end) {
    cfg_.nodes.resize(2);
  }

  Cfg Build() {
    size_t cur = NewNode();
    AddEdge(Cfg::kEntry, cur);
    cur = ParseSeq(begin_, end_, cur);
    AddEdge(cur, Cfg::kExit);  // implicit return at the closing brace
    cfg_.reachable.assign(cfg_.nodes.size(), false);
    std::deque<size_t> queue = {Cfg::kEntry};
    cfg_.reachable[Cfg::kEntry] = true;
    while (!queue.empty()) {
      const size_t n = queue.front();
      queue.pop_front();
      for (size_t s : cfg_.nodes[n].succ) {
        if (!cfg_.reachable[s]) {
          cfg_.reachable[s] = true;
          queue.push_back(s);
        }
      }
    }
    return std::move(cfg_);
  }

 private:
  bool IsPunct(size_t i, const char* text) const {
    return i < end_ && toks_[i].kind == TokKind::kPunct &&
           toks_[i].text == text;
  }
  bool IsIdent(size_t i, const char* text) const {
    return i < end_ && toks_[i].kind == TokKind::kIdent &&
           toks_[i].text == text;
  }

  size_t NewNode() {
    if (cfg_.nodes.size() >= kMaxNodes) {
      cfg_.truncated = true;
      return Cfg::kExit;  // safe sink; the truncated flag voids the graph
    }
    cfg_.nodes.emplace_back();
    return cfg_.nodes.size() - 1;
  }

  void AddEdge(size_t from, size_t to) {
    std::vector<size_t>& succ = cfg_.nodes[from].succ;
    for (size_t s : succ) {
      if (s == to) return;
    }
    succ.push_back(to);
    cfg_.nodes[to].pred.push_back(from);
  }

  void AddStmt(size_t node, size_t begin, size_t end) {
    if (begin >= end) return;
    cfg_.nodes[node].stmts.push_back({begin, end, toks_[begin].line});
  }

  /// Index just past the token matching the open paren/brace/bracket at
  /// `i` (end_ when unbalanced).
  size_t MatchGroup(size_t i) const {
    const std::string& open = toks_[i].text;
    const char* close = open == "(" ? ")" : open == "{" ? "}" : "]";
    int depth = 0;
    for (size_t j = i; j < end_; ++j) {
      if (toks_[j].kind != TokKind::kPunct) continue;
      if (toks_[j].text == open) ++depth;
      if (toks_[j].text == close && --depth == 0) return j + 1;
    }
    return end_;
  }

  /// Scans one plain statement starting at `i`: consumes balanced groups
  /// (parens, braces — lambdas, braced initializers — and brackets) and
  /// stops just past the terminating ';', or *at* an unmatched '}' or
  /// `end`.
  size_t ScanStmtEnd(size_t i, size_t end) const {
    int paren = 0, brace = 0;
    while (i < end) {
      const Tok& t = toks_[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") {
          ++paren;
        } else if (t.text == ")") {
          --paren;
        } else if (t.text == "{") {
          ++brace;
        } else if (t.text == "}") {
          if (brace == 0) return i;
          --brace;
        } else if (t.text == ";" && paren <= 0 && brace == 0) {
          return i + 1;
        }
      }
      ++i;
    }
    return end;
  }

  size_t ParseSeq(size_t i, size_t end, size_t cur) {
    while (i < end && !cfg_.truncated) {
      cur = ParseStmt(&i, end, cur);
    }
    return cur;
  }

  /// Parses one statement starting at *ip (advanced past it) and returns
  /// the node where control continues.
  size_t ParseStmt(size_t* ip, size_t end, size_t cur) {
    const size_t i = *ip;
    if (++depth_ > kMaxDepth) cfg_.truncated = true;
    if (cfg_.truncated) {
      *ip = end;
      --depth_;
      return cur;
    }
    struct DepthGuard {
      size_t* d;
      ~DepthGuard() { --*d; }
    } guard{&depth_};

    const Tok& t = toks_[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "{") {  // compound statement
        const size_t close = MatchGroup(i);
        const size_t exit = ParseSeq(i + 1, close > i ? close - 1 : i, cur);
        *ip = close;
        return exit;
      }
      if (t.text == ";") {  // empty statement
        *ip = i + 1;
        return cur;
      }
    }
    if (t.kind == TokKind::kIdent) {
      if (t.text == "if") return ParseIf(ip, end, cur);
      if (t.text == "while") return ParseWhile(ip, end, cur);
      if (t.text == "do") return ParseDo(ip, end, cur);
      if (t.text == "for") return ParseFor(ip, end, cur);
      if (t.text == "switch") return ParseSwitch(ip, end, cur);
      if (t.text == "try") return ParseTry(ip, end, cur);
      if (t.text == "return" || t.text == "throw" ||
          t.text == "co_return" || t.text == "goto") {
        const size_t stop = ScanStmtEnd(i, end);
        AddStmt(cur, i, stop);
        AddEdge(cur, Cfg::kExit);
        *ip = stop;
        return NewNode();  // fresh, predecessor-less: dead until a label
      }
      if (t.text == "break" || t.text == "continue") {
        const size_t stop = ScanStmtEnd(i, end);
        AddStmt(cur, i, stop);
        const std::vector<size_t>& targets =
            t.text == "break" ? break_targets_ : continue_targets_;
        AddEdge(cur, targets.empty() ? Cfg::kExit : targets.back());
        *ip = stop;
        return NewNode();
      }
      if (t.text == "else") {  // defensive: a dangling else is skipped
        *ip = i + 1;
        return cur;
      }
      // Plain label (`retry:`): skip it; the node keeps flowing. (A goto
      // already routed conservatively to exit.)
      if (IsPunct(i + 1, ":") && t.text != "default") {
        *ip = i + 2;
        return cur;
      }
    }
    const size_t stop = ScanStmtEnd(i, end);
    if (stop == i) {  // unmatched '}' or no progress: consume one token
      *ip = i + 1;
      return cur;
    }
    AddStmt(cur, i, stop);
    *ip = stop;
    return cur;
  }

  /// Splits a condition range on top-level `&&` (*op = 1) or `||`
  /// (*op = 2) when only one operator kind appears; otherwise returns the
  /// whole range (*op = 0).
  std::vector<std::pair<size_t, size_t>> SplitGuards(size_t b, size_t e,
                                                     int* op) const {
    std::vector<size_t> ands, ors;
    int depth = 0;
    for (size_t i = b; i < e; ++i) {
      if (toks_[i].kind != TokKind::kPunct) continue;
      const std::string& s = toks_[i].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
      if (depth != 0) continue;
      if (s == "&&") ands.push_back(i);
      if (s == "||") ors.push_back(i);
    }
    const std::vector<size_t>* cuts = nullptr;
    if (!ands.empty() && ors.empty()) {
      *op = 1;
      cuts = &ands;
    } else if (ands.empty() && !ors.empty()) {
      *op = 2;
      cuts = &ors;
    } else {
      *op = 0;
      return {{b, e}};
    }
    std::vector<std::pair<size_t, size_t>> parts;
    size_t start = b;
    for (size_t cut : *cuts) {
      parts.emplace_back(start, cut);
      start = cut + 1;
    }
    parts.emplace_back(start, e);
    return parts;
  }

  size_t ParseIf(size_t* ip, size_t end, size_t cur) {
    size_t i = *ip + 1;  // past 'if'
    if (IsIdent(i, "constexpr")) ++i;
    if (!IsPunct(i, "(")) {  // malformed: fall back to a plain statement
      const size_t stop = ScanStmtEnd(*ip, end);
      AddStmt(cur, *ip, stop);
      *ip = stop > *ip ? stop : *ip + 1;
      return cur;
    }
    const size_t close = MatchGroup(i);
    int op = 0;
    const auto guards = SplitGuards(i + 1, close - 1, &op);
    const size_t then_entry = NewNode();
    const size_t else_entry = NewNode();
    // Guard chain: one node per operand. For `&&` a false operand jumps
    // to else; for `||` a true operand jumps to then.
    size_t g = cur;
    for (size_t k = 0; k < guards.size(); ++k) {
      const size_t node = guards.size() == 1 ? cur : NewNode();
      if (node != g) AddEdge(g, node);
      AddStmt(node, guards[k].first, guards[k].second);
      const bool last = k + 1 == guards.size();
      if (last) {
        AddEdge(node, then_entry);
        AddEdge(node, else_entry);
      } else if (op == 1) {
        AddEdge(node, else_entry);  // short-circuit false
      } else {
        AddEdge(node, then_entry);  // short-circuit true
      }
      g = node;
    }
    const size_t join = NewNode();
    size_t j = close;
    const size_t then_exit = ParseStmt(&j, end, then_entry);
    AddEdge(then_exit, join);
    if (IsIdent(j, "else")) {
      ++j;
      const size_t else_exit = ParseStmt(&j, end, else_entry);
      AddEdge(else_exit, join);
    } else {
      AddEdge(else_entry, join);
    }
    *ip = j;
    return join;
  }

  /// `while (true)`, `while (1)`, `for (;;)`: no loop-head exit edge.
  bool IsInfinite(size_t b, size_t e) const {
    return e == b + 1 && (IsIdent(b, "true") ||
                          (toks_[b].kind == TokKind::kNumber &&
                           toks_[b].text == "1"));
  }

  size_t ParseWhile(size_t* ip, size_t end, size_t cur) {
    size_t i = *ip + 1;
    if (!IsPunct(i, "(")) {
      const size_t stop = ScanStmtEnd(*ip, end);
      AddStmt(cur, *ip, stop);
      *ip = stop > *ip ? stop : *ip + 1;
      return cur;
    }
    const size_t close = MatchGroup(i);
    const size_t head = NewNode();
    AddStmt(head, i + 1, close - 1);
    AddEdge(cur, head);
    const size_t after = NewNode();
    const size_t body = NewNode();
    AddEdge(head, body);
    if (!IsInfinite(i + 1, close - 1)) AddEdge(head, after);
    break_targets_.push_back(after);
    continue_targets_.push_back(head);
    size_t j = close;
    const size_t body_exit = ParseStmt(&j, end, body);
    break_targets_.pop_back();
    continue_targets_.pop_back();
    AddEdge(body_exit, head);
    *ip = j;
    return after;
  }

  size_t ParseDo(size_t* ip, size_t end, size_t cur) {
    size_t j = *ip + 1;
    const size_t body = NewNode();
    AddEdge(cur, body);
    const size_t cond = NewNode();
    const size_t after = NewNode();
    break_targets_.push_back(after);
    continue_targets_.push_back(cond);
    const size_t body_exit = ParseStmt(&j, end, body);
    break_targets_.pop_back();
    continue_targets_.pop_back();
    AddEdge(body_exit, cond);
    if (IsIdent(j, "while") && IsPunct(j + 1, "(")) {
      const size_t close = MatchGroup(j + 1);
      AddStmt(cond, j + 2, close - 1);
      AddEdge(cond, body);
      if (!IsInfinite(j + 2, close - 1)) AddEdge(cond, after);
      j = close;
      if (IsPunct(j, ";")) ++j;
    } else {
      AddEdge(cond, after);  // malformed do: degrade gracefully
    }
    *ip = j;
    return after;
  }

  size_t ParseFor(size_t* ip, size_t end, size_t cur) {
    size_t i = *ip + 1;
    if (!IsPunct(i, "(")) {
      const size_t stop = ScanStmtEnd(*ip, end);
      AddStmt(cur, *ip, stop);
      *ip = stop > *ip ? stop : *ip + 1;
      return cur;
    }
    const size_t close = MatchGroup(i);
    // Classic for carries top-level ';' in its head; range-for does not.
    std::vector<size_t> semis;
    int depth = 0;
    for (size_t j = i + 1; j + 1 < close; ++j) {
      if (toks_[j].kind != TokKind::kPunct) continue;
      const std::string& s = toks_[j].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      if (s == ")" || s == "]" || s == "}") --depth;
      if (s == ";" && depth == 0) semis.push_back(j);
    }
    const size_t after = NewNode();
    const size_t body = NewNode();
    size_t j = close;
    if (semis.size() < 2) {  // range-for: one head node, loop edges
      const size_t head = NewNode();
      AddStmt(head, i + 1, close - 1);
      AddEdge(cur, head);
      AddEdge(head, body);
      AddEdge(head, after);
      break_targets_.push_back(after);
      continue_targets_.push_back(head);
      const size_t body_exit = ParseStmt(&j, end, body);
      break_targets_.pop_back();
      continue_targets_.pop_back();
      AddEdge(body_exit, head);
    } else {
      AddStmt(cur, i + 1, semis[0]);  // init runs once, in the current node
      const size_t head = NewNode();
      const bool has_cond = semis[1] > semis[0] + 1;
      AddStmt(head, semis[0] + 1, semis[1]);
      AddEdge(cur, head);
      const size_t inc = NewNode();
      AddStmt(inc, semis[1] + 1, close - 1);
      AddEdge(head, body);
      if (has_cond) AddEdge(head, after);  // for(;;): break is the only way out
      break_targets_.push_back(after);
      continue_targets_.push_back(inc);
      const size_t body_exit = ParseStmt(&j, end, body);
      break_targets_.pop_back();
      continue_targets_.pop_back();
      AddEdge(body_exit, inc);
      AddEdge(inc, head);
    }
    *ip = j;
    return after;
  }

  size_t ParseSwitch(size_t* ip, size_t end, size_t cur) {
    size_t i = *ip + 1;
    if (!IsPunct(i, "(")) {
      const size_t stop = ScanStmtEnd(*ip, end);
      AddStmt(cur, *ip, stop);
      *ip = stop > *ip ? stop : *ip + 1;
      return cur;
    }
    const size_t close = MatchGroup(i);
    const size_t head = NewNode();
    AddStmt(head, i + 1, close - 1);
    AddEdge(cur, head);
    const size_t after = NewNode();
    if (!IsPunct(close, "{")) {  // switch without a block: degrade
      AddEdge(head, after);
      *ip = close;
      return after;
    }
    const size_t bclose = MatchGroup(close);
    break_targets_.push_back(after);
    size_t group = SIZE_MAX;  // current case group's flow node
    bool has_default = false;
    size_t j = close + 1;
    const size_t body_end = bclose > close ? bclose - 1 : close;
    while (j < body_end && !cfg_.truncated) {
      const bool is_case = IsIdent(j, "case");
      const bool is_default = IsIdent(j, "default") && IsPunct(j + 1, ":");
      if (is_case || is_default) {
        // Skip to the label's ':' (a lone ':', never the '::' token).
        size_t colon = j + 1;
        while (colon < body_end && !IsPunct(colon, ":")) ++colon;
        const size_t entry = NewNode();
        AddEdge(head, entry);
        if (group != SIZE_MAX) AddEdge(group, entry);  // fall-through
        group = entry;
        if (is_default) has_default = true;
        j = colon + 1;
        continue;
      }
      if (group == SIZE_MAX) group = NewNode();  // stmts before any label
      group = ParseStmt(&j, body_end, group);
    }
    if (group != SIZE_MAX) AddEdge(group, after);  // fall out of the last group
    break_targets_.pop_back();
    if (!has_default) AddEdge(head, after);
    *ip = bclose;
    return after;
  }

  size_t ParseTry(size_t* ip, size_t end, size_t cur) {
    size_t j = *ip + 1;
    const size_t try_entry = NewNode();
    AddEdge(cur, try_entry);
    const size_t try_exit = ParseStmt(&j, end, try_entry);
    const size_t join = NewNode();
    AddEdge(try_exit, join);
    while (IsIdent(j, "catch") && IsPunct(j + 1, "(")) {
      const size_t close = MatchGroup(j + 1);
      const size_t handler = NewNode();
      // Any statement in the try may throw: join the pre-try and
      // end-of-try states as the handler's input (over-approximation).
      AddEdge(cur, handler);
      AddEdge(try_exit, handler);
      j = close;
      const size_t handler_exit = ParseStmt(&j, end, handler);
      AddEdge(handler_exit, join);
    }
    *ip = j;
    return join;
  }

  const std::vector<Tok>& toks_;
  const size_t begin_;
  const size_t end_;
  Cfg cfg_;
  std::vector<size_t> break_targets_;
  std::vector<size_t> continue_targets_;
  size_t depth_ = 0;
};

}  // namespace cfg_detail

/// Builds the CFG of one function body: `[body_begin, body_end)` is the
/// token range strictly inside the body's braces (FunctionFacts records
/// it during extraction).
inline Cfg BuildCfg(const std::vector<Tok>& toks, size_t body_begin,
                    size_t body_end) {
  if (body_end > toks.size()) body_end = toks.size();
  if (body_begin > body_end) body_begin = body_end;
  return cfg_detail::CfgBuilder(toks, body_begin, body_end).Build();
}

}  // namespace fvae::lint

#endif  // FVAE_TOOLS_CFG_H_
