#ifndef FVAE_TOOLS_CPP_LEXER_H_
#define FVAE_TOOLS_CPP_LEXER_H_

#include <cctype>
#include <string>
#include <vector>

/// Token-level C++ lexer for fvae_lint v2.
///
/// Deliberately small: it produces exactly the token stream the analyzer
/// needs (identifiers, numbers, string/char literal *contents*, punctuation,
/// whole preprocessor directives) and drops comments, so no rule can ever
/// fire inside a literal or a comment again. It understands:
///
///   - `//` and `/* */` comments (including multi-line);
///   - string literals with escapes, encoding prefixes (u8"", L"", ...) and
///     raw strings `R"delim(...)delim"` spanning lines;
///   - char literals with escapes, and digit separators (`1'000'000`) —
///     which are numbers, not the start of a char literal;
///   - preprocessor directives as one token per directive, honoring
///     backslash continuations.
///
/// It is NOT a preprocessor: macros are plain identifier tokens, which is
/// exactly what the fact extractor wants (FVAE_HOT, MutexLock, FVAE_LOG are
/// recognized by name).

namespace fvae::lint {

enum class TokKind {
  kIdent,
  kNumber,
  kString,   // text = literal contents, quotes/delimiters removed
  kChar,     // text = literal contents
  kPunct,    // text = operator spelling ("::", "->", "(", ...)
  kPreproc,  // text = full directive including '#', continuations joined
};

struct Tok {
  TokKind kind = TokKind::kPunct;
  std::string text;
  size_t line = 0;  // 1-based line of the token's first character
};

namespace lexdetail {

inline bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
inline bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
inline bool IsDigit(char c) {
  return std::isdigit(static_cast<unsigned char>(c));
}

/// Encoding prefixes that may glue onto a string/char literal.
inline bool IsLiteralPrefix(const std::string& ident) {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L" ||
         ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

}  // namespace lexdetail

/// Lexes `src` into tokens. Never fails: unterminated literals are closed
/// at end of input (the analyzer stays line-true on malformed files).
inline std::vector<Tok> LexCpp(const std::string& src) {
  using lexdetail::IsDigit;
  using lexdetail::IsIdentChar;
  using lexdetail::IsIdentStart;
  using lexdetail::IsLiteralPrefix;
  std::vector<Tok> out;
  const size_t n = src.size();
  size_t i = 0;
  size_t line = 1;
  bool at_line_start = true;  // only whitespace seen since last newline

  auto scan_string = [&](size_t* pos, bool raw) {
    // *pos is at the opening '"'. Returns literal contents.
    std::string text;
    size_t j = *pos + 1;
    if (raw) {
      std::string delim;
      while (j < n && src[j] != '(' && src[j] != '\n') delim += src[j++];
      if (j < n) ++j;  // '('
      const std::string closer = ")" + delim + "\"";
      const size_t end = src.find(closer, j);
      const size_t stop = end == std::string::npos ? n : end;
      for (size_t k = j; k < stop; ++k) {
        text += src[k];
        if (src[k] == '\n') ++line;
      }
      j = end == std::string::npos ? n : end + closer.size();
    } else {
      while (j < n && src[j] != '"' && src[j] != '\n') {
        if (src[j] == '\\' && j + 1 < n) {
          text += src[j];
          text += src[j + 1];
          j += 2;
          continue;
        }
        text += src[j++];
      }
      if (j < n && src[j] == '"') ++j;
    }
    *pos = j;
    return text;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i = i + 1 < n ? i + 2 : n;
      continue;
    }
    // Preprocessor directive: '#' first on its logical line.
    if (c == '#' && at_line_start) {
      Tok tok{TokKind::kPreproc, "", line};
      while (i < n) {
        if (src[i] == '\n') {
          // Continuation only if the previous non-space char is '\'.
          size_t back = tok.text.size();
          while (back > 0 && (tok.text[back - 1] == ' ' ||
                              tok.text[back - 1] == '\t' ||
                              tok.text[back - 1] == '\r')) {
            --back;
          }
          if (back > 0 && tok.text[back - 1] == '\\') {
            tok.text.resize(back - 1);
            tok.text += ' ';
            ++line;
            ++i;
            continue;
          }
          break;
        }
        // A comment ends the directive scan (it cannot hide a continuation).
        if (src[i] == '/' && i + 1 < n &&
            (src[i + 1] == '/' || src[i + 1] == '*')) {
          break;
        }
        tok.text += src[i++];
      }
      out.push_back(std::move(tok));
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    // Identifier (possibly a string-literal prefix).
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      std::string ident = src.substr(start, i - start);
      if (i < n && src[i] == '"' && IsLiteralPrefix(ident)) {
        const bool raw = ident.back() == 'R';
        const size_t tok_line = line;
        out.push_back({TokKind::kString, scan_string(&i, raw), tok_line});
        continue;
      }
      if (i < n && src[i] == '\'' &&
          (ident == "u8" || ident == "u" || ident == "U" || ident == "L")) {
        // Prefixed char literal: fall through to char handling below.
        // (handled by pushing the prefix as its own token is wrong; consume)
        ++i;
        while (i < n && src[i] != '\'' && src[i] != '\n') {
          if (src[i] == '\\') ++i;
          ++i;
        }
        if (i < n && src[i] == '\'') ++i;
        out.push_back({TokKind::kChar, "", line});
        continue;
      }
      out.push_back({TokKind::kIdent, std::move(ident), line});
      continue;
    }
    // Number (handles digit separators, hex, exponents, float suffixes).
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(src[i + 1]))) {
      const size_t start = i;
      ++i;
      while (i < n) {
        const char d = src[i];
        if (IsIdentChar(d) || d == '.') {
          ++i;
        } else if (d == '\'' && i + 1 < n && IsIdentChar(src[i + 1])) {
          i += 2;  // digit separator
        } else if ((d == '+' || d == '-') && i > start &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                    src[i - 1] == 'p' || src[i - 1] == 'P')) {
          ++i;  // signed exponent
        } else {
          break;
        }
      }
      out.push_back({TokKind::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // String literal.
    if (c == '"') {
      const size_t tok_line = line;
      out.push_back({TokKind::kString, scan_string(&i, false), tok_line});
      continue;
    }
    // Char literal.
    if (c == '\'') {
      std::string text;
      ++i;
      while (i < n && src[i] != '\'' && src[i] != '\n') {
        if (src[i] == '\\' && i + 1 < n) {
          text += src[i];
          text += src[i + 1];
          i += 2;
          continue;
        }
        text += src[i++];
      }
      if (i < n && src[i] == '\'') ++i;
      out.push_back({TokKind::kChar, std::move(text), line});
      continue;
    }
    // Punctuation: two-character operators first, then single characters.
    static const char* kTwoChar[] = {"::", "->", "<<", ">>", "==", "!=",
                                     "<=", ">=", "&&", "||", "+=", "-=",
                                     "*=", "/=", "%=", "&=", "|=", "^=",
                                     "++", "--"};
    bool matched = false;
    if (i + 1 < n) {
      for (const char* op : kTwoChar) {
        if (src[i] == op[0] && src[i + 1] == op[1]) {
          out.push_back({TokKind::kPunct, op, line});
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (matched) continue;
    out.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

/// Parses every `fvae-lint: allow(...)` marker on a raw source line and
/// returns true when any of them names `rule`. The argument is a
/// comma-separated rule list — `fvae-lint: allow(status-path,lock-balance)`
/// suppresses both rules on the line — with whitespace around each entry
/// ignored, so the single-rule spelling `allow(fd-leak)` is the one-element
/// case of the same grammar. Both suppression layers (the per-file rules in
/// lint_rules.h and the whole-program LineAllows in lint_graph.h) call this,
/// so the two grammars can never drift apart.
inline bool SuppressionAllows(const std::string& raw_line,
                              const std::string& rule) {
  static const std::string kMarker = "fvae-lint: allow(";
  size_t pos = 0;
  while ((pos = raw_line.find(kMarker, pos)) != std::string::npos) {
    size_t i = pos + kMarker.size();
    const size_t close = raw_line.find(')', i);
    if (close == std::string::npos) return false;
    while (i < close) {
      size_t comma = raw_line.find(',', i);
      if (comma == std::string::npos || comma > close) comma = close;
      size_t b = i, e = comma;
      while (b < e && (raw_line[b] == ' ' || raw_line[b] == '\t')) ++b;
      while (e > b &&
             (raw_line[e - 1] == ' ' || raw_line[e - 1] == '\t')) {
        --e;
      }
      if (e > b && raw_line.compare(b, e - b, rule) == 0) return true;
      i = comma + 1;
    }
    pos = close + 1;
  }
  return false;
}

}  // namespace fvae::lint

#endif  // FVAE_TOOLS_CPP_LEXER_H_
