#ifndef FVAE_TOOLS_LINT_GRAPH_H_
#define FVAE_TOOLS_LINT_GRAPH_H_

#include <algorithm>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/cpp_lexer.h"
#include "tools/tu_facts.h"

/// Cross-TU linking and whole-program analyses for fvae_lint v2.
///
/// LinkProgram() merges per-file TuFacts into one ProgramFacts: a
/// name-indexed function table (header-declared FVAE_HOT/FVAE_NOALLOC
/// attributes merged onto out-of-line definitions) plus the table of
/// class-member lock declarations. Calls are resolved by qualified-name
/// suffix matching with a preference cascade (same class, then same
/// namespace, then every candidate) — deliberately overload-blind and
/// therefore over-approximate: the analyses only ever see *more* paths
/// than the program has, never fewer. Function-pointer dispatch tables
/// (the SIMD kernel layer's `t->softmax_inplace = SoftmaxAvx2;`) are
/// linked through the recorded DispatchBind facts: a member call that
/// resolves to no method falls back to *every* function ever bound to
/// that member name, so `Kernels().softmax_inplace(..)` walks into each
/// per-ISA kernel body instead of vanishing behind the indirection.
///
/// Five analyses run on the linked facts:
///
///   lock-cycle   The lock acquisition-order graph has an edge A -> B when
///                A is declared FVAE_ACQUIRED_BEFORE(B) (or B is declared
///                FVAE_ACQUIRED_AFTER(A)), when B is observed taken while
///                A is held inside one function, or when a function called
///                with A held transitively acquires B. Any cycle is a
///                potential deadlock and is reported with the full path,
///                each edge carrying its provenance (file:line, declared
///                vs observed).
///
///   hot-path     Functions marked FVAE_HOT must not log, do IO, or
///                acquire locks other than ones whose declaration carries
///                FVAE_HOT_LOCK_EXEMPT — transitively through every
///                resolvable callee. FVAE_NOALLOC additionally forbids
///                heap allocation tokens. Violations print the call chain
///                from the annotated root to the offender.
///
///   event-loop   Functions marked FVAE_EVENT_LOOP (EpollLoop callbacks
///                and the methods they run) must not block: no blocking
///                syscalls, sleeps, condvar waits, joins, file IO,
///                non-exempt lock acquisition, or FVAE_MAY_BLOCK callees —
///                transitively, like the hot walk (AnalyzeEventLoops).
///
///   guarded-by   Every access to an FVAE_GUARDED_BY(m) member must occur
///                where `m` is held — portable re-implementation of the
///                core of Clang's -Wthread-safety (AnalyzeGuardedBy).
///
///   verb-switch  A switch over a known enum class (the wire Verb) must be
///                exhaustive or justify its default (AnalyzeEnumSwitches).
///
/// Line-level suppressions: a `fvae-lint: allow(<rule>)` comment on the
/// offending line silences that fact; `allow(hot-path)` on a *call* line
/// cuts that edge out of the hot walk (used where the callee is known to
/// reuse capacity — the runtime operator-new witness in serving_test backs
/// the claim).

namespace fvae::lint {

/// One linter finding. `file` is the path label the content was registered
/// under; `rule` is a stable kebab-case identifier.
struct Finding {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string path;
  std::string content;
};

struct ProgramFacts {
  std::vector<FunctionFacts> functions;
  std::vector<LockDecl> locks;
  std::vector<GuardedDecl> guarded;
  std::vector<SwitchFacts> switches;
  std::vector<EnumDecl> enums;
  std::map<std::string, std::vector<size_t>> functions_by_name;
  std::map<std::string, std::vector<size_t>> locks_by_member;
  // Dispatch-table member name -> function indices ever assigned to it
  // (`t->softmax_inplace = SoftmaxAvx2;` in any registration function).
  // ResolveCall falls back to these for member calls that match no method,
  // keeping runtime-dispatched kernels inside the purity walks.
  std::map<std::string, std::vector<size_t>> dispatch_targets;
  // Member name -> declared class type, kept only when every declaration
  // of that member name across the program agrees on the type. Used to
  // narrow member-call resolution by receiver (`worker->loop.Post(..)`
  // resolves Post against EpollLoop, not against same-class methods).
  std::map<std::string, std::string> member_types;
  // Raw source lines per file, for `fvae-lint: allow(...)` suppressions.
  std::map<std::string, std::vector<std::string>> file_lines;
};

namespace graph_detail {

inline std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  lines.push_back(current);
  return lines;
}

inline bool EndsWithSegment(const std::string& qualified,
                            const std::string& suffix) {
  if (qualified == suffix) return true;
  if (qualified.size() <= suffix.size() + 2) return false;
  return qualified.compare(qualified.size() - suffix.size() - 2, 2, "::") ==
             0 &&
         qualified.compare(qualified.size() - suffix.size(), suffix.size(),
                           suffix) == 0;
}

inline std::string LastSegment(const std::string& qualified) {
  const size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

inline std::string FileStem(const std::string& path) {
  const size_t dot = path.rfind('.');
  const size_t slash = path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path;
  }
  return path.substr(0, dot);
}

}  // namespace graph_detail

/// True when `file:line` carries a `fvae-lint: allow(<rule>)` suppression.
inline bool LineAllows(const ProgramFacts& pf, const std::string& file,
                       size_t line, const std::string& rule) {
  auto it = pf.file_lines.find(file);
  if (it == pf.file_lines.end() || line == 0 || line > it->second.size()) {
    return false;
  }
  return it->second[line - 1].find("fvae-lint: allow(" + rule + ")") !=
         std::string::npos;
}

inline ProgramFacts LinkProgram(const std::vector<SourceFile>& files) {
  ProgramFacts pf;
  std::vector<AttrDecl> attr_decls;
  std::map<std::string, std::set<std::string>> member_type_cands;
  for (const SourceFile& f : files) {
    TuFacts tu = ExtractTuFacts(f.path, LexCpp(f.content));
    for (FunctionFacts& fn : tu.functions) {
      pf.functions.push_back(std::move(fn));
    }
    for (LockDecl& lock : tu.locks) pf.locks.push_back(std::move(lock));
    for (AttrDecl& a : tu.attr_decls) attr_decls.push_back(std::move(a));
    for (GuardedDecl& g : tu.guarded) pf.guarded.push_back(std::move(g));
    for (SwitchFacts& s : tu.switches) pf.switches.push_back(std::move(s));
    for (EnumDecl& e : tu.enums) pf.enums.push_back(std::move(e));
    for (const MemberTypeDecl& m : tu.member_types) {
      member_type_cands[m.member].insert(m.type);
    }
    pf.file_lines[f.path] = graph_detail::SplitLines(f.content);
  }
  for (const auto& [member, types] : member_type_cands) {
    if (types.size() == 1) pf.member_types[member] = *types.begin();
  }
  // Merge prototype attributes onto the matching definitions.
  for (const AttrDecl& a : attr_decls) {
    for (FunctionFacts& fn : pf.functions) {
      if (fn.name == a.name && fn.cls == a.cls && fn.ns == a.ns) {
        fn.hot = fn.hot || a.hot;
        fn.noalloc = fn.noalloc || a.noalloc;
        fn.event_loop = fn.event_loop || a.event_loop;
        fn.may_block = fn.may_block || a.may_block;
        for (const std::string& r : a.requires_locks) {
          fn.requires_locks.push_back(r);
        }
      }
    }
  }
  for (size_t i = 0; i < pf.functions.size(); ++i) {
    pf.functions_by_name[pf.functions[i].name].push_back(i);
  }
  for (size_t i = 0; i < pf.locks.size(); ++i) {
    pf.locks_by_member[pf.locks[i].member].push_back(i);
  }
  // Link dispatch-table registrations: each recorded `t->member = Target;`
  // binds every program function whose qualified name ends with Target.
  // Non-function targets (plain data-member assignments) match nothing and
  // drop out here.
  for (const FunctionFacts& fn : pf.functions) {
    for (const DispatchBind& bind : fn.dispatch_binds) {
      auto it = pf.functions_by_name.find(
          graph_detail::LastSegment(bind.target));
      if (it == pf.functions_by_name.end()) continue;
      std::vector<size_t>& targets = pf.dispatch_targets[bind.member];
      for (size_t i : it->second) {
        if (!graph_detail::EndsWithSegment(pf.functions[i].qualified,
                                           bind.target)) {
          continue;
        }
        if (std::find(targets.begin(), targets.end(), i) == targets.end()) {
          targets.push_back(i);
        }
      }
    }
  }
  return pf;
}

/// Resolves a lock name used inside `fn` to its declaration: same class
/// first, then same namespace, then a unique global match, then the
/// lexicographically first candidate (deterministic). nullptr when no
/// member declaration exists (function-local or foreign locks).
inline const LockDecl* ResolveLock(const ProgramFacts& pf,
                                   const FunctionFacts& fn,
                                   const std::string& name) {
  auto it = pf.locks_by_member.find(name);
  if (it == pf.locks_by_member.end()) return nullptr;
  for (size_t i : it->second) {
    const LockDecl& lock = pf.locks[i];
    if (lock.ns == fn.ns && !fn.cls.empty() &&
        (lock.cls == fn.cls ||
         graph_detail::EndsWithSegment(fn.cls, lock.cls))) {
      return &lock;
    }
  }
  const LockDecl* best = nullptr;
  for (size_t i : it->second) {
    const LockDecl& lock = pf.locks[i];
    if (lock.ns != fn.ns) continue;
    if (best == nullptr || lock.id < best->id) best = &lock;
  }
  if (best != nullptr) return best;
  for (size_t i : it->second) {
    const LockDecl& lock = pf.locks[i];
    if (best == nullptr || lock.id < best->id) best = &lock;
  }
  return best;
}

/// Resolves an annotation argument (possibly qualified) from the context of
/// the declaring lock's class.
inline const LockDecl* ResolveLockArg(const ProgramFacts& pf,
                                      const LockDecl& from,
                                      const std::string& arg) {
  if (arg.find("::") != std::string::npos) {
    for (const LockDecl& lock : pf.locks) {
      if (graph_detail::EndsWithSegment(lock.id, arg)) return &lock;
    }
    return nullptr;
  }
  FunctionFacts ctx;
  ctx.ns = from.ns;
  ctx.cls = from.cls;
  return ResolveLock(pf, ctx, arg);
}

/// Resolves a call site to candidate definitions: qualifier suffix match,
/// member calls restricted to class methods, then the preference cascade
/// same-class > same-namespace > all. A member call that matches no method
/// falls back to the dispatch-table targets bound to that member name
/// (`Kernels().softmax_inplace(..)` -> every per-ISA kernel registered as
/// `t->softmax_inplace = ..`), over-approximating runtime dispatch.
inline std::vector<size_t> ResolveCall(const ProgramFacts& pf,
                                       const FunctionFacts& caller,
                                       const CallSite& call) {
  auto dispatch_fallback = [&pf, &call]() -> std::vector<size_t> {
    if (!call.member_access) return {};
    auto dit = pf.dispatch_targets.find(call.name);
    return dit == pf.dispatch_targets.end() ? std::vector<size_t>{}
                                            : dit->second;
  };
  auto it = pf.functions_by_name.find(call.name);
  if (it == pf.functions_by_name.end()) return dispatch_fallback();
  std::vector<size_t> cands;
  std::string suffix;
  for (const std::string& q : call.quals) suffix += q + "::";
  suffix += call.name;
  for (size_t i : it->second) {
    const FunctionFacts& f = pf.functions[i];
    if (!call.quals.empty() &&
        !graph_detail::EndsWithSegment(f.qualified, suffix)) {
      continue;
    }
    if (call.member_access && f.cls.empty()) continue;
    cands.push_back(i);
  }
  auto narrow = [&pf, &cands](auto pred) {
    std::vector<size_t> kept;
    for (size_t i : cands) {
      if (pred(pf.functions[i])) kept.push_back(i);
    }
    if (!kept.empty()) cands = std::move(kept);
  };
  // Receiver narrowing first: `service_->Lookup(..)` must prefer the class
  // that `service_` is declared as over a same-class method that happens to
  // share the name. Only applies when the receiver's type is known and
  // unambiguous program-wide; narrow() keeps the over-approximation when
  // the type has no method of that name.
  if (call.member_access && !call.receiver.empty()) {
    auto tit = pf.member_types.find(call.receiver);
    if (tit != pf.member_types.end()) {
      const std::string& type = tit->second;
      narrow([&type](const FunctionFacts& f) {
        return f.cls == type || graph_detail::EndsWithSegment(f.cls, type);
      });
    }
  }
  narrow([&caller](const FunctionFacts& f) {
    return !caller.cls.empty() && f.cls == caller.cls && f.ns == caller.ns;
  });
  if (cands.size() > 1) {
    narrow([&caller](const FunctionFacts& f) { return f.ns == caller.ns; });
  }
  if (cands.empty()) return dispatch_fallback();
  return cands;
}

namespace graph_detail {

/// Memoized transitive set of resolved lock ids a function may acquire
/// (its own acquisitions plus every resolvable callee's).
class AcquiredLocks {
 public:
  explicit AcquiredLocks(const ProgramFacts& pf) : pf_(pf) {}

  const std::set<std::string>& Of(size_t fi) {
    auto it = memo_.find(fi);
    if (it != memo_.end()) return it->second;
    // Insert an empty set first: recursion terminates on the partial set.
    auto [slot, inserted] = memo_.emplace(fi, std::set<std::string>());
    (void)inserted;
    const FunctionFacts& fn = pf_.functions[fi];
    std::set<std::string> acc;
    for (const LockAcq& a : fn.acquisitions) {
      const LockDecl* lock = ResolveLock(pf_, fn, a.lock);
      if (lock != nullptr) acc.insert(lock->id);
    }
    for (const CallSite& call : fn.calls) {
      for (size_t ci : ResolveCall(pf_, fn, call)) {
        const std::set<std::string>& sub = Of(ci);
        acc.insert(sub.begin(), sub.end());
      }
    }
    memo_[fi] = std::move(acc);
    return memo_[fi];
  }

 private:
  const ProgramFacts& pf_;
  std::map<size_t, std::set<std::string>> memo_;
};

struct LockEdge {
  std::string to;
  std::string file;
  size_t line = 0;
  std::string why;
};

}  // namespace graph_detail

/// Lock-order verification: builds the acquisition-order graph and reports
/// every distinct cycle with its full path.
inline std::vector<Finding> AnalyzeLockOrder(const ProgramFacts& pf) {
  using graph_detail::LockEdge;
  std::map<std::string, std::vector<LockEdge>> adj;
  std::set<std::pair<std::string, std::string>> have;
  auto add_edge = [&adj, &have, &pf](const std::string& from,
                                     const std::string& to,
                                     const std::string& file, size_t line,
                                     const std::string& why) {
    if (from == to) return;  // same-member self edges: distinct instances
    if (LineAllows(pf, file, line, "lock-cycle")) return;
    if (!have.emplace(from, to).second) return;
    adj[from].push_back({to, file, line, why});
    adj.emplace(to, std::vector<LockEdge>());
  };

  for (const LockDecl& lock : pf.locks) {
    for (const std::string& arg : lock.acquired_before) {
      const LockDecl* other = ResolveLockArg(pf, lock, arg);
      if (other == nullptr) continue;
      add_edge(lock.id, other->id, lock.file, lock.line,
               "declared FVAE_ACQUIRED_BEFORE on " + lock.id);
    }
    for (const std::string& arg : lock.acquired_after) {
      const LockDecl* other = ResolveLockArg(pf, lock, arg);
      if (other == nullptr) continue;
      add_edge(other->id, lock.id, lock.file, lock.line,
               "declared FVAE_ACQUIRED_AFTER on " + lock.id);
    }
  }

  graph_detail::AcquiredLocks acquired(pf);
  for (size_t fi = 0; fi < pf.functions.size(); ++fi) {
    const FunctionFacts& fn = pf.functions[fi];
    for (const LockNest& nest : fn.nests) {
      const LockDecl* held = ResolveLock(pf, fn, nest.held);
      const LockDecl* taken = ResolveLock(pf, fn, nest.acquired);
      if (held == nullptr || taken == nullptr) continue;
      add_edge(held->id, taken->id, fn.file, nest.line,
               "observed in " + fn.qualified);
    }
    for (const CallSite& call : fn.calls) {
      if (call.held.empty()) continue;
      for (size_t ci : ResolveCall(pf, fn, call)) {
        for (const std::string& acquired_id : acquired.Of(ci)) {
          for (const std::string& held_name : call.held) {
            const LockDecl* held = ResolveLock(pf, fn, held_name);
            if (held == nullptr) continue;
            add_edge(held->id, acquired_id, fn.file, call.line,
                     "observed: " + fn.qualified + " calls " +
                         pf.functions[ci].qualified + " holding " + held->id);
          }
        }
      }
    }
  }

  // DFS cycle detection; one finding per distinct cycle node-set.
  std::vector<Finding> findings;
  std::set<std::string> reported;
  std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done
  std::vector<std::pair<std::string, const LockEdge*>> stack;

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    stack.push_back({node, nullptr});
    for (const LockEdge& e : adj[node]) {
      stack.back().second = &e;
      if (color[e.to] == 1) {
        // Extract the cycle from the stack.
        size_t start = 0;
        for (size_t s = 0; s < stack.size(); ++s) {
          if (stack[s].first == e.to) start = s;
        }
        std::vector<std::string> nodes;
        std::ostringstream path;
        for (size_t s = start; s < stack.size(); ++s) {
          nodes.push_back(stack[s].first);
          path << stack[s].first << " -> ";
          const LockEdge* used = stack[s].second;
          path << "[" << used->why << " at " << used->file << ":"
               << used->line << "] ";
        }
        path << e.to;
        std::sort(nodes.begin(), nodes.end());
        std::string key;
        for (const std::string& id : nodes) key += id + "|";
        if (reported.insert(key).second) {
          findings.push_back({e.file, e.line, "lock-cycle",
                              "lock acquisition order cycle: " + path.str()});
        }
      } else if (color[e.to] == 0) {
        dfs(e.to);
      }
    }
    stack.pop_back();
    color[node] = 2;
  };
  for (const auto& [node, edges] : adj) {
    (void)edges;
    if (color[node] == 0) dfs(node);
  }
  return findings;
}

/// Hot-path purity: walks callees from every FVAE_HOT / FVAE_NOALLOC root
/// and reports logging, IO, non-exempt lock acquisition, TraceSpan /
/// FVAE_TRACE_SCOPE construction — plus heap allocation for FVAE_NOALLOC
/// roots — with the root-to-offender chain.
inline std::vector<Finding> AnalyzeHotPaths(const ProgramFacts& pf) {
  std::vector<Finding> findings;
  std::set<std::string> seen;  // rule|file|line dedup across roots
  auto report = [&findings, &seen](const std::string& rule,
                                   const FunctionFacts& fn, size_t line,
                                   const std::string& message) {
    std::ostringstream key;
    key << rule << "|" << fn.file << "|" << line;
    if (seen.insert(key.str()).second) {
      findings.push_back({fn.file, line, rule, message});
    }
  };

  for (size_t root = 0; root < pf.functions.size(); ++root) {
    if (!pf.functions[root].hot) continue;
    const bool noalloc = pf.functions[root].noalloc;
    const std::string root_attr = noalloc ? "FVAE_NOALLOC" : "FVAE_HOT";
    // BFS with parent pointers for chain reconstruction.
    std::map<size_t, size_t> parent;
    std::deque<size_t> queue;
    std::set<size_t> visited;
    queue.push_back(root);
    visited.insert(root);
    auto chain_of = [&parent, &pf, root](size_t fi) {
      std::vector<std::string> parts;
      for (size_t cur = fi;; cur = parent[cur]) {
        parts.push_back(pf.functions[cur].qualified);
        if (cur == root) break;
      }
      std::string chain;
      for (size_t p = parts.size(); p-- > 0;) {
        chain += parts[p];
        if (p != 0) chain += " -> ";
      }
      return chain;
    };
    while (!queue.empty()) {
      const size_t fi = queue.front();
      queue.pop_front();
      const FunctionFacts& fn = pf.functions[fi];
      for (const PurityFact& log : fn.logs) {
        if (LineAllows(pf, fn.file, log.line, "hot-log")) continue;
        report("hot-log", fn, log.line,
               "logging call '" + log.token + "' reachable from " +
                   root_attr + " " + pf.functions[root].qualified + " via " +
                   chain_of(fi));
      }
      for (const PurityFact& io : fn.ios) {
        if (LineAllows(pf, fn.file, io.line, "hot-io")) continue;
        report("hot-io", fn, io.line,
               "IO touch '" + io.token + "' reachable from " + root_attr +
                   " " + pf.functions[root].qualified + " via " +
                   chain_of(fi));
      }
      for (const PurityFact& trace : fn.traces) {
        if (LineAllows(pf, fn.file, trace.line, "hot-trace")) continue;
        report("hot-trace", fn, trace.line,
               "'" + trace.token + "' construction reachable from " +
                   root_attr + " " + pf.functions[root].qualified + " via " +
                   chain_of(fi) +
                   " — TraceSpan locks and may allocate; hot code stages "
                   "spans through SpanScratch::NoteSpan instead");
      }
      for (const LockAcq& acq : fn.acquisitions) {
        const LockDecl* lock = ResolveLock(pf, fn, acq.lock);
        if (lock != nullptr && lock->hot_exempt) continue;
        if (LineAllows(pf, fn.file, acq.line, "hot-lock")) continue;
        report("hot-lock", fn, acq.line,
               "lock '" + (lock != nullptr ? lock->id : acq.lock) +
                   "' (not FVAE_HOT_LOCK_EXEMPT) acquired on path from " +
                   root_attr + " " + pf.functions[root].qualified + " via " +
                   chain_of(fi));
      }
      if (noalloc) {
        for (const PurityFact& alloc : fn.allocs) {
          if (LineAllows(pf, fn.file, alloc.line, "hot-alloc")) continue;
          report("hot-alloc", fn, alloc.line,
                 "heap allocation '" + alloc.token + "' reachable from " +
                     root_attr + " " + pf.functions[root].qualified +
                     " via " + chain_of(fi));
        }
      }
      for (const CallSite& call : fn.calls) {
        if (LineAllows(pf, fn.file, call.line, "hot-path")) continue;
        for (size_t ci : ResolveCall(pf, fn, call)) {
          if (visited.insert(ci).second) {
            parent[ci] = fi;
            queue.push_back(ci);
          }
        }
      }
    }
  }
  return findings;
}

/// Event-loop blocking discipline: walks callees from every FVAE_EVENT_LOOP
/// root and reports anything that can stall the loop thread —
///
///   loop-block      blocking syscalls, sleeps, condvar waits, thread
///                   joins, RetryWithBackoff, recv/send without
///                   MSG_DONTWAIT, anywhere on the reachable chain
///   loop-io         file IO on the chain (sleeps report as loop-block)
///   loop-lock       acquisition of a lock that is neither
///                   FVAE_LOOP_LOCK_EXEMPT nor FVAE_HOT_LOCK_EXEMPT
///   loop-may-block  a call that reaches an FVAE_MAY_BLOCK function; the
///                   walk reports at the call line and does not descend
///
/// `fvae-lint: allow(loop-path)` on a call line cuts that edge out of the
/// walk, mirroring allow(hot-path).
inline std::vector<Finding> AnalyzeEventLoops(const ProgramFacts& pf) {
  std::vector<Finding> findings;
  std::set<std::string> seen;  // rule|file|line dedup across roots
  auto report = [&findings, &seen](const std::string& rule,
                                   const FunctionFacts& fn, size_t line,
                                   const std::string& message) {
    std::ostringstream key;
    key << rule << "|" << fn.file << "|" << line;
    if (seen.insert(key.str()).second) {
      findings.push_back({fn.file, line, rule, message});
    }
  };

  for (size_t root = 0; root < pf.functions.size(); ++root) {
    if (!pf.functions[root].event_loop || pf.functions[root].may_block) {
      continue;
    }
    const std::string& root_name = pf.functions[root].qualified;
    std::map<size_t, size_t> parent;
    std::deque<size_t> queue;
    std::set<size_t> visited;
    queue.push_back(root);
    visited.insert(root);
    auto chain_of = [&parent, &pf, root](size_t fi) {
      std::vector<std::string> parts;
      for (size_t cur = fi;; cur = parent[cur]) {
        parts.push_back(pf.functions[cur].qualified);
        if (cur == root) break;
      }
      std::string chain;
      for (size_t p = parts.size(); p-- > 0;) {
        chain += parts[p];
        if (p != 0) chain += " -> ";
      }
      return chain;
    };
    while (!queue.empty()) {
      const size_t fi = queue.front();
      queue.pop_front();
      const FunctionFacts& fn = pf.functions[fi];
      for (const PurityFact& b : fn.blocking) {
        if (LineAllows(pf, fn.file, b.line, "loop-block")) continue;
        report("loop-block", fn, b.line,
               "blocking call '" + b.token +
                   "' reachable from FVAE_EVENT_LOOP " + root_name + " via " +
                   chain_of(fi));
      }
      for (const PurityFact& io : fn.ios) {
        // Sleeps sit in both token sets; they report as loop-block above.
        if (facts_detail::IsBlockingCall(io.token)) continue;
        if (LineAllows(pf, fn.file, io.line, "loop-io")) continue;
        report("loop-io", fn, io.line,
               "IO touch '" + io.token + "' reachable from FVAE_EVENT_LOOP " +
                   root_name + " via " + chain_of(fi));
      }
      for (const LockAcq& acq : fn.acquisitions) {
        const LockDecl* lock = ResolveLock(pf, fn, acq.lock);
        if (lock != nullptr && (lock->hot_exempt || lock->loop_exempt)) {
          continue;
        }
        if (LineAllows(pf, fn.file, acq.line, "loop-lock")) continue;
        report("loop-lock", fn, acq.line,
               "lock '" + (lock != nullptr ? lock->id : acq.lock) +
                   "' (neither FVAE_LOOP_LOCK_EXEMPT nor "
                   "FVAE_HOT_LOCK_EXEMPT) acquired on loop path from " +
                   root_name + " via " + chain_of(fi));
      }
      for (const CallSite& call : fn.calls) {
        if (LineAllows(pf, fn.file, call.line, "loop-path")) continue;
        for (size_t ci : ResolveCall(pf, fn, call)) {
          const FunctionFacts& callee = pf.functions[ci];
          if (callee.may_block) {
            if (!LineAllows(pf, fn.file, call.line, "loop-may-block")) {
              report("loop-may-block", fn, call.line,
                     "call to FVAE_MAY_BLOCK " + callee.qualified +
                         " from FVAE_EVENT_LOOP " + root_name + " via " +
                         chain_of(fi));
            }
            continue;  // the annotation concedes the body; do not descend
          }
          if (visited.insert(ci).second) {
            parent[ci] = fi;
            queue.push_back(ci);
          }
        }
      }
    }
  }
  return findings;
}

/// Portable guarded-by enforcement: every recorded read/write of an
/// FVAE_GUARDED_BY(m) member must occur where `m` is held — via an RAII
/// guard in scope, a manual Lock() without intervening Unlock(), or an
/// FVAE_REQUIRES(m) on the enclosing function (prototype annotations are
/// merged onto definitions by LinkProgram).
///
/// Model (docs/ARCHITECTURE.md §7 spells out the deltas vs Clang):
///  - bare accesses (`member_`) bind to guarded members of the enclosing
///    class (suffix match on nested classes);
///  - receiver-form accesses (`obj.member` / `obj->member`) are enforced
///    only within the declaring component — the access's file must share
///    the declaring header's stem (`src/obs/trace.h` covers
///    `src/obs/trace.cc`) — because binding foreign receivers by member
///    name alone would misfire on unrelated fields (e.g. epoll_event's
///    `events` vs a guarded `events` buffer);
///  - constructors and destructors are exempt (the object is not shared);
///  - a lock name satisfies a guard when it matches the guard expression's
///    last segment, so `MutexLock l(buffer.mutex)` satisfies
///    FVAE_GUARDED_BY(mutex) on the buffer's fields.
/// Escape hatch: `fvae-lint: allow(guarded-by)` on the access line.
inline std::vector<Finding> AnalyzeGuardedBy(const ProgramFacts& pf) {
  std::map<std::string, std::vector<const GuardedDecl*>> by_member;
  for (const GuardedDecl& g : pf.guarded) by_member[g.member].push_back(&g);
  std::vector<Finding> findings;
  std::set<std::string> seen;
  for (const FunctionFacts& fn : pf.functions) {
    if (fn.accesses.empty()) continue;
    if (!fn.cls.empty() &&
        (fn.name == graph_detail::LastSegment(fn.cls) || fn.name[0] == '~')) {
      continue;  // ctor/dtor: the object is not yet / no longer shared
    }
    for (const MemberAccess& access : fn.accesses) {
      auto it = by_member.find(access.member);
      if (it == by_member.end()) continue;
      std::vector<const GuardedDecl*> cands;
      for (const GuardedDecl* g : it->second) {
        if (access.receiver.empty()) {
          if (g->ns == fn.ns && !fn.cls.empty() &&
              (g->cls == fn.cls ||
               graph_detail::EndsWithSegment(fn.cls, g->cls))) {
            cands.push_back(g);
          }
        } else if (graph_detail::FileStem(g->file) ==
                   graph_detail::FileStem(fn.file)) {
          cands.push_back(g);
        }
      }
      if (cands.empty()) continue;
      bool satisfied = false;
      for (const GuardedDecl* g : cands) {
        const std::string want = graph_detail::LastSegment(g->guard);
        for (const std::string& h : access.held) {
          if (h == want || h == g->guard) {
            satisfied = true;
            break;
          }
        }
        for (const std::string& r : fn.requires_locks) {
          if (satisfied) break;
          if (graph_detail::LastSegment(r) == want) satisfied = true;
        }
        if (satisfied) break;
      }
      if (satisfied) continue;
      if (LineAllows(pf, fn.file, access.line, "guarded-by")) continue;
      std::ostringstream key;
      key << fn.file << "|" << access.line << "|" << access.member;
      if (!seen.insert(key.str()).second) continue;
      const GuardedDecl* g = cands.front();
      std::ostringstream msg;
      msg << "'" << access.member << "' is FVAE_GUARDED_BY(" << g->guard
          << ") (declared at " << g->file << ":" << g->line
          << ") but is accessed in " << fn.qualified << " without holding '"
          << g->guard << "'";
      findings.push_back({fn.file, access.line, "guarded-by", msg.str()});
    }
  }
  return findings;
}

namespace graph_detail {

/// A `default:` is a justified escape from exhaustiveness only when it
/// carries a comment (on its line or the one above) saying why.
inline bool DefaultJustified(const ProgramFacts& pf, const SwitchFacts& sw) {
  auto it = pf.file_lines.find(sw.file);
  if (it == pf.file_lines.end()) return false;
  const size_t lines[] = {sw.default_line, sw.default_line - 1};
  for (size_t l : lines) {
    if (l == 0 || l > it->second.size()) continue;
    const std::string& text = it->second[l - 1];
    const size_t pos = text.find("//");
    if (pos != std::string::npos &&
        text.find_first_not_of(" /", pos) != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace graph_detail

/// Exhaustive-switch enforcement for wire enums: a `switch` whose case
/// labels name a known `enum class` (e.g. `case Verb::kLookup:`) must
/// either cover every enumerator or carry a `default:` with a justifying
/// comment — so adding a protocol verb cannot silently skip a handler.
/// Suppression: `fvae-lint: allow(verb-switch)` on the switch line.
inline std::vector<Finding> AnalyzeEnumSwitches(const ProgramFacts& pf) {
  std::vector<Finding> findings;
  for (const SwitchFacts& sw : pf.switches) {
    const EnumDecl* en = nullptr;
    std::set<std::string> covered;
    for (const std::string& chain : sw.cases) {
      const size_t pos = chain.rfind("::");
      if (pos == std::string::npos) continue;
      const std::string prefix = chain.substr(0, pos);
      const std::string label = chain.substr(pos + 2);
      for (const EnumDecl& cand : pf.enums) {
        std::string qual = cand.ns;
        if (!cand.cls.empty()) {
          qual += qual.empty() ? cand.cls : "::" + cand.cls;
        }
        qual += qual.empty() ? cand.name : "::" + cand.name;
        if (qual == prefix || graph_detail::EndsWithSegment(qual, prefix)) {
          en = &cand;
          covered.insert(label);
          break;
        }
      }
    }
    if (en == nullptr) continue;
    std::vector<std::string> missing;
    for (const std::string& e : en->enumerators) {
      if (covered.count(e) == 0) missing.push_back(e);
    }
    if (missing.empty()) continue;
    if (sw.has_default && graph_detail::DefaultJustified(pf, sw)) continue;
    if (LineAllows(pf, sw.file, sw.line, "verb-switch")) continue;
    std::ostringstream msg;
    msg << "switch on " << en->name << " in " << sw.function
        << " does not handle ";
    for (size_t m = 0; m < missing.size(); ++m) {
      if (m != 0) msg << ", ";
      msg << en->name << "::" << missing[m];
    }
    msg << (sw.has_default
                ? " and its default: has no justifying comment"
                : " and has no default:");
    findings.push_back({sw.file, sw.line, "verb-switch", msg.str()});
  }
  return findings;
}

/// Wall-clock cost of each whole-program pass; surfaced in the lint report
/// and enforced by the fvae_lint ctest's --budget-ms self-runtime gate.
struct AnalysisTiming {
  double link_ms = 0;
  double lock_cycle_ms = 0;
  double hot_path_ms = 0;
  double event_loop_ms = 0;
  double guarded_by_ms = 0;
  double verb_switch_ms = 0;
};

/// Runs the whole-program analyses (lock-cycle, hot-path, event-loop,
/// guarded-by, verb-switch) over a file set.
inline std::vector<Finding> AnalyzeProgram(const std::vector<SourceFile>& files,
                                           AnalysisTiming* timing = nullptr) {
  using Clock = std::chrono::steady_clock;
  auto ms = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  const auto t0 = Clock::now();
  const ProgramFacts pf = LinkProgram(files);
  const auto t1 = Clock::now();
  std::vector<Finding> findings = AnalyzeLockOrder(pf);
  const auto t2 = Clock::now();
  auto append = [&findings](std::vector<Finding> more) {
    findings.insert(findings.end(), more.begin(), more.end());
  };
  append(AnalyzeHotPaths(pf));
  const auto t3 = Clock::now();
  append(AnalyzeEventLoops(pf));
  const auto t4 = Clock::now();
  append(AnalyzeGuardedBy(pf));
  const auto t5 = Clock::now();
  append(AnalyzeEnumSwitches(pf));
  const auto t6 = Clock::now();
  if (timing != nullptr) {
    timing->link_ms = ms(t0, t1);
    timing->lock_cycle_ms = ms(t1, t2);
    timing->hot_path_ms = ms(t2, t3);
    timing->event_loop_ms = ms(t3, t4);
    timing->guarded_by_ms = ms(t4, t5);
    timing->verb_switch_ms = ms(t5, t6);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

}  // namespace fvae::lint

#endif  // FVAE_TOOLS_LINT_GRAPH_H_
