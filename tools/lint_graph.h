#ifndef FVAE_TOOLS_LINT_GRAPH_H_
#define FVAE_TOOLS_LINT_GRAPH_H_

#include <algorithm>
#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/cfg.h"
#include "tools/cpp_lexer.h"
#include "tools/dataflow.h"
#include "tools/tu_facts.h"

/// Cross-TU linking and whole-program analyses for fvae_lint v2.
///
/// LinkProgram() merges per-file TuFacts into one ProgramFacts: a
/// name-indexed function table (header-declared FVAE_HOT/FVAE_NOALLOC
/// attributes merged onto out-of-line definitions) plus the table of
/// class-member lock declarations. Calls are resolved by qualified-name
/// suffix matching with a preference cascade (same class, then same
/// namespace, then every candidate) — deliberately overload-blind and
/// therefore over-approximate: the analyses only ever see *more* paths
/// than the program has, never fewer. Function-pointer dispatch tables
/// (the SIMD kernel layer's `t->softmax_inplace = SoftmaxAvx2;`) are
/// linked through the recorded DispatchBind facts: a member call that
/// resolves to no method falls back to *every* function ever bound to
/// that member name, so `Kernels().softmax_inplace(..)` walks into each
/// per-ISA kernel body instead of vanishing behind the indirection.
///
/// Five analyses run on the linked facts:
///
///   lock-cycle   The lock acquisition-order graph has an edge A -> B when
///                A is declared FVAE_ACQUIRED_BEFORE(B) (or B is declared
///                FVAE_ACQUIRED_AFTER(A)), when B is observed taken while
///                A is held inside one function, or when a function called
///                with A held transitively acquires B. Any cycle is a
///                potential deadlock and is reported with the full path,
///                each edge carrying its provenance (file:line, declared
///                vs observed).
///
///   hot-path     Functions marked FVAE_HOT must not log, do IO, or
///                acquire locks other than ones whose declaration carries
///                FVAE_HOT_LOCK_EXEMPT — transitively through every
///                resolvable callee. FVAE_NOALLOC additionally forbids
///                heap allocation tokens. Violations print the call chain
///                from the annotated root to the offender.
///
///   event-loop   Functions marked FVAE_EVENT_LOOP (EpollLoop callbacks
///                and the methods they run) must not block: no blocking
///                syscalls, sleeps, condvar waits, joins, file IO,
///                non-exempt lock acquisition, or FVAE_MAY_BLOCK callees —
///                transitively, like the hot walk (AnalyzeEventLoops).
///
///   guarded-by   Every access to an FVAE_GUARDED_BY(m) member must occur
///                where `m` is held — portable re-implementation of the
///                core of Clang's -Wthread-safety (AnalyzeGuardedBy).
///
///   verb-switch  A switch over a known enum class (the wire Verb) must be
///                exhaustive or justify its default (AnalyzeEnumSwitches).
///
/// Line-level suppressions: a `fvae-lint: allow(<rule>)` comment on the
/// offending line silences that fact; `allow(hot-path)` on a *call* line
/// cuts that edge out of the hot walk (used where the callee is known to
/// reuse capacity — the runtime operator-new witness in serving_test backs
/// the claim).

namespace fvae::lint {

/// One linter finding. `file` is the path label the content was registered
/// under; `rule` is a stable kebab-case identifier.
struct Finding {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string path;
  std::string content;
};

struct ProgramFacts {
  std::vector<FunctionFacts> functions;
  std::vector<LockDecl> locks;
  std::vector<GuardedDecl> guarded;
  std::vector<SwitchFacts> switches;
  std::vector<EnumDecl> enums;
  std::map<std::string, std::vector<size_t>> functions_by_name;
  std::map<std::string, std::vector<size_t>> locks_by_member;
  // Dispatch-table member name -> function indices ever assigned to it
  // (`t->softmax_inplace = SoftmaxAvx2;` in any registration function).
  // ResolveCall falls back to these for member calls that match no method,
  // keeping runtime-dispatched kernels inside the purity walks.
  std::map<std::string, std::vector<size_t>> dispatch_targets;
  // Member name -> declared class type, kept only when every declaration
  // of that member name across the program agrees on the type. Used to
  // narrow member-call resolution by receiver (`worker->loop.Post(..)`
  // resolves Post against EpollLoop, not against same-class methods).
  std::map<std::string, std::string> member_types;
  // Raw source lines per file, for `fvae-lint: allow(...)` suppressions.
  std::map<std::string, std::vector<std::string>> file_lines;
  // Token stream per file (the one ExtractTuFacts consumed), kept so the
  // CFG/dataflow layer can re-walk function bodies by token range.
  std::map<std::string, std::vector<Tok>> file_tokens;
};

namespace graph_detail {

inline std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  lines.push_back(current);
  return lines;
}

inline bool EndsWithSegment(const std::string& qualified,
                            const std::string& suffix) {
  if (qualified == suffix) return true;
  if (qualified.size() <= suffix.size() + 2) return false;
  return qualified.compare(qualified.size() - suffix.size() - 2, 2, "::") ==
             0 &&
         qualified.compare(qualified.size() - suffix.size(), suffix.size(),
                           suffix) == 0;
}

inline std::string LastSegment(const std::string& qualified) {
  const size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

inline std::string FileStem(const std::string& path) {
  const size_t dot = path.rfind('.');
  const size_t slash = path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path;
  }
  return path.substr(0, dot);
}

}  // namespace graph_detail

/// True when `file:line` carries a `fvae-lint: allow(<rule>)` suppression
/// (single rule or a comma-separated list; see SuppressionAllows).
inline bool LineAllows(const ProgramFacts& pf, const std::string& file,
                       size_t line, const std::string& rule) {
  auto it = pf.file_lines.find(file);
  if (it == pf.file_lines.end() || line == 0 || line > it->second.size()) {
    return false;
  }
  return SuppressionAllows(it->second[line - 1], rule);
}

inline ProgramFacts LinkProgram(const std::vector<SourceFile>& files) {
  ProgramFacts pf;
  std::vector<AttrDecl> attr_decls;
  std::map<std::string, std::set<std::string>> member_type_cands;
  for (const SourceFile& f : files) {
    std::vector<Tok> tokens = LexCpp(f.content);
    TuFacts tu = ExtractTuFacts(f.path, tokens);
    pf.file_tokens[f.path] = std::move(tokens);
    for (FunctionFacts& fn : tu.functions) {
      pf.functions.push_back(std::move(fn));
    }
    for (LockDecl& lock : tu.locks) pf.locks.push_back(std::move(lock));
    for (AttrDecl& a : tu.attr_decls) attr_decls.push_back(std::move(a));
    for (GuardedDecl& g : tu.guarded) pf.guarded.push_back(std::move(g));
    for (SwitchFacts& s : tu.switches) pf.switches.push_back(std::move(s));
    for (EnumDecl& e : tu.enums) pf.enums.push_back(std::move(e));
    for (const MemberTypeDecl& m : tu.member_types) {
      member_type_cands[m.member].insert(m.type);
    }
    pf.file_lines[f.path] = graph_detail::SplitLines(f.content);
  }
  for (const auto& [member, types] : member_type_cands) {
    if (types.size() == 1) pf.member_types[member] = *types.begin();
  }
  // Merge prototype attributes onto the matching definitions.
  for (const AttrDecl& a : attr_decls) {
    for (FunctionFacts& fn : pf.functions) {
      if (fn.name == a.name && fn.cls == a.cls && fn.ns == a.ns) {
        fn.hot = fn.hot || a.hot;
        fn.noalloc = fn.noalloc || a.noalloc;
        fn.event_loop = fn.event_loop || a.event_loop;
        fn.may_block = fn.may_block || a.may_block;
        for (const std::string& r : a.requires_locks) {
          fn.requires_locks.push_back(r);
        }
      }
    }
  }
  for (size_t i = 0; i < pf.functions.size(); ++i) {
    pf.functions_by_name[pf.functions[i].name].push_back(i);
  }
  for (size_t i = 0; i < pf.locks.size(); ++i) {
    pf.locks_by_member[pf.locks[i].member].push_back(i);
  }
  // Link dispatch-table registrations: each recorded `t->member = Target;`
  // binds every program function whose qualified name ends with Target.
  // Non-function targets (plain data-member assignments) match nothing and
  // drop out here.
  for (const FunctionFacts& fn : pf.functions) {
    for (const DispatchBind& bind : fn.dispatch_binds) {
      auto it = pf.functions_by_name.find(
          graph_detail::LastSegment(bind.target));
      if (it == pf.functions_by_name.end()) continue;
      std::vector<size_t>& targets = pf.dispatch_targets[bind.member];
      for (size_t i : it->second) {
        if (!graph_detail::EndsWithSegment(pf.functions[i].qualified,
                                           bind.target)) {
          continue;
        }
        if (std::find(targets.begin(), targets.end(), i) == targets.end()) {
          targets.push_back(i);
        }
      }
    }
  }
  return pf;
}

/// Resolves a lock name used inside `fn` to its declaration: same class
/// first, then same namespace, then a unique global match, then the
/// lexicographically first candidate (deterministic). nullptr when no
/// member declaration exists (function-local or foreign locks).
inline const LockDecl* ResolveLock(const ProgramFacts& pf,
                                   const FunctionFacts& fn,
                                   const std::string& name) {
  auto it = pf.locks_by_member.find(name);
  if (it == pf.locks_by_member.end()) return nullptr;
  for (size_t i : it->second) {
    const LockDecl& lock = pf.locks[i];
    if (lock.ns == fn.ns && !fn.cls.empty() &&
        (lock.cls == fn.cls ||
         graph_detail::EndsWithSegment(fn.cls, lock.cls))) {
      return &lock;
    }
  }
  const LockDecl* best = nullptr;
  for (size_t i : it->second) {
    const LockDecl& lock = pf.locks[i];
    if (lock.ns != fn.ns) continue;
    if (best == nullptr || lock.id < best->id) best = &lock;
  }
  if (best != nullptr) return best;
  for (size_t i : it->second) {
    const LockDecl& lock = pf.locks[i];
    if (best == nullptr || lock.id < best->id) best = &lock;
  }
  return best;
}

/// Resolves an annotation argument (possibly qualified) from the context of
/// the declaring lock's class.
inline const LockDecl* ResolveLockArg(const ProgramFacts& pf,
                                      const LockDecl& from,
                                      const std::string& arg) {
  if (arg.find("::") != std::string::npos) {
    for (const LockDecl& lock : pf.locks) {
      if (graph_detail::EndsWithSegment(lock.id, arg)) return &lock;
    }
    return nullptr;
  }
  FunctionFacts ctx;
  ctx.ns = from.ns;
  ctx.cls = from.cls;
  return ResolveLock(pf, ctx, arg);
}

/// Resolves a call site to candidate definitions: qualifier suffix match,
/// member calls restricted to class methods, then the preference cascade
/// same-class > same-namespace > all. A member call that matches no method
/// falls back to the dispatch-table targets bound to that member name
/// (`Kernels().softmax_inplace(..)` -> every per-ISA kernel registered as
/// `t->softmax_inplace = ..`), over-approximating runtime dispatch.
inline std::vector<size_t> ResolveCall(const ProgramFacts& pf,
                                       const FunctionFacts& caller,
                                       const CallSite& call) {
  auto dispatch_fallback = [&pf, &call]() -> std::vector<size_t> {
    if (!call.member_access) return {};
    auto dit = pf.dispatch_targets.find(call.name);
    return dit == pf.dispatch_targets.end() ? std::vector<size_t>{}
                                            : dit->second;
  };
  auto it = pf.functions_by_name.find(call.name);
  if (it == pf.functions_by_name.end()) return dispatch_fallback();
  std::vector<size_t> cands;
  std::string suffix;
  for (const std::string& q : call.quals) suffix += q + "::";
  suffix += call.name;
  for (size_t i : it->second) {
    const FunctionFacts& f = pf.functions[i];
    if (!call.quals.empty() &&
        !graph_detail::EndsWithSegment(f.qualified, suffix)) {
      continue;
    }
    if (call.member_access && f.cls.empty()) continue;
    cands.push_back(i);
  }
  auto narrow = [&pf, &cands](auto pred) {
    std::vector<size_t> kept;
    for (size_t i : cands) {
      if (pred(pf.functions[i])) kept.push_back(i);
    }
    if (!kept.empty()) cands = std::move(kept);
  };
  // Receiver narrowing first: `service_->Lookup(..)` must prefer the class
  // that `service_` is declared as over a same-class method that happens to
  // share the name. Only applies when the receiver's type is known and
  // unambiguous program-wide; narrow() keeps the over-approximation when
  // the type has no method of that name.
  if (call.member_access && !call.receiver.empty()) {
    auto tit = pf.member_types.find(call.receiver);
    if (tit != pf.member_types.end()) {
      const std::string& type = tit->second;
      narrow([&type](const FunctionFacts& f) {
        return f.cls == type || graph_detail::EndsWithSegment(f.cls, type);
      });
    }
  }
  narrow([&caller](const FunctionFacts& f) {
    return !caller.cls.empty() && f.cls == caller.cls && f.ns == caller.ns;
  });
  if (cands.size() > 1) {
    narrow([&caller](const FunctionFacts& f) { return f.ns == caller.ns; });
  }
  if (cands.empty()) return dispatch_fallback();
  return cands;
}

namespace graph_detail {

/// Memoized transitive set of resolved lock ids a function may acquire
/// (its own acquisitions plus every resolvable callee's).
class AcquiredLocks {
 public:
  explicit AcquiredLocks(const ProgramFacts& pf) : pf_(pf) {}

  const std::set<std::string>& Of(size_t fi) {
    auto it = memo_.find(fi);
    if (it != memo_.end()) return it->second;
    // Insert an empty set first: recursion terminates on the partial set.
    auto [slot, inserted] = memo_.emplace(fi, std::set<std::string>());
    (void)inserted;
    const FunctionFacts& fn = pf_.functions[fi];
    std::set<std::string> acc;
    for (const LockAcq& a : fn.acquisitions) {
      const LockDecl* lock = ResolveLock(pf_, fn, a.lock);
      if (lock != nullptr) acc.insert(lock->id);
    }
    for (const CallSite& call : fn.calls) {
      for (size_t ci : ResolveCall(pf_, fn, call)) {
        const std::set<std::string>& sub = Of(ci);
        acc.insert(sub.begin(), sub.end());
      }
    }
    memo_[fi] = std::move(acc);
    return memo_[fi];
  }

 private:
  const ProgramFacts& pf_;
  std::map<size_t, std::set<std::string>> memo_;
};

struct LockEdge {
  std::string to;
  std::string file;
  size_t line = 0;
  std::string why;
};

}  // namespace graph_detail

/// Lock-order verification: builds the acquisition-order graph and reports
/// every distinct cycle with its full path.
inline std::vector<Finding> AnalyzeLockOrder(const ProgramFacts& pf) {
  using graph_detail::LockEdge;
  std::map<std::string, std::vector<LockEdge>> adj;
  std::set<std::pair<std::string, std::string>> have;
  auto add_edge = [&adj, &have, &pf](const std::string& from,
                                     const std::string& to,
                                     const std::string& file, size_t line,
                                     const std::string& why) {
    if (from == to) return;  // same-member self edges: distinct instances
    if (LineAllows(pf, file, line, "lock-cycle")) return;
    if (!have.emplace(from, to).second) return;
    adj[from].push_back({to, file, line, why});
    adj.emplace(to, std::vector<LockEdge>());
  };

  for (const LockDecl& lock : pf.locks) {
    for (const std::string& arg : lock.acquired_before) {
      const LockDecl* other = ResolveLockArg(pf, lock, arg);
      if (other == nullptr) continue;
      add_edge(lock.id, other->id, lock.file, lock.line,
               "declared FVAE_ACQUIRED_BEFORE on " + lock.id);
    }
    for (const std::string& arg : lock.acquired_after) {
      const LockDecl* other = ResolveLockArg(pf, lock, arg);
      if (other == nullptr) continue;
      add_edge(other->id, lock.id, lock.file, lock.line,
               "declared FVAE_ACQUIRED_AFTER on " + lock.id);
    }
  }

  graph_detail::AcquiredLocks acquired(pf);
  for (size_t fi = 0; fi < pf.functions.size(); ++fi) {
    const FunctionFacts& fn = pf.functions[fi];
    for (const LockNest& nest : fn.nests) {
      const LockDecl* held = ResolveLock(pf, fn, nest.held);
      const LockDecl* taken = ResolveLock(pf, fn, nest.acquired);
      if (held == nullptr || taken == nullptr) continue;
      add_edge(held->id, taken->id, fn.file, nest.line,
               "observed in " + fn.qualified);
    }
    for (const CallSite& call : fn.calls) {
      if (call.held.empty()) continue;
      for (size_t ci : ResolveCall(pf, fn, call)) {
        for (const std::string& acquired_id : acquired.Of(ci)) {
          for (const std::string& held_name : call.held) {
            const LockDecl* held = ResolveLock(pf, fn, held_name);
            if (held == nullptr) continue;
            add_edge(held->id, acquired_id, fn.file, call.line,
                     "observed: " + fn.qualified + " calls " +
                         pf.functions[ci].qualified + " holding " + held->id);
          }
        }
      }
    }
  }

  // DFS cycle detection; one finding per distinct cycle node-set.
  std::vector<Finding> findings;
  std::set<std::string> reported;
  std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done
  std::vector<std::pair<std::string, const LockEdge*>> stack;

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    stack.push_back({node, nullptr});
    for (const LockEdge& e : adj[node]) {
      stack.back().second = &e;
      if (color[e.to] == 1) {
        // Extract the cycle from the stack.
        size_t start = 0;
        for (size_t s = 0; s < stack.size(); ++s) {
          if (stack[s].first == e.to) start = s;
        }
        std::vector<std::string> nodes;
        std::ostringstream path;
        for (size_t s = start; s < stack.size(); ++s) {
          nodes.push_back(stack[s].first);
          path << stack[s].first << " -> ";
          const LockEdge* used = stack[s].second;
          path << "[" << used->why << " at " << used->file << ":"
               << used->line << "] ";
        }
        path << e.to;
        std::sort(nodes.begin(), nodes.end());
        std::string key;
        for (const std::string& id : nodes) key += id + "|";
        if (reported.insert(key).second) {
          findings.push_back({e.file, e.line, "lock-cycle",
                              "lock acquisition order cycle: " + path.str()});
        }
      } else if (color[e.to] == 0) {
        dfs(e.to);
      }
    }
    stack.pop_back();
    color[node] = 2;
  };
  for (const auto& [node, edges] : adj) {
    (void)edges;
    if (color[node] == 0) dfs(node);
  }
  return findings;
}

/// Hot-path purity: walks callees from every FVAE_HOT / FVAE_NOALLOC root
/// and reports logging, IO, non-exempt lock acquisition, TraceSpan /
/// FVAE_TRACE_SCOPE construction — plus heap allocation for FVAE_NOALLOC
/// roots — with the root-to-offender chain.
inline std::vector<Finding> AnalyzeHotPaths(const ProgramFacts& pf) {
  std::vector<Finding> findings;
  std::set<std::string> seen;  // rule|file|line dedup across roots
  auto report = [&findings, &seen](const std::string& rule,
                                   const FunctionFacts& fn, size_t line,
                                   const std::string& message) {
    std::ostringstream key;
    key << rule << "|" << fn.file << "|" << line;
    if (seen.insert(key.str()).second) {
      findings.push_back({fn.file, line, rule, message});
    }
  };

  for (size_t root = 0; root < pf.functions.size(); ++root) {
    if (!pf.functions[root].hot) continue;
    const bool noalloc = pf.functions[root].noalloc;
    const std::string root_attr = noalloc ? "FVAE_NOALLOC" : "FVAE_HOT";
    // BFS with parent pointers for chain reconstruction.
    std::map<size_t, size_t> parent;
    std::deque<size_t> queue;
    std::set<size_t> visited;
    queue.push_back(root);
    visited.insert(root);
    auto chain_of = [&parent, &pf, root](size_t fi) {
      std::vector<std::string> parts;
      for (size_t cur = fi;; cur = parent[cur]) {
        parts.push_back(pf.functions[cur].qualified);
        if (cur == root) break;
      }
      std::string chain;
      for (size_t p = parts.size(); p-- > 0;) {
        chain += parts[p];
        if (p != 0) chain += " -> ";
      }
      return chain;
    };
    while (!queue.empty()) {
      const size_t fi = queue.front();
      queue.pop_front();
      const FunctionFacts& fn = pf.functions[fi];
      for (const PurityFact& log : fn.logs) {
        if (LineAllows(pf, fn.file, log.line, "hot-log")) continue;
        report("hot-log", fn, log.line,
               "logging call '" + log.token + "' reachable from " +
                   root_attr + " " + pf.functions[root].qualified + " via " +
                   chain_of(fi));
      }
      for (const PurityFact& io : fn.ios) {
        if (LineAllows(pf, fn.file, io.line, "hot-io")) continue;
        report("hot-io", fn, io.line,
               "IO touch '" + io.token + "' reachable from " + root_attr +
                   " " + pf.functions[root].qualified + " via " +
                   chain_of(fi));
      }
      for (const PurityFact& trace : fn.traces) {
        if (LineAllows(pf, fn.file, trace.line, "hot-trace")) continue;
        report("hot-trace", fn, trace.line,
               "'" + trace.token + "' construction reachable from " +
                   root_attr + " " + pf.functions[root].qualified + " via " +
                   chain_of(fi) +
                   " — TraceSpan locks and may allocate; hot code stages "
                   "spans through SpanScratch::NoteSpan instead");
      }
      for (const LockAcq& acq : fn.acquisitions) {
        const LockDecl* lock = ResolveLock(pf, fn, acq.lock);
        if (lock != nullptr && lock->hot_exempt) continue;
        if (LineAllows(pf, fn.file, acq.line, "hot-lock")) continue;
        report("hot-lock", fn, acq.line,
               "lock '" + (lock != nullptr ? lock->id : acq.lock) +
                   "' (not FVAE_HOT_LOCK_EXEMPT) acquired on path from " +
                   root_attr + " " + pf.functions[root].qualified + " via " +
                   chain_of(fi));
      }
      if (noalloc) {
        for (const PurityFact& alloc : fn.allocs) {
          if (LineAllows(pf, fn.file, alloc.line, "hot-alloc")) continue;
          report("hot-alloc", fn, alloc.line,
                 "heap allocation '" + alloc.token + "' reachable from " +
                     root_attr + " " + pf.functions[root].qualified +
                     " via " + chain_of(fi));
        }
      }
      for (const CallSite& call : fn.calls) {
        if (LineAllows(pf, fn.file, call.line, "hot-path")) continue;
        for (size_t ci : ResolveCall(pf, fn, call)) {
          if (visited.insert(ci).second) {
            parent[ci] = fi;
            queue.push_back(ci);
          }
        }
      }
    }
  }
  return findings;
}

/// Event-loop blocking discipline: walks callees from every FVAE_EVENT_LOOP
/// root and reports anything that can stall the loop thread —
///
///   loop-block      blocking syscalls, sleeps, condvar waits, thread
///                   joins, RetryWithBackoff, recv/send without
///                   MSG_DONTWAIT, anywhere on the reachable chain
///   loop-io         file IO on the chain (sleeps report as loop-block)
///   loop-lock       acquisition of a lock that is neither
///                   FVAE_LOOP_LOCK_EXEMPT nor FVAE_HOT_LOCK_EXEMPT
///   loop-may-block  a call that reaches an FVAE_MAY_BLOCK function; the
///                   walk reports at the call line and does not descend
///
/// `fvae-lint: allow(loop-path)` on a call line cuts that edge out of the
/// walk, mirroring allow(hot-path).
inline std::vector<Finding> AnalyzeEventLoops(const ProgramFacts& pf) {
  std::vector<Finding> findings;
  std::set<std::string> seen;  // rule|file|line dedup across roots
  auto report = [&findings, &seen](const std::string& rule,
                                   const FunctionFacts& fn, size_t line,
                                   const std::string& message) {
    std::ostringstream key;
    key << rule << "|" << fn.file << "|" << line;
    if (seen.insert(key.str()).second) {
      findings.push_back({fn.file, line, rule, message});
    }
  };

  for (size_t root = 0; root < pf.functions.size(); ++root) {
    if (!pf.functions[root].event_loop || pf.functions[root].may_block) {
      continue;
    }
    const std::string& root_name = pf.functions[root].qualified;
    std::map<size_t, size_t> parent;
    std::deque<size_t> queue;
    std::set<size_t> visited;
    queue.push_back(root);
    visited.insert(root);
    auto chain_of = [&parent, &pf, root](size_t fi) {
      std::vector<std::string> parts;
      for (size_t cur = fi;; cur = parent[cur]) {
        parts.push_back(pf.functions[cur].qualified);
        if (cur == root) break;
      }
      std::string chain;
      for (size_t p = parts.size(); p-- > 0;) {
        chain += parts[p];
        if (p != 0) chain += " -> ";
      }
      return chain;
    };
    while (!queue.empty()) {
      const size_t fi = queue.front();
      queue.pop_front();
      const FunctionFacts& fn = pf.functions[fi];
      for (const PurityFact& b : fn.blocking) {
        if (LineAllows(pf, fn.file, b.line, "loop-block")) continue;
        report("loop-block", fn, b.line,
               "blocking call '" + b.token +
                   "' reachable from FVAE_EVENT_LOOP " + root_name + " via " +
                   chain_of(fi));
      }
      for (const PurityFact& io : fn.ios) {
        // Sleeps sit in both token sets; they report as loop-block above.
        if (facts_detail::IsBlockingCall(io.token)) continue;
        if (LineAllows(pf, fn.file, io.line, "loop-io")) continue;
        report("loop-io", fn, io.line,
               "IO touch '" + io.token + "' reachable from FVAE_EVENT_LOOP " +
                   root_name + " via " + chain_of(fi));
      }
      for (const LockAcq& acq : fn.acquisitions) {
        const LockDecl* lock = ResolveLock(pf, fn, acq.lock);
        if (lock != nullptr && (lock->hot_exempt || lock->loop_exempt)) {
          continue;
        }
        if (LineAllows(pf, fn.file, acq.line, "loop-lock")) continue;
        report("loop-lock", fn, acq.line,
               "lock '" + (lock != nullptr ? lock->id : acq.lock) +
                   "' (neither FVAE_LOOP_LOCK_EXEMPT nor "
                   "FVAE_HOT_LOCK_EXEMPT) acquired on loop path from " +
                   root_name + " via " + chain_of(fi));
      }
      for (const CallSite& call : fn.calls) {
        if (LineAllows(pf, fn.file, call.line, "loop-path")) continue;
        for (size_t ci : ResolveCall(pf, fn, call)) {
          const FunctionFacts& callee = pf.functions[ci];
          if (callee.may_block) {
            if (!LineAllows(pf, fn.file, call.line, "loop-may-block")) {
              report("loop-may-block", fn, call.line,
                     "call to FVAE_MAY_BLOCK " + callee.qualified +
                         " from FVAE_EVENT_LOOP " + root_name + " via " +
                         chain_of(fi));
            }
            continue;  // the annotation concedes the body; do not descend
          }
          if (visited.insert(ci).second) {
            parent[ci] = fi;
            queue.push_back(ci);
          }
        }
      }
    }
  }
  return findings;
}

/// Portable guarded-by enforcement: every recorded read/write of an
/// FVAE_GUARDED_BY(m) member must occur where `m` is held — via an RAII
/// guard in scope, a manual Lock() without intervening Unlock(), or an
/// FVAE_REQUIRES(m) on the enclosing function (prototype annotations are
/// merged onto definitions by LinkProgram).
///
/// Model (docs/ARCHITECTURE.md §7 spells out the deltas vs Clang):
///  - bare accesses (`member_`) bind to guarded members of the enclosing
///    class (suffix match on nested classes);
///  - receiver-form accesses (`obj.member` / `obj->member`) are enforced
///    only within the declaring component — the access's file must share
///    the declaring header's stem (`src/obs/trace.h` covers
///    `src/obs/trace.cc`) — because binding foreign receivers by member
///    name alone would misfire on unrelated fields (e.g. epoll_event's
///    `events` vs a guarded `events` buffer);
///  - constructors and destructors are exempt (the object is not shared);
///  - a lock name satisfies a guard when it matches the guard expression's
///    last segment, so `MutexLock l(buffer.mutex)` satisfies
///    FVAE_GUARDED_BY(mutex) on the buffer's fields.
/// Escape hatch: `fvae-lint: allow(guarded-by)` on the access line.
inline std::vector<Finding> AnalyzeGuardedBy(const ProgramFacts& pf) {
  std::map<std::string, std::vector<const GuardedDecl*>> by_member;
  for (const GuardedDecl& g : pf.guarded) by_member[g.member].push_back(&g);
  std::vector<Finding> findings;
  std::set<std::string> seen;
  for (const FunctionFacts& fn : pf.functions) {
    if (fn.accesses.empty()) continue;
    if (!fn.cls.empty() &&
        (fn.name == graph_detail::LastSegment(fn.cls) || fn.name[0] == '~')) {
      continue;  // ctor/dtor: the object is not yet / no longer shared
    }
    for (const MemberAccess& access : fn.accesses) {
      auto it = by_member.find(access.member);
      if (it == by_member.end()) continue;
      std::vector<const GuardedDecl*> cands;
      for (const GuardedDecl* g : it->second) {
        if (access.receiver.empty()) {
          if (g->ns == fn.ns && !fn.cls.empty() &&
              (g->cls == fn.cls ||
               graph_detail::EndsWithSegment(fn.cls, g->cls))) {
            cands.push_back(g);
          }
        } else if (graph_detail::FileStem(g->file) ==
                   graph_detail::FileStem(fn.file)) {
          cands.push_back(g);
        }
      }
      if (cands.empty()) continue;
      bool satisfied = false;
      for (const GuardedDecl* g : cands) {
        const std::string want = graph_detail::LastSegment(g->guard);
        for (const std::string& h : access.held) {
          if (h == want || h == g->guard) {
            satisfied = true;
            break;
          }
        }
        for (const std::string& r : fn.requires_locks) {
          if (satisfied) break;
          if (graph_detail::LastSegment(r) == want) satisfied = true;
        }
        if (satisfied) break;
      }
      if (satisfied) continue;
      if (LineAllows(pf, fn.file, access.line, "guarded-by")) continue;
      std::ostringstream key;
      key << fn.file << "|" << access.line << "|" << access.member;
      if (!seen.insert(key.str()).second) continue;
      const GuardedDecl* g = cands.front();
      std::ostringstream msg;
      msg << "'" << access.member << "' is FVAE_GUARDED_BY(" << g->guard
          << ") (declared at " << g->file << ":" << g->line
          << ") but is accessed in " << fn.qualified << " without holding '"
          << g->guard << "'";
      findings.push_back({fn.file, access.line, "guarded-by", msg.str()});
    }
  }
  return findings;
}

namespace graph_detail {

/// A `default:` is a justified escape from exhaustiveness only when it
/// carries a comment (on its line or the one above) saying why.
inline bool DefaultJustified(const ProgramFacts& pf, const SwitchFacts& sw) {
  auto it = pf.file_lines.find(sw.file);
  if (it == pf.file_lines.end()) return false;
  const size_t lines[] = {sw.default_line, sw.default_line - 1};
  for (size_t l : lines) {
    if (l == 0 || l > it->second.size()) continue;
    const std::string& text = it->second[l - 1];
    const size_t pos = text.find("//");
    if (pos != std::string::npos &&
        text.find_first_not_of(" /", pos) != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace graph_detail

/// Exhaustive-switch enforcement for wire enums: a `switch` whose case
/// labels name a known `enum class` (e.g. `case Verb::kLookup:`) must
/// either cover every enumerator or carry a `default:` with a justifying
/// comment — so adding a protocol verb cannot silently skip a handler.
/// Suppression: `fvae-lint: allow(verb-switch)` on the switch line.
inline std::vector<Finding> AnalyzeEnumSwitches(const ProgramFacts& pf) {
  std::vector<Finding> findings;
  for (const SwitchFacts& sw : pf.switches) {
    const EnumDecl* en = nullptr;
    std::set<std::string> covered;
    for (const std::string& chain : sw.cases) {
      const size_t pos = chain.rfind("::");
      if (pos == std::string::npos) continue;
      const std::string prefix = chain.substr(0, pos);
      const std::string label = chain.substr(pos + 2);
      for (const EnumDecl& cand : pf.enums) {
        std::string qual = cand.ns;
        if (!cand.cls.empty()) {
          qual += qual.empty() ? cand.cls : "::" + cand.cls;
        }
        qual += qual.empty() ? cand.name : "::" + cand.name;
        if (qual == prefix || graph_detail::EndsWithSegment(qual, prefix)) {
          en = &cand;
          covered.insert(label);
          break;
        }
      }
    }
    if (en == nullptr) continue;
    std::vector<std::string> missing;
    for (const std::string& e : en->enumerators) {
      if (covered.count(e) == 0) missing.push_back(e);
    }
    if (missing.empty()) continue;
    if (sw.has_default && graph_detail::DefaultJustified(pf, sw)) continue;
    if (LineAllows(pf, sw.file, sw.line, "verb-switch")) continue;
    std::ostringstream msg;
    msg << "switch on " << en->name << " in " << sw.function
        << " does not handle ";
    for (size_t m = 0; m < missing.size(); ++m) {
      if (m != 0) msg << ", ";
      msg << en->name << "::" << missing[m];
    }
    msg << (sw.has_default
                ? " and its default: has no justifying comment"
                : " and has no default:");
    findings.push_back({sw.file, sw.line, "verb-switch", msg.str()});
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Path-sensitive analyses (tools/cfg.h + tools/dataflow.h)
//
// Four analyses run on per-function CFGs with the worklist solver:
//
//   status-path      a local Status/Result value whose initializer calls a
//                    function must be consumed — checked (`.ok()`, any
//                    member access), returned, `(void)`-cast, address-
//                    taken, or passed to a consuming callee — on every
//                    path to function exit; overwriting an unconsumed
//                    value is reported at the assignment.
//   resource-escape  table-driven acquire/release: TimerWheel handles
//                    (`TimerId id = w.Schedule(..)` ... `w.Cancel(id)`),
//                    EpollLoop registrations of function-local fds
//                    (`loop.Add(fd, ..)` ... `loop.Del(fd)`), and
//                    AtomicFileWriter lifetimes (declaration ...
//                    Commit()/Abort()). Every path to exit must release
//                    the obligation or escape the resource (return it,
//                    store it, move it, pass it to an owning callee).
//   lock-balance     manual .Lock()/.LockShared() must be balanced by
//                    .Unlock()/.UnlockShared() on every path; acquiring a
//                    lock already held and releasing one not held are
//                    reported at the site. The per-path held sets also
//                    *correct* the linear fact extractor's lock tracking
//                    for the legacy analyses (guarded-by, lock-cycle),
//                    and facts recorded in CFG-unreachable statements are
//                    dropped, which makes the event-loop and hot-path
//                    walks path-sensitive at the intra-function level.
//   use-after-move   a local read after `std::move(local)` without an
//                    intervening reassignment or `.clear()`-style revive;
//                    null-checks and re-moves into checks stay silent.
//
// Interprocedural precision comes from FnSummary (tools/dataflow.h):
// consumes-status, takes-ownership and releases-argument summaries are
// computed from every function's parameter facts and body tokens, so
// passing a tracked value into a project wrapper does not spuriously keep
// (or discharge) an obligation. A callee the program cannot resolve is
// assumed to consume/own — over-approximation in the silent direction.
// ---------------------------------------------------------------------------

/// Computes the per-function interprocedural summaries, merged by bare
/// name (overloads OR together, the usual over-approximation).
inline SummaryMap ComputeSummaries(const ProgramFacts& pf) {
  static const std::set<std::string> kReleaseMethods = {
      "Unlock", "UnlockShared", "Cancel", "Del",
      "Commit", "Abort",        "close",  "Reset"};
  SummaryMap map;
  for (const FunctionFacts& fn : pf.functions) {
    FnSummary& s = map[fn.name];
    std::set<std::string> param_names;
    for (const ParamFacts& p : fn.params) {
      if (p.fallible) s.consumes_status = true;
      if (p.rvalue_ref) s.takes_ownership = true;
      if (!p.name.empty()) param_names.insert(p.name);
    }
    if (s.releases_argument || param_names.empty() ||
        fn.body_end <= fn.body_begin) {
      continue;
    }
    auto tit = pf.file_tokens.find(fn.file);
    if (tit == pf.file_tokens.end()) continue;
    const std::vector<Tok>& toks = tit->second;
    const size_t end = std::min(fn.body_end, toks.size());
    for (size_t i = fn.body_begin; i < end; ++i) {
      const Tok& t = toks[i];
      if (t.kind != TokKind::kIdent || kReleaseMethods.count(t.text) == 0) {
        continue;
      }
      if (i + 1 >= end || toks[i + 1].kind != TokKind::kPunct ||
          toks[i + 1].text != "(") {
        continue;
      }
      // Receiver form: `param.Unlock()` / `param->Commit()`.
      if (i >= 2 && toks[i - 1].kind == TokKind::kPunct &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
          toks[i - 2].kind == TokKind::kIdent &&
          param_names.count(toks[i - 2].text) > 0) {
        s.releases_argument = true;
        break;
      }
      // Argument form: `wheel_.Cancel(param)` — a param inside the group.
      int depth = 0;
      for (size_t j = i + 1; j < end; ++j) {
        if (toks[j].kind == TokKind::kPunct) {
          if (toks[j].text == "(") ++depth;
          if (toks[j].text == ")" && --depth == 0) break;
        } else if (toks[j].kind == TokKind::kIdent &&
                   param_names.count(toks[j].text) > 0) {
          s.releases_argument = true;
          break;
        }
      }
      if (s.releases_argument) break;
    }
  }
  return map;
}

namespace path_detail {

/// Everything the per-function passes need in one place.
struct FnPath {
  const ProgramFacts* pf = nullptr;
  const SummaryMap* summaries = nullptr;
  const FunctionFacts* fn = nullptr;
  const std::vector<Tok>* toks = nullptr;
  const Cfg* cfg = nullptr;
  // Innermost enclosing call's bare callee name per body token (indexed
  // by token_index - fn->body_begin; "" outside any call's argument
  // list). Paren groups are balanced within statements, so one linear
  // body scan serves every statement.
  std::vector<std::string> callees;
};

inline bool TokPunct(const std::vector<Tok>& toks, size_t i,
                     const char* text) {
  return i < toks.size() && toks[i].kind == TokKind::kPunct &&
         toks[i].text == text;
}
inline bool TokIdent(const std::vector<Tok>& toks, size_t i) {
  return i < toks.size() && toks[i].kind == TokKind::kIdent;
}

inline std::vector<std::string> EnclosingCallees(const std::vector<Tok>& toks,
                                                 size_t begin, size_t end) {
  std::vector<std::string> out(end > begin ? end - begin : 0);
  std::vector<std::string> stack;
  for (size_t i = begin; i < end; ++i) {
    out[i - begin] = stack.empty() ? "" : stack.back();
    const Tok& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(") {
      std::string callee;
      if (i > begin && toks[i - 1].kind == TokKind::kIdent &&
          facts_detail::ControlKeywords().count(toks[i - 1].text) == 0) {
        callee = toks[i - 1].text;
      }
      stack.push_back(std::move(callee));
    } else if (t.text == ")") {
      if (!stack.empty()) stack.pop_back();
    }
  }
  return out;
}

/// Skips a balanced `<...>` group starting at `i` (which must be '<');
/// returns the index just past the matching '>' (`>>` closes two).
inline size_t SkipAngles(const std::vector<Tok>& toks, size_t i,
                         size_t end) {
  int depth = 0;
  while (i < end) {
    if (toks[i].kind == TokKind::kPunct) {
      if (toks[i].text == "<") ++depth;
      if (toks[i].text == ">") --depth;
      if (toks[i].text == ">>") depth -= 2;
    }
    ++i;
    if (depth <= 0) break;
  }
  return i;
}

inline bool StmtIsReturn(const std::vector<Tok>& toks, const CfgStmt& s) {
  return TokIdent(toks, s.begin) &&
         (toks[s.begin].text == "return" || toks[s.begin].text == "co_return");
}
inline bool StmtIsVoidCast(const std::vector<Tok>& toks, const CfgStmt& s) {
  return TokPunct(toks, s.begin, "(") && TokIdent(toks, s.begin + 1) &&
         toks[s.begin + 1].text == "void" && TokPunct(toks, s.begin + 2, ")");
}

/// Shared reporting helper: LineAllows + per-function dedup.
struct Reporter {
  const FnPath* ctx;
  std::vector<Finding>* findings;
  std::set<std::string> seen;
  void operator()(size_t line, const std::string& rule,
                  const std::string& message) {
    if (LineAllows(*ctx->pf, ctx->fn->file, line, rule)) return;
    std::ostringstream key;
    key << line << "|" << rule << "|" << message;
    if (!seen.insert(key.str()).second) return;
    findings->push_back({ctx->fn->file, line, rule, message});
  }
};

/// Runs `transfer` to fixpoint and then replays every reachable node once
/// with reporting enabled. `transfer(stmt, state, report)` mutates the
/// state across one statement.
template <typename StmtTransfer>
DataflowResult<FlowState> SolveAndReport(const FnPath& ctx, Flow missing,
                                         StmtTransfer transfer) {
  auto node_transfer = [&](size_t node, const FlowState& in) {
    FlowState state = in;
    for (const CfgStmt& s : ctx.cfg->nodes[node].stmts) {
      transfer(s, &state, /*report=*/false);
    }
    return state;
  };
  auto join = [missing](FlowState* acc, const FlowState& other) {
    JoinFlowStates(acc, other, missing);
  };
  DataflowResult<FlowState> result =
      SolveDataflow(*ctx.cfg, DataflowDir::kForward, FlowState{}, FlowState{},
                    node_transfer, join);
  if (!result.converged) return result;
  for (size_t n = 0; n < ctx.cfg->nodes.size(); ++n) {
    if (!ctx.cfg->reachable[n]) continue;
    FlowState state = result.in[n];
    for (const CfgStmt& s : ctx.cfg->nodes[n].stmts) {
      transfer(s, &state, /*report=*/true);
    }
  }
  return result;
}

}  // namespace path_detail

/// status-path: every locally declared Status/Result value produced by a
/// call must be consumed on every path to exit. Consumption is any member
/// access, being returned, (void)-cast, address-taken, compared, or
/// passed to an unresolvable callee / a callee whose summary says it
/// consumes Status. Passing to a resolvable *non*-consuming callee keeps
/// the obligation — the precision the summaries buy.
inline void AnalyzeStatusPaths(const ProgramFacts& pf,
                               const SummaryMap& summaries,
                               const std::map<size_t, Cfg>& cfgs,
                               std::vector<Finding>* findings) {
  using path_detail::FnPath;
  using path_detail::Reporter;
  using path_detail::SkipAngles;
  using path_detail::TokIdent;
  using path_detail::TokPunct;
  for (const auto& [fi, cfg] : cfgs) {
    const FunctionFacts& fn = pf.functions[fi];
    const std::vector<Tok>& toks = pf.file_tokens.at(fn.file);
    FnPath ctx{&pf, &summaries, &fn, &toks, &cfg,
               path_detail::EnclosingCallees(toks, fn.body_begin,
                                             fn.body_end)};
    Reporter report{&ctx, findings, {}};
    std::map<std::string, size_t> decl_line;  // monotone across passes

    auto rhs_has_call = [&](size_t from, size_t end) {
      for (size_t i = from; i < end; ++i) {
        if (TokPunct(toks, i, "(")) return true;
      }
      return false;
    };

    auto transfer = [&](const CfgStmt& s, FlowState* state, bool emit) {
      const bool is_return = path_detail::StmtIsReturn(toks, s);
      const bool is_void = path_detail::StmtIsVoidCast(toks, s);
      // Declaration: [const|static]* Status|Result<..> NAME [= init];
      size_t skip_name = SIZE_MAX;
      {
        size_t p = s.begin;
        while (TokIdent(toks, p) && (toks[p].text == "const" ||
                                     toks[p].text == "static" ||
                                     toks[p].text == "constexpr")) {
          ++p;
        }
        size_t type_end = 0;
        if (TokIdent(toks, p) && toks[p].text == "Status" &&
            !TokPunct(toks, p + 1, "::")) {
          type_end = p + 1;
        } else if (TokIdent(toks, p) && toks[p].text == "Result" &&
                   TokPunct(toks, p + 1, "<")) {
          type_end = SkipAngles(toks, p + 1, s.end);
        }
        if (type_end != 0 && type_end < s.end && TokIdent(toks, type_end)) {
          const std::string& name = toks[type_end].text;
          const size_t after = type_end + 1;
          const bool decl_like =
              TokPunct(toks, after, "=") || TokPunct(toks, after, ";") ||
              TokPunct(toks, after, "(") || TokPunct(toks, after, "{");
          if (decl_like) {
            skip_name = type_end;
            decl_line.emplace(name, toks[type_end].line);
            // Only an initializer that calls something creates the
            // obligation; `Status st = kOk;` accumulators start consumed.
            if (rhs_has_call(after, s.end)) {
              state->vals[name] = Flow::kB;
            } else {
              state->vals.erase(name);
            }
          }
        }
      }
      for (size_t i = s.begin; i < s.end && i < toks.size(); ++i) {
        if (i == skip_name || toks[i].kind != TokKind::kIdent) continue;
        auto dit = decl_line.find(toks[i].text);
        if (dit == decl_line.end()) continue;
        const bool prev_member =
            i > 0 && toks[i - 1].kind == TokKind::kPunct &&
            (toks[i - 1].text == "." || toks[i - 1].text == "->" ||
             toks[i - 1].text == "::");
        if (prev_member) continue;
        const std::string& name = toks[i].text;
        if (TokPunct(toks, i + 1, "=")) {  // plain reassignment
          auto sit = state->vals.find(name);
          if (emit && sit != state->vals.end() && sit->second == Flow::kB) {
            report(toks[i].line, "status-path",
                   "'" + name + "' still holds an unconsumed Status/Result "
                   "(from line " + std::to_string(dit->second) +
                   ") when it is overwritten here");
          }
          if (rhs_has_call(i + 2, s.end)) {
            state->vals[name] = Flow::kB;
            dit->second = toks[i].line;  // the obligation now starts here
          } else {
            state->vals.erase(name);
          }
          continue;
        }
        bool consumed = is_return || is_void;
        if (!consumed && i > 0 && toks[i - 1].kind == TokKind::kPunct &&
            (toks[i - 1].text == "&" || toks[i - 1].text == "!" ||
             toks[i - 1].text == "=")) {
          consumed = true;  // address taken / negated / stored elsewhere
        }
        if (!consumed &&
            (TokPunct(toks, i + 1, ".") || TokPunct(toks, i + 1, "->") ||
             TokPunct(toks, i + 1, "==") || TokPunct(toks, i + 1, "!="))) {
          consumed = true;  // member access or comparison
        }
        if (!consumed) {
          const std::string& callee =
              i >= fn.body_begin && i - fn.body_begin < ctx.callees.size()
                  ? ctx.callees[i - fn.body_begin]
                  : std::string();
          if (callee.empty()) {
            consumed = true;  // bare mention outside any call
          } else if (pf.functions_by_name.count(callee) == 0) {
            consumed = true;  // unresolvable callee: assume it consumes
          } else {
            auto sit = summaries.find(callee);
            consumed = sit != summaries.end() && sit->second.consumes_status;
          }
        }
        if (consumed) state->vals.erase(name);
      }
    };

    const DataflowResult<FlowState> result =
        path_detail::SolveAndReport(ctx, Flow::kA, transfer);
    if (!result.converged) continue;
    for (const auto& [name, val] : result.in[Cfg::kExit].vals) {
      auto dit = decl_line.find(name);
      const size_t line = dit != decl_line.end() ? dit->second : fn.line;
      report(line, "status-path",
             val == Flow::kB
                 ? "Status/Result value '" + name +
                       "' is never consumed on any path to function exit "
                       "(check it, return it, or (void)-cast it)"
                 : "Status/Result value '" + name +
                       "' is dropped on some path to function exit "
                       "(consumed on others)");
    }
  }
}

/// resource-escape: table-driven acquire/release over the CFG. See the
/// section comment for the three resource kinds.
inline void AnalyzeResourceEscapes(const ProgramFacts& pf,
                                   const SummaryMap& summaries,
                                   const std::map<size_t, Cfg>& cfgs,
                                   std::vector<Finding>* findings) {
  using path_detail::FnPath;
  using path_detail::Reporter;
  using path_detail::TokIdent;
  using path_detail::TokPunct;
  // Callees that release the resource passed as an argument, and member
  // calls on the resource that settle its lifetime.
  static const std::set<std::string> kReleaseArgCallees = {"Cancel", "Del",
                                                           "close", "Reset"};
  static const std::set<std::string> kReleaseMembers = {"Commit", "Abort"};
  for (const auto& [fi, cfg] : cfgs) {
    const FunctionFacts& fn = pf.functions[fi];
    const std::vector<Tok>& toks = pf.file_tokens.at(fn.file);
    FnPath ctx{&pf, &summaries, &fn, &toks, &cfg,
               path_detail::EnclosingCallees(toks, fn.body_begin,
                                             fn.body_end)};
    Reporter report{&ctx, findings, {}};
    std::map<std::string, size_t> acquire_line;
    std::map<std::string, std::string> kind;
    // Function-local ints/Fds, for the EpollLoop registration rule: only
    // a *local* descriptor registered and then dropped is a sure leak
    // (member fds legitimately stay registered past the return). A local
    // initialized via `.get()` merely *borrows* a descriptor someone else
    // owns — registering it creates no obligation here.
    std::set<std::string> local_ints;
    {
      const size_t end = std::min(fn.body_end, toks.size());
      for (size_t i = fn.body_begin; i + 1 < end; ++i) {
        if (toks[i].kind != TokKind::kIdent ||
            (toks[i].text != "int" && toks[i].text != "Fd") ||
            !TokIdent(toks, i + 1) ||
            (i > 0 && TokPunct(toks, i - 1, "::"))) {
          continue;
        }
        bool borrowed = false;
        if (TokPunct(toks, i + 2, "=")) {
          for (size_t j = i + 3; j < end && !TokPunct(toks, j, ";"); ++j) {
            if (toks[j].kind == TokKind::kIdent && toks[j].text == "get") {
              borrowed = true;
              break;
            }
          }
        }
        if (!borrowed) local_ints.insert(toks[i + 1].text);
      }
    }

    auto transfer = [&](const CfgStmt& s, FlowState* state, bool emit) {
      (void)emit;
      const bool is_return = path_detail::StmtIsReturn(toks, s);
      // Acquire: TimerId NAME = <recv>.Schedule(...);
      {
        size_t p = s.begin;
        while (TokIdent(toks, p) && toks[p].text == "const") ++p;
        if (TokIdent(toks, p) && TokIdent(toks, p + 1) &&
            TokPunct(toks, p + 2, "=")) {
          const std::string& type = toks[p].text;
          const std::string& name = toks[p + 1].text;
          if (type == "TimerId") {
            for (size_t i = p + 3; i + 1 < s.end; ++i) {
              if (toks[i].kind == TokKind::kIdent &&
                  toks[i].text == "Schedule" && i >= 1 &&
                  (TokPunct(toks, i - 1, ".") ||
                   TokPunct(toks, i - 1, "->")) &&
                  TokPunct(toks, i + 1, "(")) {
                state->vals[name] = Flow::kB;
                acquire_line.emplace(name, toks[p + 1].line);
                kind.emplace(name, "TimerWheel handle");
                break;
              }
            }
          }
        }
        // Acquire: AtomicFileWriter NAME ...;
        if (TokIdent(toks, p) && toks[p].text == "AtomicFileWriter" &&
            TokIdent(toks, p + 1) &&
            (TokPunct(toks, p + 2, ";") || TokPunct(toks, p + 2, "(") ||
             TokPunct(toks, p + 2, "{") || TokPunct(toks, p + 2, "="))) {
          const std::string& name = toks[p + 1].text;
          state->vals[name] = Flow::kB;
          acquire_line.emplace(name, toks[p + 1].line);
          kind.emplace(name, "AtomicFileWriter");
        }
      }
      // Acquire: <recv>.Add(fd, ...) with recv an EpollLoop member and fd
      // a bare local. Release: <recv>.Del(fd) and friends, below.
      for (size_t i = s.begin; i < s.end && i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::kIdent || toks[i].text != "Add") {
          continue;
        }
        if (!(i >= 2 &&
              (TokPunct(toks, i - 1, ".") || TokPunct(toks, i - 1, "->")) &&
              toks[i - 2].kind == TokKind::kIdent)) {
          continue;
        }
        auto rit = pf.member_types.find(toks[i - 2].text);
        if (rit == pf.member_types.end() || rit->second != "EpollLoop") {
          continue;
        }
        if (TokPunct(toks, i + 1, "(") && TokIdent(toks, i + 2) &&
            (TokPunct(toks, i + 3, ",") || TokPunct(toks, i + 3, ")")) &&
            local_ints.count(toks[i + 2].text) > 0) {
          const std::string& name = toks[i + 2].text;
          state->vals[name] = Flow::kB;
          acquire_line.emplace(name, toks[i + 2].line);
          kind.emplace(name, "EpollLoop registration");
        }
      }
      // Releases and escapes of tracked names.
      for (size_t i = s.begin; i < s.end && i < toks.size(); ++i) {
        if (toks[i].kind != TokKind::kIdent) continue;
        const std::string& name = toks[i].text;
        if (state->vals.count(name) == 0) continue;
        const bool prev_member =
            i > 0 && toks[i - 1].kind == TokKind::kPunct &&
            (toks[i - 1].text == "." || toks[i - 1].text == "->" ||
             toks[i - 1].text == "::");
        if (prev_member) continue;
        bool done = is_return;  // returning the resource escapes it
        if (!done &&
            (TokPunct(toks, i + 1, ".") || TokPunct(toks, i + 1, "->")) &&
            TokIdent(toks, i + 2) &&
            kReleaseMembers.count(toks[i + 2].text) > 0 &&
            TokPunct(toks, i + 3, "(")) {
          done = true;  // writer.Commit() / writer.Abort()
        }
        if (!done && i > 0 && toks[i - 1].kind == TokKind::kPunct &&
            (toks[i - 1].text == "&" || toks[i - 1].text == "=") &&
            !(TokPunct(toks, i + 1, ".") || TokPunct(toks, i + 1, "->"))) {
          // Address taken / stored whole into another lvalue. Followed by
          // '.' it is only `x = res.Method()` — the *result* is stored,
          // not the resource.
          done = true;
        }
        if (!done &&
            (TokPunct(toks, i + 1, ",") || TokPunct(toks, i + 1, ")"))) {
          // Passed whole as an argument. The acquire verbs themselves are
          // not escapes — `loop_.Add(fd, ...)` must not discharge the
          // obligation it just created.
          static const std::set<std::string> kAcquireCallees = {"Add",
                                                                "Schedule"};
          const std::string& callee =
              i >= fn.body_begin && i - fn.body_begin < ctx.callees.size()
                  ? ctx.callees[i - fn.body_begin]
                  : std::string();
          if (!callee.empty() && kAcquireCallees.count(callee) == 0) {
            if (kReleaseArgCallees.count(callee) > 0 ||
                pf.functions_by_name.count(callee) == 0) {
              done = true;  // releasing callee, or unresolvable: assume owns
            } else {
              auto sit = summaries.find(callee);
              done = sit != summaries.end() &&
                     (sit->second.takes_ownership ||
                      sit->second.releases_argument);
            }
          }
        }
        if (done) state->vals.erase(name);
      }
    };

    const DataflowResult<FlowState> result =
        path_detail::SolveAndReport(ctx, Flow::kA, transfer);
    if (!result.converged) continue;
    for (const auto& [name, val] : result.in[Cfg::kExit].vals) {
      auto ait = acquire_line.find(name);
      const size_t line = ait != acquire_line.end() ? ait->second : fn.line;
      auto kit = kind.find(name);
      const std::string what =
          (kit != kind.end() ? kit->second : std::string("resource")) +
          " '" + name + "'";
      report(line, "resource-escape",
             val == Flow::kB
                 ? what + " is neither released nor escaped on any path to "
                          "function exit"
                 : what + " is neither released nor escaped on some path "
                          "to function exit");
    }
  }
}

/// Per-function result of the lock-balance pass, including the per-line
/// may-held manual-lock sets used to correct the linear extractor's held
/// sets for the legacy analyses.
struct LockBalanceFn {
  std::set<std::string> manual_names;
  std::map<size_t, std::set<std::string>> may_held;  // line -> lock names
  bool analyzed = false;
};

/// lock-balance: manual lock acquire/release balance over the CFG.
inline LockBalanceFn AnalyzeLockBalanceFn(const path_detail::FnPath& ctx,
                                          std::vector<Finding>* findings) {
  using path_detail::Reporter;
  using path_detail::TokIdent;
  using path_detail::TokPunct;
  const std::vector<Tok>& toks = *ctx.toks;
  const FunctionFacts& fn = *ctx.fn;
  LockBalanceFn out;
  const size_t body_end = std::min(fn.body_end, toks.size());
  for (size_t i = fn.body_begin; i < body_end; ++i) {
    if (toks[i].kind == TokKind::kIdent &&
        (toks[i].text == "Lock" || toks[i].text == "LockShared") &&
        TokPunct(toks, i + 1, "(") && i >= 2 &&
        (TokPunct(toks, i - 1, ".") || TokPunct(toks, i - 1, "->")) &&
        toks[i - 2].kind == TokKind::kIdent) {
      out.manual_names.insert(toks[i - 2].text);
    }
  }
  if (out.manual_names.empty()) return out;  // nothing to balance

  Reporter report{&ctx, findings, {}};
  std::map<std::string, size_t> acquire_line;
  auto transfer = [&](const CfgStmt& s, FlowState* state, bool emit) {
    auto note_line = [&](size_t line) {
      if (!emit) return;
      std::set<std::string>& held = out.may_held[line];
      for (const auto& [name, val] : state->vals) {
        (void)val;  // kB and kMixed both mean possibly held
        held.insert(name);
      }
    };
    if (emit) {
      for (size_t i = s.begin; i < s.end && i < toks.size(); ++i) {
        note_line(toks[i].line);
      }
    }
    for (size_t i = s.begin; i < s.end && i < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent || !TokPunct(toks, i + 1, "(") ||
          i < 2 ||
          !(TokPunct(toks, i - 1, ".") || TokPunct(toks, i - 1, "->")) ||
          toks[i - 2].kind != TokKind::kIdent) {
        continue;
      }
      const std::string& method = toks[i].text;
      const std::string& lock = toks[i - 2].text;
      if (method == "Lock" || method == "LockShared") {
        auto sit = state->vals.find(lock);
        if (emit && sit != state->vals.end() && sit->second == Flow::kB) {
          report(toks[i].line, "lock-balance",
                 "manual lock '" + lock + "' is acquired while already "
                 "held on every path reaching this statement");
        }
        state->vals[lock] = Flow::kB;
        acquire_line.emplace(lock, toks[i].line);
      } else if (method == "Unlock" || method == "UnlockShared") {
        if (out.manual_names.count(lock) == 0) continue;
        if (emit && state->vals.count(lock) == 0) {
          report(toks[i].line, "lock-balance",
                 "manual lock '" + lock + "' is released here but is not "
                 "held on any path reaching this statement (double "
                 "release?)");
        }
        state->vals.erase(lock);
      }
    }
    if (emit) {
      for (size_t i = s.begin; i < s.end && i < toks.size(); ++i) {
        note_line(toks[i].line);
      }
    }
  };

  const DataflowResult<FlowState> result =
      path_detail::SolveAndReport(ctx, Flow::kA, transfer);
  if (!result.converged) return out;
  out.analyzed = true;
  for (const auto& [name, val] : result.in[Cfg::kExit].vals) {
    auto ait = acquire_line.find(name);
    const size_t line = ait != acquire_line.end() ? ait->second : fn.line;
    report(line, "lock-balance",
           val == Flow::kB
               ? "manual lock '" + name +
                     "' is still held at function exit on every path "
                     "(no balancing Unlock)"
               : "manual lock '" + name +
                     "' is still held at function exit on some path "
                     "(released on others)");
  }
  return out;
}

/// use-after-move: a moved-from local read before reassignment.
inline void AnalyzeUseAfterMove(const ProgramFacts& pf,
                                const SummaryMap& summaries,
                                const std::map<size_t, Cfg>& cfgs,
                                std::vector<Finding>* findings) {
  using path_detail::FnPath;
  using path_detail::Reporter;
  using path_detail::TokIdent;
  using path_detail::TokPunct;
  static const std::set<std::string> kRevivers = {"clear", "reset", "Reset",
                                                  "assign", "emplace"};
  for (const auto& [fi, cfg] : cfgs) {
    const FunctionFacts& fn = pf.functions[fi];
    const std::vector<Tok>& toks = pf.file_tokens.at(fn.file);
    FnPath ctx{&pf, &summaries, &fn, &toks, &cfg, {}};
    Reporter report{&ctx, findings, {}};
    std::map<std::string, size_t> move_line;

    // An identifier preceded by a type-ish token is a *declaration* of a
    // fresh object (`SearchTrial trial;` redeclared per loop iteration, a
    // range-for binding `for (auto& x : xs)`, `std::vector<float> v(n)`):
    // it revives the name. Keywords that merely precede an expression are
    // excluded; `>` closes a template type; `&`/`&&`/`*` declarators look
    // one further back.
    auto type_like = [&](size_t j) {
      if (toks[j].kind == TokKind::kIdent) {
        static const std::set<std::string> kExprKeywords = {
            "return", "co_return", "co_yield", "throw", "case",
            "goto",   "delete",    "new",      "sizeof"};
        return kExprKeywords.count(toks[j].text) == 0;
      }
      return TokPunct(toks, j, ">");
    };
    auto is_declared_here = [&](const CfgStmt& s, size_t i) {
      if (i <= s.begin) return false;
      if (type_like(i - 1)) return true;
      return i >= s.begin + 2 &&
             (TokPunct(toks, i - 1, "&") || TokPunct(toks, i - 1, "&&") ||
              TokPunct(toks, i - 1, "*")) &&
             type_like(i - 2);
    };

    auto transfer = [&](const CfgStmt& s, FlowState* state, bool emit) {
      std::set<size_t> skip;  // tokens consumed by a std::move() pattern
      std::set<std::string> assigned;  // names assigned earlier in this stmt
      for (size_t i = s.begin; i < s.end && i < toks.size(); ++i) {
        if (skip.count(i) > 0 || toks[i].kind != TokKind::kIdent) continue;
        const std::string& name = toks[i].text;
        // std::move(local): the argument must be a bare identifier —
        // `std::move(*ptr)` / `std::move(obj.field)` stay untracked.
        if (name == "move" && i >= 2 && TokPunct(toks, i - 1, "::") &&
            toks[i - 2].kind == TokKind::kIdent &&
            toks[i - 2].text == "std" && TokPunct(toks, i + 1, "(") &&
            TokIdent(toks, i + 2) && TokPunct(toks, i + 3, ")")) {
          const std::string& moved = toks[i + 2].text;
          // Members (trailing '_') may be revived by calls this walk
          // cannot see; track plain locals and parameters only. A name
          // assigned earlier in the same statement is being *rebound*
          // from itself (`[x = std::move(x)]` lambda init-captures): the
          // move target is a fresh object, not the tracked local.
          if (!moved.empty() && moved.back() != '_' &&
              assigned.count(moved) == 0) {
            auto sit = state->vals.find(moved);
            if (emit && sit != state->vals.end() &&
                sit->second == Flow::kB) {
              auto mit = move_line.find(moved);
              report(toks[i + 2].line, "use-after-move",
                     "'" + moved + "' is moved again after the move at "
                     "line " +
                         std::to_string(mit != move_line.end() ? mit->second
                                                               : 0));
            }
            state->vals[moved] = Flow::kB;
            move_line.emplace(moved, toks[i + 2].line);
          }
          skip.insert(i + 2);
          continue;
        }
        const bool prev_member =
            i > 0 && toks[i - 1].kind == TokKind::kPunct &&
            (toks[i - 1].text == "." || toks[i - 1].text == "->" ||
             toks[i - 1].text == "::");
        if (!prev_member && TokPunct(toks, i + 1, "=")) {
          assigned.insert(name);
        }
        auto sit = state->vals.find(name);
        if (sit == state->vals.end()) continue;
        if (prev_member) continue;
        if (TokPunct(toks, i + 1, "=") || is_declared_here(s, i)) {
          state->vals.erase(sit);  // reassignment / fresh declaration
          continue;
        }
        if ((TokPunct(toks, i + 1, ".") || TokPunct(toks, i + 1, "->")) &&
            TokIdent(toks, i + 2) && kRevivers.count(toks[i + 2].text) > 0 &&
            TokPunct(toks, i + 3, "(")) {
          state->vals.erase(sit);  // x.clear() etc. re-establish a value
          continue;
        }
        // Null-check shapes stay silent: a whole-condition mention
        // (single-token statement), comparisons, negation, address-of.
        if (s.end == s.begin + 1) continue;
        if (TokPunct(toks, i + 1, "==") || TokPunct(toks, i + 1, "!=")) {
          continue;
        }
        if (i > 0 && toks[i - 1].kind == TokKind::kPunct &&
            (toks[i - 1].text == "!" || toks[i - 1].text == "&" ||
             toks[i - 1].text == "==" || toks[i - 1].text == "!=")) {
          continue;
        }
        if (emit) {
          auto mit = move_line.find(name);
          const std::string at =
              std::to_string(mit != move_line.end() ? mit->second : 0);
          report(toks[i].line, "use-after-move",
                 sit->second == Flow::kB
                     ? "'" + name + "' is used after being moved at line " +
                           at
                     : "'" + name + "' may be used after being moved "
                       "(move at line " + at + " happens on some paths)");
        }
      }
    };
    // Uses are reported inline during the replay; no exit-state check.
    (void)path_detail::SolveAndReport(ctx, Flow::kA, transfer);
  }
}

/// Builds a CFG for every function with a recorded body range, keyed by
/// index into pf.functions. Functions whose definitions never closed (or
/// whose file tokens are missing) simply have no CFG and are skipped by
/// the path-sensitive analyses.
inline std::map<size_t, Cfg> BuildFunctionCfgs(const ProgramFacts& pf) {
  std::map<size_t, Cfg> cfgs;
  for (size_t fi = 0; fi < pf.functions.size(); ++fi) {
    const FunctionFacts& fn = pf.functions[fi];
    if (fn.body_end <= fn.body_begin) continue;
    auto tit = pf.file_tokens.find(fn.file);
    if (tit == pf.file_tokens.end() || fn.body_end > tit->second.size()) {
      continue;
    }
    cfgs.emplace(fi, BuildCfg(tit->second, fn.body_begin, fn.body_end));
  }
  return cfgs;
}

/// Runs lock-balance over every function and applies the two CFG-driven
/// corrections to the linear extractor's facts, which is what makes the
/// *legacy* analyses path-sensitive:
///
///   1. held-set correction — for manual (non-RAII) locks the linear walk
///      can only guess across early exits; the per-line may-held sets
///      from the dataflow solve replace its guesses on every CallSite,
///      MemberAccess and LockNest.
///   2. unreachable-fact dropping — blocking/io/log/alloc/trace facts on
///      lines covered only by CFG-unreachable statements (dead code after
///      a terminator) are removed, so the event-loop and hot-path walks
///      no longer flag code no path executes.
///
/// Must run before the legacy analyses read the facts.
inline void AnalyzeLockBalance(ProgramFacts* pf, const SummaryMap& summaries,
                               const std::map<size_t, Cfg>& cfgs,
                               std::vector<Finding>* findings) {
  for (const auto& [fi, cfg] : cfgs) {
    FunctionFacts& fn = pf->functions[fi];
    const std::vector<Tok>& toks = pf->file_tokens.at(fn.file);
    path_detail::FnPath ctx{pf, &summaries, &fn, &toks, &cfg, {}};
    const LockBalanceFn lb = AnalyzeLockBalanceFn(ctx, findings);

    // Correction 2: drop facts recorded in dead code.
    bool any_unreachable = false;
    if (!cfg.truncated) {
      for (size_t n2 = 0; n2 < cfg.nodes.size(); ++n2) {
        if (!cfg.reachable[n2] && !cfg.nodes[n2].stmts.empty()) {
          any_unreachable = true;
          break;
        }
      }
    }
    if (any_unreachable) {
      std::set<size_t> reach_lines, unreach_lines;
      for (size_t n2 = 0; n2 < cfg.nodes.size(); ++n2) {
        for (const CfgStmt& s : cfg.nodes[n2].stmts) {
          for (size_t i = s.begin; i < s.end && i < toks.size(); ++i) {
            (cfg.reachable[n2] ? reach_lines : unreach_lines)
                .insert(toks[i].line);
          }
        }
      }
      auto dead = [&](size_t line) {
        return unreach_lines.count(line) > 0 && reach_lines.count(line) == 0;
      };
      auto prune = [&](std::vector<PurityFact>* facts) {
        facts->erase(
            std::remove_if(facts->begin(), facts->end(),
                           [&](const PurityFact& f) { return dead(f.line); }),
            facts->end());
      };
      prune(&fn.blocking);
      prune(&fn.ios);
      prune(&fn.logs);
      prune(&fn.allocs);
      prune(&fn.traces);
    }

    // Correction 1: manual-lock held sets.
    if (!lb.analyzed || lb.manual_names.empty()) continue;
    auto fix_held = [&](std::vector<std::string>* held, size_t line) {
      auto mit = lb.may_held.find(line);
      const std::set<std::string>* may =
          mit != lb.may_held.end() ? &mit->second : nullptr;
      std::vector<std::string> fixed;
      for (const std::string& name : *held) {
        if (lb.manual_names.count(name) == 0 ||
            (may != nullptr && may->count(name) > 0)) {
          fixed.push_back(name);
        }
      }
      if (may != nullptr) {
        for (const std::string& name : *may) {
          if (std::find(fixed.begin(), fixed.end(), name) == fixed.end()) {
            fixed.push_back(name);
          }
        }
      }
      *held = std::move(fixed);
    };
    for (CallSite& c : fn.calls) fix_held(&c.held, c.line);
    for (MemberAccess& a : fn.accesses) fix_held(&a.held, a.line);
    fn.nests.erase(
        std::remove_if(fn.nests.begin(), fn.nests.end(),
                       [&](const LockNest& nest) {
                         if (lb.manual_names.count(nest.held) == 0) {
                           return false;
                         }
                         auto mit = lb.may_held.find(nest.line);
                         return mit == lb.may_held.end() ||
                                mit->second.count(nest.held) == 0;
                       }),
        fn.nests.end());
  }
}

/// Wall-clock cost of each whole-program pass; surfaced in the lint report
/// and enforced by the fvae_lint ctest's --budget-ms self-runtime gate.
struct AnalysisTiming {
  double link_ms = 0;
  double lock_cycle_ms = 0;
  double hot_path_ms = 0;
  double event_loop_ms = 0;
  double guarded_by_ms = 0;
  double verb_switch_ms = 0;
  double cfg_ms = 0;  // CFG construction + interprocedural summaries
  double lock_balance_ms = 0;
  double status_path_ms = 0;
  double resource_escape_ms = 0;
  double use_after_move_ms = 0;
};

/// Runs the whole-program analyses over a file set: first the CFG build,
/// interprocedural summaries and the lock-balance pass (whose corrections
/// the legacy fact-walks depend on), then the legacy five (lock-cycle,
/// hot-path, event-loop, guarded-by, verb-switch), then the remaining
/// path-sensitive analyses (status-path, resource-escape, use-after-move).
inline std::vector<Finding> AnalyzeProgram(const std::vector<SourceFile>& files,
                                           AnalysisTiming* timing = nullptr) {
  using Clock = std::chrono::steady_clock;
  auto ms = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  const auto t0 = Clock::now();
  ProgramFacts pf = LinkProgram(files);
  const auto t1 = Clock::now();
  const std::map<size_t, Cfg> cfgs = BuildFunctionCfgs(pf);
  const SummaryMap summaries = ComputeSummaries(pf);
  const auto t_cfg = Clock::now();
  std::vector<Finding> findings;
  AnalyzeLockBalance(&pf, summaries, cfgs, &findings);
  const auto t_lb = Clock::now();
  auto append = [&findings](std::vector<Finding> more) {
    findings.insert(findings.end(), more.begin(), more.end());
  };
  append(AnalyzeLockOrder(pf));
  const auto t2 = Clock::now();
  append(AnalyzeHotPaths(pf));
  const auto t3 = Clock::now();
  append(AnalyzeEventLoops(pf));
  const auto t4 = Clock::now();
  append(AnalyzeGuardedBy(pf));
  const auto t5 = Clock::now();
  append(AnalyzeEnumSwitches(pf));
  const auto t6 = Clock::now();
  AnalyzeStatusPaths(pf, summaries, cfgs, &findings);
  const auto t7 = Clock::now();
  AnalyzeResourceEscapes(pf, summaries, cfgs, &findings);
  const auto t8 = Clock::now();
  AnalyzeUseAfterMove(pf, summaries, cfgs, &findings);
  const auto t9 = Clock::now();
  if (timing != nullptr) {
    timing->link_ms = ms(t0, t1);
    timing->cfg_ms = ms(t1, t_cfg);
    timing->lock_balance_ms = ms(t_cfg, t_lb);
    timing->lock_cycle_ms = ms(t_lb, t2);
    timing->hot_path_ms = ms(t2, t3);
    timing->event_loop_ms = ms(t3, t4);
    timing->guarded_by_ms = ms(t4, t5);
    timing->verb_switch_ms = ms(t5, t6);
    timing->status_path_ms = ms(t6, t7);
    timing->resource_escape_ms = ms(t7, t8);
    timing->use_after_move_ms = ms(t8, t9);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

}  // namespace fvae::lint

#endif  // FVAE_TOOLS_LINT_GRAPH_H_
