#ifndef FVAE_TOOLS_LINT_GRAPH_H_
#define FVAE_TOOLS_LINT_GRAPH_H_

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/cpp_lexer.h"
#include "tools/tu_facts.h"

/// Cross-TU linking and whole-program analyses for fvae_lint v2.
///
/// LinkProgram() merges per-file TuFacts into one ProgramFacts: a
/// name-indexed function table (header-declared FVAE_HOT/FVAE_NOALLOC
/// attributes merged onto out-of-line definitions) plus the table of
/// class-member lock declarations. Calls are resolved by qualified-name
/// suffix matching with a preference cascade (same class, then same
/// namespace, then every candidate) — deliberately overload-blind and
/// therefore over-approximate: the analyses only ever see *more* paths
/// than the program has, never fewer.
///
/// Two analyses run on the linked facts:
///
///   lock-cycle   The lock acquisition-order graph has an edge A -> B when
///                A is declared FVAE_ACQUIRED_BEFORE(B) (or B is declared
///                FVAE_ACQUIRED_AFTER(A)), when B is observed taken while
///                A is held inside one function, or when a function called
///                with A held transitively acquires B. Any cycle is a
///                potential deadlock and is reported with the full path,
///                each edge carrying its provenance (file:line, declared
///                vs observed).
///
///   hot-path     Functions marked FVAE_HOT must not log, do IO, or
///                acquire locks other than ones whose declaration carries
///                FVAE_HOT_LOCK_EXEMPT — transitively through every
///                resolvable callee. FVAE_NOALLOC additionally forbids
///                heap allocation tokens. Violations print the call chain
///                from the annotated root to the offender.
///
/// Line-level suppressions: a `fvae-lint: allow(<rule>)` comment on the
/// offending line silences that fact; `allow(hot-path)` on a *call* line
/// cuts that edge out of the hot walk (used where the callee is known to
/// reuse capacity — the runtime operator-new witness in serving_test backs
/// the claim).

namespace fvae::lint {

/// One linter finding. `file` is the path label the content was registered
/// under; `rule` is a stable kebab-case identifier.
struct Finding {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

struct SourceFile {
  std::string path;
  std::string content;
};

struct ProgramFacts {
  std::vector<FunctionFacts> functions;
  std::vector<LockDecl> locks;
  std::map<std::string, std::vector<size_t>> functions_by_name;
  std::map<std::string, std::vector<size_t>> locks_by_member;
  // Raw source lines per file, for `fvae-lint: allow(...)` suppressions.
  std::map<std::string, std::vector<std::string>> file_lines;
};

namespace graph_detail {

inline std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  lines.push_back(current);
  return lines;
}

inline bool EndsWithSegment(const std::string& qualified,
                            const std::string& suffix) {
  if (qualified == suffix) return true;
  if (qualified.size() <= suffix.size() + 2) return false;
  return qualified.compare(qualified.size() - suffix.size() - 2, 2, "::") ==
             0 &&
         qualified.compare(qualified.size() - suffix.size(), suffix.size(),
                           suffix) == 0;
}

}  // namespace graph_detail

/// True when `file:line` carries a `fvae-lint: allow(<rule>)` suppression.
inline bool LineAllows(const ProgramFacts& pf, const std::string& file,
                       size_t line, const std::string& rule) {
  auto it = pf.file_lines.find(file);
  if (it == pf.file_lines.end() || line == 0 || line > it->second.size()) {
    return false;
  }
  return it->second[line - 1].find("fvae-lint: allow(" + rule + ")") !=
         std::string::npos;
}

inline ProgramFacts LinkProgram(const std::vector<SourceFile>& files) {
  ProgramFacts pf;
  std::vector<AttrDecl> attr_decls;
  for (const SourceFile& f : files) {
    TuFacts tu = ExtractTuFacts(f.path, LexCpp(f.content));
    for (FunctionFacts& fn : tu.functions) {
      pf.functions.push_back(std::move(fn));
    }
    for (LockDecl& lock : tu.locks) pf.locks.push_back(std::move(lock));
    for (AttrDecl& a : tu.attr_decls) attr_decls.push_back(std::move(a));
    pf.file_lines[f.path] = graph_detail::SplitLines(f.content);
  }
  // Merge prototype attributes onto the matching definitions.
  for (const AttrDecl& a : attr_decls) {
    for (FunctionFacts& fn : pf.functions) {
      if (fn.name == a.name && fn.cls == a.cls && fn.ns == a.ns) {
        fn.hot = fn.hot || a.hot;
        fn.noalloc = fn.noalloc || a.noalloc;
      }
    }
  }
  for (size_t i = 0; i < pf.functions.size(); ++i) {
    pf.functions_by_name[pf.functions[i].name].push_back(i);
  }
  for (size_t i = 0; i < pf.locks.size(); ++i) {
    pf.locks_by_member[pf.locks[i].member].push_back(i);
  }
  return pf;
}

/// Resolves a lock name used inside `fn` to its declaration: same class
/// first, then same namespace, then a unique global match, then the
/// lexicographically first candidate (deterministic). nullptr when no
/// member declaration exists (function-local or foreign locks).
inline const LockDecl* ResolveLock(const ProgramFacts& pf,
                                   const FunctionFacts& fn,
                                   const std::string& name) {
  auto it = pf.locks_by_member.find(name);
  if (it == pf.locks_by_member.end()) return nullptr;
  for (size_t i : it->second) {
    const LockDecl& lock = pf.locks[i];
    if (lock.ns == fn.ns && !fn.cls.empty() &&
        (lock.cls == fn.cls ||
         graph_detail::EndsWithSegment(fn.cls, lock.cls))) {
      return &lock;
    }
  }
  const LockDecl* best = nullptr;
  for (size_t i : it->second) {
    const LockDecl& lock = pf.locks[i];
    if (lock.ns != fn.ns) continue;
    if (best == nullptr || lock.id < best->id) best = &lock;
  }
  if (best != nullptr) return best;
  for (size_t i : it->second) {
    const LockDecl& lock = pf.locks[i];
    if (best == nullptr || lock.id < best->id) best = &lock;
  }
  return best;
}

/// Resolves an annotation argument (possibly qualified) from the context of
/// the declaring lock's class.
inline const LockDecl* ResolveLockArg(const ProgramFacts& pf,
                                      const LockDecl& from,
                                      const std::string& arg) {
  if (arg.find("::") != std::string::npos) {
    for (const LockDecl& lock : pf.locks) {
      if (graph_detail::EndsWithSegment(lock.id, arg)) return &lock;
    }
    return nullptr;
  }
  FunctionFacts ctx;
  ctx.ns = from.ns;
  ctx.cls = from.cls;
  return ResolveLock(pf, ctx, arg);
}

/// Resolves a call site to candidate definitions: qualifier suffix match,
/// member calls restricted to class methods, then the preference cascade
/// same-class > same-namespace > all.
inline std::vector<size_t> ResolveCall(const ProgramFacts& pf,
                                       const FunctionFacts& caller,
                                       const CallSite& call) {
  auto it = pf.functions_by_name.find(call.name);
  if (it == pf.functions_by_name.end()) return {};
  std::vector<size_t> cands;
  std::string suffix;
  for (const std::string& q : call.quals) suffix += q + "::";
  suffix += call.name;
  for (size_t i : it->second) {
    const FunctionFacts& f = pf.functions[i];
    if (!call.quals.empty() &&
        !graph_detail::EndsWithSegment(f.qualified, suffix)) {
      continue;
    }
    if (call.member_access && f.cls.empty()) continue;
    cands.push_back(i);
  }
  auto narrow = [&pf, &cands](auto pred) {
    std::vector<size_t> kept;
    for (size_t i : cands) {
      if (pred(pf.functions[i])) kept.push_back(i);
    }
    if (!kept.empty()) cands = std::move(kept);
  };
  narrow([&caller](const FunctionFacts& f) {
    return !caller.cls.empty() && f.cls == caller.cls && f.ns == caller.ns;
  });
  if (cands.size() > 1) {
    narrow([&caller](const FunctionFacts& f) { return f.ns == caller.ns; });
  }
  return cands;
}

namespace graph_detail {

/// Memoized transitive set of resolved lock ids a function may acquire
/// (its own acquisitions plus every resolvable callee's).
class AcquiredLocks {
 public:
  explicit AcquiredLocks(const ProgramFacts& pf) : pf_(pf) {}

  const std::set<std::string>& Of(size_t fi) {
    auto it = memo_.find(fi);
    if (it != memo_.end()) return it->second;
    // Insert an empty set first: recursion terminates on the partial set.
    auto [slot, inserted] = memo_.emplace(fi, std::set<std::string>());
    (void)inserted;
    const FunctionFacts& fn = pf_.functions[fi];
    std::set<std::string> acc;
    for (const LockAcq& a : fn.acquisitions) {
      const LockDecl* lock = ResolveLock(pf_, fn, a.lock);
      if (lock != nullptr) acc.insert(lock->id);
    }
    for (const CallSite& call : fn.calls) {
      for (size_t ci : ResolveCall(pf_, fn, call)) {
        const std::set<std::string>& sub = Of(ci);
        acc.insert(sub.begin(), sub.end());
      }
    }
    memo_[fi] = std::move(acc);
    return memo_[fi];
  }

 private:
  const ProgramFacts& pf_;
  std::map<size_t, std::set<std::string>> memo_;
};

struct LockEdge {
  std::string to;
  std::string file;
  size_t line = 0;
  std::string why;
};

}  // namespace graph_detail

/// Lock-order verification: builds the acquisition-order graph and reports
/// every distinct cycle with its full path.
inline std::vector<Finding> AnalyzeLockOrder(const ProgramFacts& pf) {
  using graph_detail::LockEdge;
  std::map<std::string, std::vector<LockEdge>> adj;
  std::set<std::pair<std::string, std::string>> have;
  auto add_edge = [&adj, &have, &pf](const std::string& from,
                                     const std::string& to,
                                     const std::string& file, size_t line,
                                     const std::string& why) {
    if (from == to) return;  // same-member self edges: distinct instances
    if (LineAllows(pf, file, line, "lock-cycle")) return;
    if (!have.emplace(from, to).second) return;
    adj[from].push_back({to, file, line, why});
    adj.emplace(to, std::vector<LockEdge>());
  };

  for (const LockDecl& lock : pf.locks) {
    for (const std::string& arg : lock.acquired_before) {
      const LockDecl* other = ResolveLockArg(pf, lock, arg);
      if (other == nullptr) continue;
      add_edge(lock.id, other->id, lock.file, lock.line,
               "declared FVAE_ACQUIRED_BEFORE on " + lock.id);
    }
    for (const std::string& arg : lock.acquired_after) {
      const LockDecl* other = ResolveLockArg(pf, lock, arg);
      if (other == nullptr) continue;
      add_edge(other->id, lock.id, lock.file, lock.line,
               "declared FVAE_ACQUIRED_AFTER on " + lock.id);
    }
  }

  graph_detail::AcquiredLocks acquired(pf);
  for (size_t fi = 0; fi < pf.functions.size(); ++fi) {
    const FunctionFacts& fn = pf.functions[fi];
    for (const LockNest& nest : fn.nests) {
      const LockDecl* held = ResolveLock(pf, fn, nest.held);
      const LockDecl* taken = ResolveLock(pf, fn, nest.acquired);
      if (held == nullptr || taken == nullptr) continue;
      add_edge(held->id, taken->id, fn.file, nest.line,
               "observed in " + fn.qualified);
    }
    for (const CallSite& call : fn.calls) {
      if (call.held.empty()) continue;
      for (size_t ci : ResolveCall(pf, fn, call)) {
        for (const std::string& acquired_id : acquired.Of(ci)) {
          for (const std::string& held_name : call.held) {
            const LockDecl* held = ResolveLock(pf, fn, held_name);
            if (held == nullptr) continue;
            add_edge(held->id, acquired_id, fn.file, call.line,
                     "observed: " + fn.qualified + " calls " +
                         pf.functions[ci].qualified + " holding " + held->id);
          }
        }
      }
    }
  }

  // DFS cycle detection; one finding per distinct cycle node-set.
  std::vector<Finding> findings;
  std::set<std::string> reported;
  std::map<std::string, int> color;  // 0 white, 1 on stack, 2 done
  std::vector<std::pair<std::string, const LockEdge*>> stack;

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    stack.push_back({node, nullptr});
    for (const LockEdge& e : adj[node]) {
      stack.back().second = &e;
      if (color[e.to] == 1) {
        // Extract the cycle from the stack.
        size_t start = 0;
        for (size_t s = 0; s < stack.size(); ++s) {
          if (stack[s].first == e.to) start = s;
        }
        std::vector<std::string> nodes;
        std::ostringstream path;
        for (size_t s = start; s < stack.size(); ++s) {
          nodes.push_back(stack[s].first);
          path << stack[s].first << " -> ";
          const LockEdge* used = stack[s].second;
          path << "[" << used->why << " at " << used->file << ":"
               << used->line << "] ";
        }
        path << e.to;
        std::sort(nodes.begin(), nodes.end());
        std::string key;
        for (const std::string& id : nodes) key += id + "|";
        if (reported.insert(key).second) {
          findings.push_back({e.file, e.line, "lock-cycle",
                              "lock acquisition order cycle: " + path.str()});
        }
      } else if (color[e.to] == 0) {
        dfs(e.to);
      }
    }
    stack.pop_back();
    color[node] = 2;
  };
  for (const auto& [node, edges] : adj) {
    (void)edges;
    if (color[node] == 0) dfs(node);
  }
  return findings;
}

/// Hot-path purity: walks callees from every FVAE_HOT / FVAE_NOALLOC root
/// and reports logging, IO, non-exempt lock acquisition — plus heap
/// allocation for FVAE_NOALLOC roots — with the root-to-offender chain.
inline std::vector<Finding> AnalyzeHotPaths(const ProgramFacts& pf) {
  std::vector<Finding> findings;
  std::set<std::string> seen;  // rule|file|line dedup across roots
  auto report = [&findings, &seen](const std::string& rule,
                                   const FunctionFacts& fn, size_t line,
                                   const std::string& message) {
    std::ostringstream key;
    key << rule << "|" << fn.file << "|" << line;
    if (seen.insert(key.str()).second) {
      findings.push_back({fn.file, line, rule, message});
    }
  };

  for (size_t root = 0; root < pf.functions.size(); ++root) {
    if (!pf.functions[root].hot) continue;
    const bool noalloc = pf.functions[root].noalloc;
    const std::string root_attr = noalloc ? "FVAE_NOALLOC" : "FVAE_HOT";
    // BFS with parent pointers for chain reconstruction.
    std::map<size_t, size_t> parent;
    std::deque<size_t> queue;
    std::set<size_t> visited;
    queue.push_back(root);
    visited.insert(root);
    auto chain_of = [&parent, &pf, root](size_t fi) {
      std::vector<std::string> parts;
      for (size_t cur = fi;; cur = parent[cur]) {
        parts.push_back(pf.functions[cur].qualified);
        if (cur == root) break;
      }
      std::string chain;
      for (size_t p = parts.size(); p-- > 0;) {
        chain += parts[p];
        if (p != 0) chain += " -> ";
      }
      return chain;
    };
    while (!queue.empty()) {
      const size_t fi = queue.front();
      queue.pop_front();
      const FunctionFacts& fn = pf.functions[fi];
      for (const PurityFact& log : fn.logs) {
        if (LineAllows(pf, fn.file, log.line, "hot-log")) continue;
        report("hot-log", fn, log.line,
               "logging call '" + log.token + "' reachable from " +
                   root_attr + " " + pf.functions[root].qualified + " via " +
                   chain_of(fi));
      }
      for (const PurityFact& io : fn.ios) {
        if (LineAllows(pf, fn.file, io.line, "hot-io")) continue;
        report("hot-io", fn, io.line,
               "IO touch '" + io.token + "' reachable from " + root_attr +
                   " " + pf.functions[root].qualified + " via " +
                   chain_of(fi));
      }
      for (const LockAcq& acq : fn.acquisitions) {
        const LockDecl* lock = ResolveLock(pf, fn, acq.lock);
        if (lock != nullptr && lock->hot_exempt) continue;
        if (LineAllows(pf, fn.file, acq.line, "hot-lock")) continue;
        report("hot-lock", fn, acq.line,
               "lock '" + (lock != nullptr ? lock->id : acq.lock) +
                   "' (not FVAE_HOT_LOCK_EXEMPT) acquired on path from " +
                   root_attr + " " + pf.functions[root].qualified + " via " +
                   chain_of(fi));
      }
      if (noalloc) {
        for (const PurityFact& alloc : fn.allocs) {
          if (LineAllows(pf, fn.file, alloc.line, "hot-alloc")) continue;
          report("hot-alloc", fn, alloc.line,
                 "heap allocation '" + alloc.token + "' reachable from " +
                     root_attr + " " + pf.functions[root].qualified +
                     " via " + chain_of(fi));
        }
      }
      for (const CallSite& call : fn.calls) {
        if (LineAllows(pf, fn.file, call.line, "hot-path")) continue;
        for (size_t ci : ResolveCall(pf, fn, call)) {
          if (visited.insert(ci).second) {
            parent[ci] = fi;
            queue.push_back(ci);
          }
        }
      }
    }
  }
  return findings;
}

/// Runs the whole-program analyses (lock-cycle + hot-path) over a file set.
inline std::vector<Finding> AnalyzeProgram(
    const std::vector<SourceFile>& files) {
  const ProgramFacts pf = LinkProgram(files);
  std::vector<Finding> findings = AnalyzeLockOrder(pf);
  std::vector<Finding> hot = AnalyzeHotPaths(pf);
  findings.insert(findings.end(), hot.begin(), hot.end());
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

}  // namespace fvae::lint

#endif  // FVAE_TOOLS_LINT_GRAPH_H_
