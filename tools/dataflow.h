#ifndef FVAE_TOOLS_DATAFLOW_H_
#define FVAE_TOOLS_DATAFLOW_H_

#include <cstddef>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/cfg.h"
#include "tools/cpp_lexer.h"

/// Generic worklist dataflow solver over tools/cfg.h graphs, plus the
/// per-function summary type the interprocedural wiring in
/// tools/lint_graph.h exports.
///
/// The solver is direction- and lattice-agnostic: an analysis supplies a
/// `State` value type (with operator==), a boundary state injected at the
/// entry (forward) or exit (backward) node, an initial state for every
/// other node, a join, and a per-node transfer function. Iteration is
/// bounded by a per-function budget — `kVisitsPerNode * nodes` node
/// visits — so a lattice with unbounded ascent (or a transfer bug) marks
/// the result non-converged instead of hanging the lint run; callers
/// skip non-converged functions, trading silence for termination.
///
/// The four path-sensitive analyses built on this solver (status-path,
/// resource-escape, lock-balance, use-after-move) live in
/// tools/lint_graph.h next to the cross-TU facts they need; their shared
/// lattice is the three-point chain in `Flow` below: per tracked name,
/// a definite state on all paths, or `kMixed` when paths disagree —
/// exactly the distinction the findings report ("on every path" vs "on
/// some path"). Absent map keys mean "no obligation", so joining a
/// branch that never created the obligation keeps the other branch's
/// definite state only where both agree.

namespace fvae::lint {

enum class DataflowDir { kForward, kBackward };

template <typename State>
struct DataflowResult {
  std::vector<State> in;   // state at node entry (forward: before stmts)
  std::vector<State> out;  // state at node exit
  bool converged = true;
};

namespace dataflow_detail {
constexpr size_t kVisitsPerNode = 64;
}  // namespace dataflow_detail

/// Solves a dataflow problem to fixpoint (or budget exhaustion).
///   transfer(node_index, in_state) -> out_state
///   join(accumulator*, incoming_state) merges predecessor outputs.
/// For kBackward the roles of succ/pred and entry/exit swap; `in` is then
/// the state at node *exit* and `out` at node entry, matching the
/// direction of propagation.
template <typename State, typename TransferFn, typename JoinFn>
DataflowResult<State> SolveDataflow(const Cfg& cfg, DataflowDir dir,
                                    const State& boundary,
                                    const State& initial, TransferFn transfer,
                                    JoinFn join) {
  const size_t n = cfg.nodes.size();
  DataflowResult<State> result;
  result.in.assign(n, initial);
  result.out.assign(n, initial);
  if (cfg.truncated || n == 0) {
    result.converged = false;
    return result;
  }
  const bool forward = dir == DataflowDir::kForward;
  const size_t boundary_node = forward ? Cfg::kEntry : Cfg::kExit;
  result.in[boundary_node] = boundary;
  result.out[boundary_node] = transfer(boundary_node, boundary);

  std::deque<size_t> worklist;
  std::vector<bool> queued(n, false);
  for (size_t i = 0; i < n; ++i) {
    worklist.push_back(i);
    queued[i] = true;
  }
  size_t budget = dataflow_detail::kVisitsPerNode * n;
  while (!worklist.empty()) {
    if (budget-- == 0) {
      result.converged = false;
      break;
    }
    const size_t node = worklist.front();
    worklist.pop_front();
    queued[node] = false;
    const std::vector<size_t>& preds =
        forward ? cfg.nodes[node].pred : cfg.nodes[node].succ;
    State in = node == boundary_node ? boundary : initial;
    for (size_t p : preds) {
      // Unreachable predecessors (dead code after a terminator) carry the
      // initial state only; joining them in would dilute a definite
      // "on every path" fact into kMixed, so forward solves skip them.
      if (forward && !cfg.reachable[p]) continue;
      join(&in, result.out[p]);
    }
    State out = transfer(node, in);
    result.in[node] = in;
    if (out == result.out[node]) continue;
    result.out[node] = std::move(out);
    const std::vector<size_t>& succs =
        forward ? cfg.nodes[node].succ : cfg.nodes[node].pred;
    for (size_t s : succs) {
      if (!queued[s]) {
        queued[s] = true;
        worklist.push_back(s);
      }
    }
  }
  return result;
}

/// Three-point obligation lattice shared by the path-sensitive analyses.
/// The meaning of kA/kB is per-analysis (e.g. status-path: kA=consumed,
/// kB=unconsumed; lock-balance: kA=unheld, kB=held); kMixed means the
/// paths reaching this point disagree.
enum class Flow : unsigned char { kA = 0, kB = 1, kMixed = 2 };

/// Map-valued lattice state: tracked name -> Flow. A missing key is the
/// analysis's "no obligation" element; `missing` says which Flow value an
/// absent key stands for when joining against a map that has the key.
struct FlowState {
  std::map<std::string, Flow> vals;
  bool operator==(const FlowState& other) const {
    return vals == other.vals;
  }
};

inline Flow JoinFlow(Flow a, Flow b) { return a == b ? a : Flow::kMixed; }

/// Pointwise join; keys missing on one side join as `missing`. When the
/// join result equals `missing`, the key is dropped again so states stay
/// canonical (operator== keeps working as set equality).
inline void JoinFlowStates(FlowState* acc, const FlowState& other,
                           Flow missing) {
  for (auto& [name, val] : acc->vals) {
    auto it = other.vals.find(name);
    val = JoinFlow(val, it == other.vals.end() ? missing : it->second);
  }
  for (const auto& [name, val] : other.vals) {
    if (acc->vals.count(name) == 0) {
      acc->vals[name] = JoinFlow(val, missing);
    }
  }
  for (auto it = acc->vals.begin(); it != acc->vals.end();) {
    if (it->second == missing) {
      it = acc->vals.erase(it);
    } else {
      ++it;
    }
  }
}

/// Interprocedural summary of one function, keyed by bare name in
/// lint_graph.h (overloads OR-merge — the usual over-approximation).
///
///   consumes_status    has a Status/Result-typed parameter: passing a
///                      tracked Status value into it counts as consuming
///                      the value (the callee examines it).
///   takes_ownership    has an rvalue-reference parameter: passing a
///                      tracked resource via std::move hands it off.
///   releases_argument  the body calls a release-table method (Unlock,
///                      Cancel, Del, Commit, Abort, close, Reset) on or
///                      with one of its parameters: passing a tracked
///                      resource to it discharges the obligation, so
///                      wrapper functions don't flag their callers.
struct FnSummary {
  bool consumes_status = false;
  bool takes_ownership = false;
  bool releases_argument = false;
};

using SummaryMap = std::map<std::string, FnSummary>;

}  // namespace fvae::lint

#endif  // FVAE_TOOLS_DATAFLOW_H_
