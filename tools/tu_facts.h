#ifndef FVAE_TOOLS_TU_FACTS_H_
#define FVAE_TOOLS_TU_FACTS_H_

#include <set>
#include <string>
#include <vector>

#include "tools/cpp_lexer.h"

/// Per-translation-unit fact extraction for fvae_lint v2.
///
/// Walks one file's token stream (tools/cpp_lexer.h) tracking namespace /
/// class / function / block scopes by brace matching, and records:
///
///   - function definitions with their namespace-qualified names and any
///     FVAE_HOT / FVAE_NOALLOC attributes (from the definition itself or a
///     matching in-class declaration);
///   - call sites inside each function (qualifier chain + last name), with
///     the set of locks held at the call;
///   - lock acquisitions: RAII guards (MutexLock / WriterMutexLock /
///     ReaderMutexLock, scope-tracked) and manual .Lock()/.LockShared()
///     (released by the matching .Unlock()), plus the observed nesting
///     pairs "Y acquired while X held";
///   - heap allocations (`new`, malloc family, make_unique/make_shared,
///     growing container calls), logging calls and IO touches, each with
///     its line — the raw material of the hot-path purity analysis;
///   - class-member lock declarations (`Mutex mu_;`) with their
///     FVAE_ACQUIRED_BEFORE / FVAE_ACQUIRED_AFTER rank annotations and the
///     FVAE_HOT_LOCK_EXEMPT marker.
///
/// The extractor is name-based by design (no overload resolution, no
/// template instantiation): tools/lint_graph.h links these facts across
/// files by qualified-name matching. Known blind spots, by construction:
/// constructor-call allocations (`Matrix m(r, c)`), copy-assignment
/// allocations (`a = b`), and `operator=` bodies. The runtime
/// operator-new witness in serving_test covers what the token level
/// cannot see (docs/ARCHITECTURE.md §7).

namespace fvae::lint {

struct CallSite {
  std::vector<std::string> quals;  // "::"-joined qualifier chain, outermost first
  std::string name;                // last component
  bool member_access = false;      // reached via '.' or '->'
  std::string receiver;            // ident before the '.'/'->' ("" if none)
  size_t line = 0;
  std::vector<std::string> held;   // lock member-names held at the call
};

/// One allocation / logging / IO touch inside a function body.
struct PurityFact {
  std::string token;  // the offending identifier, e.g. "push_back"
  size_t line = 0;
};

/// A function-pointer member assignment (`t->softmax_inplace = SoftmaxAvx2;`)
/// — the registration half of a dispatch table. The linker resolves `target`
/// against the program's function names and lets call resolution follow
/// member calls of `member` (e.g. `Kernels().softmax_inplace(..)`) into every
/// bound target, so runtime-dispatched kernels stay inside the hot-path
/// purity walk instead of vanishing behind the indirection.
struct DispatchBind {
  std::string member;  // the assigned member, e.g. "softmax_inplace"
  std::string target;  // "::"-joined assigned chain, e.g. "SoftmaxAvx2"
  size_t line = 0;
};

struct LockAcq {
  std::string lock;  // last identifier of the lock expression, e.g. "mutex_"
  size_t line = 0;
};

/// Observed nesting: `acquired` taken while `held` was held.
struct LockNest {
  std::string held;
  std::string acquired;
  size_t line = 0;
};

/// One read/write of a (possibly guarded) data member inside a function
/// body: a bare `queue_` in a method, or `buffer->events` with an explicit
/// receiver. The guarded-by analysis matches these against FVAE_GUARDED_BY
/// declarations; unguarded members simply never match.
struct MemberAccess {
  std::string member;
  std::string receiver;  // "" for this-relative access
  size_t line = 0;
  std::vector<std::string> held;  // lock member-names held at the access
};

/// One function parameter, parsed from the declarator's parameter list.
/// Name-based like everything else here: `fallible` records whether the
/// spelled type names Status or Result (feeding the consumes-status
/// summary), `rvalue_ref` whether the parameter is `T&&` (takes-ownership
/// summary). Parameters whose pieces the comma split cannot parse (deep
/// template types with defaulted arguments) are simply dropped —
/// summaries only ever under-claim.
struct ParamFacts {
  std::string name;       // "" when unnamed
  bool rvalue_ref = false;
  bool fallible = false;  // type mentions Status / Result
};

struct FunctionFacts {
  std::string file;
  size_t line = 0;
  std::string ns;         // enclosing namespaces, "a::b" ("" at file scope)
  std::string cls;        // enclosing/explicit class qualifier ("" for free)
  std::string name;       // unqualified name
  std::string qualified;  // ns::cls::name with empty parts skipped
  bool hot = false;
  bool noalloc = false;
  bool event_loop = false;  // FVAE_EVENT_LOOP root
  bool may_block = false;   // FVAE_MAY_BLOCK: blocks by design
  std::vector<std::string> requires_locks;  // FVAE_REQUIRES(...) args
  std::vector<CallSite> calls;
  std::vector<LockAcq> acquisitions;
  std::vector<LockNest> nests;
  std::vector<PurityFact> allocs;
  std::vector<PurityFact> logs;
  std::vector<PurityFact> ios;
  std::vector<PurityFact> blocking;  // loop-stalling tokens (poll, waits, …)
  std::vector<PurityFact> traces;    // TraceSpan / FVAE_TRACE_SCOPE sites
  std::vector<MemberAccess> accesses;
  std::vector<DispatchBind> dispatch_binds;  // fn-pointer member assignments
  std::vector<ParamFacts> params;
  // Token range strictly inside the body's braces, as indices into the
  // file's token vector — the input to tools/cfg.h. Both zero when the
  // definition never closed (malformed input).
  size_t body_begin = 0;
  size_t body_end = 0;
};

/// A class-member lock declaration (fvae::Mutex / fvae::SharedMutex).
struct LockDecl {
  std::string file;
  size_t line = 0;
  std::string ns;
  std::string cls;
  std::string member;
  std::string id;  // ns::cls::member
  bool hot_exempt = false;
  bool loop_exempt = false;  // FVAE_LOOP_LOCK_EXEMPT
  std::vector<std::string> acquired_before;  // raw annotation args
  std::vector<std::string> acquired_after;
};

/// Purity/loop/requires annotations on a prototype (header declaration)
/// whose body lives elsewhere; merged onto the definition during linking.
struct AttrDecl {
  std::string ns;
  std::string cls;
  std::string name;
  bool hot = false;
  bool noalloc = false;
  bool event_loop = false;
  bool may_block = false;
  std::vector<std::string> requires_locks;
};

/// An FVAE_GUARDED_BY(m) data-member declaration.
struct GuardedDecl {
  std::string file;
  size_t line = 0;
  std::string ns;
  std::string cls;
  std::string member;
  std::string guard;  // annotation argument ("mutex_", "Lock", …)
};

/// A class-scope data member with a plainly spelled type (`EpollLoop loop;`,
/// `serving::EmbeddingService* service_;`). Feeds receiver-aware call
/// resolution: `service_->Lookup(...)` narrows to EmbeddingService methods.
struct MemberTypeDecl {
  std::string cls;     // owning class
  std::string member;
  std::string type;    // last segment of the type name
};

/// A switch statement's case labels; only qualified labels (`Verb::kStats`)
/// are recorded — they key the exhaustive-switch analysis to enum classes.
struct SwitchFacts {
  std::string file;
  size_t line = 0;  // the `switch` line
  std::string function;  // qualified enclosing function
  std::vector<std::string> cases;  // "::"-joined label chains
  bool has_default = false;
  size_t default_line = 0;
};

/// An enum (class) declaration with its enumerators.
struct EnumDecl {
  std::string file;
  size_t line = 0;
  std::string ns;
  std::string cls;
  std::string name;
  std::vector<std::string> enumerators;
};

struct TuFacts {
  std::vector<FunctionFacts> functions;
  std::vector<LockDecl> locks;
  std::vector<AttrDecl> attr_decls;
  std::vector<GuardedDecl> guarded;
  std::vector<MemberTypeDecl> member_types;
  std::vector<SwitchFacts> switches;
  std::vector<EnumDecl> enums;
};

namespace facts_detail {

inline const std::set<std::string>& ControlKeywords() {
  static const std::set<std::string> kSet = {
      "if",      "for",         "while",    "switch",   "return",
      "sizeof",  "alignof",     "decltype", "catch",    "noexcept",
      "throw",   "delete",      "new",      "case",     "goto",
      "using",   "template",    "typename", "operator", "alignas",
      "requires","static_assert","defined", "assert",   "co_await",
      "co_return","co_yield",   "typeid"};
  return kSet;
}

inline bool IsGuardType(const std::string& ident) {
  return ident == "MutexLock" || ident == "WriterMutexLock" ||
         ident == "ReaderMutexLock";
}

/// Heap-allocating member calls (obj.x(...) / obj->x(...)).
inline bool IsAllocMember(const std::string& ident) {
  static const std::set<std::string> kSet = {
      "push_back", "emplace_back", "emplace", "emplace_front", "push_front",
      "resize",    "reserve",      "insert",  "append",        "assign",
      "substr",    "str"};
  return kSet.count(ident) > 0;
}

/// Heap-allocating free/qualified calls.
inline bool IsAllocFree(const std::string& ident) {
  static const std::set<std::string> kSet = {
      "malloc",      "calloc",      "realloc", "strdup", "aligned_alloc",
      "make_unique", "make_shared", "to_string"};
  return kSet.count(ident) > 0;
}

inline bool IsLogToken(const std::string& ident) {
  static const std::set<std::string> kSet = {
      "FVAE_LOG", "printf", "fprintf", "puts", "fputs", "putchar",
      "cout",     "cerr",   "clog"};
  return kSet.count(ident) > 0;
}

inline bool IsIoToken(const std::string& ident) {
  static const std::set<std::string> kSet = {
      "ifstream", "ofstream",         "fstream",   "fopen",    "fread",
      "fwrite",   "fclose",           "fseek",     "fflush",   "fsync",
      "filesystem", "ReadFileToString", "AtomicFileWriter",
      "sleep_for", "sleep_until",     "usleep",    "nanosleep"};
  return kSet.count(ident) > 0;
}

///// Bare / ::-qualified calls that park the calling thread: the core of the
/// event-loop blocking discipline. RetryWithBackoff sleeps between
/// attempts, so a call to it is blocking regardless of what it wraps.
inline bool IsBlockingCall(const std::string& ident) {
  static const std::set<std::string> kSet = {
      "poll",     "ppoll",     "select", "pselect",    "epoll_wait",
      "sleep",    "usleep",    "nanosleep", "sleep_for", "sleep_until",
      "RetryWithBackoff"};
  return kSet.count(ident) > 0;
}

/// Member calls that park the calling thread: condition-variable waits and
/// thread joins.
inline bool IsBlockingMember(const std::string& ident) {
  return ident == "Wait" || ident == "WaitUntil" || ident == "WaitFor" ||
         ident == "join";
}

/// Socket transfer syscalls that must carry MSG_DONTWAIT when issued from
/// an event-loop thread (an explicit, per-call non-blocking guarantee that
/// holds even if the fd's O_NONBLOCK flag is ever mis-set).
inline bool IsSocketTransfer(const std::string& ident) {
  static const std::set<std::string> kSet = {"recv", "recvfrom", "recvmsg",
                                             "send", "sendto",   "sendmsg"};
  return kSet.count(ident) > 0;
}

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kBlock };
  Kind kind = kBlock;
  std::string name;       // namespace / class name
  int func_index = -1;    // kFunction: index into TuFacts::functions
  int switch_index = -1;  // kBlock opened by `switch`: TuFacts::switches
  int enum_index = -1;    // kBlock that is an enum body: TuFacts::enums
};

/// A held lock: RAII guards record the scope depth that releases them;
/// manual .Lock() entries (depth 0, manual=true) wait for .Unlock().
struct HeldLock {
  std::string name;
  size_t depth = 0;
  bool manual = false;
};

inline std::string JoinQualified(const std::string& ns, const std::string& cls,
                                 const std::string& name) {
  std::string out;
  auto add = [&out](const std::string& part) {
    if (part.empty()) return;
    if (!out.empty()) out += "::";
    out += part;
  };
  add(ns);
  add(cls);
  add(name);
  return out;
}

/// Finds the identifier chain immediately preceding the first paren group
/// at paren-depth 0 in `decl`. Returns the chain (e.g. {"FieldVae",
/// "EncodeFoldIn"}), empty when the buffer does not look like a function
/// declarator (control keyword, unbalanced parens, leading '=', ...).
inline std::vector<std::string> DeclaratorName(const std::vector<Tok>& decl) {
  int paren = 0;
  size_t open = decl.size();
  for (size_t i = 0; i < decl.size(); ++i) {
    const Tok& t = decl[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "(") {
        if (paren == 0 && open == decl.size()) open = i;
        ++paren;
      } else if (t.text == ")") {
        --paren;
      } else if (t.text == "=" && paren == 0 && open == decl.size()) {
        return {};  // initializer before any call-ish group: not a function
      }
    }
  }
  if (open == decl.size() || open == 0) return {};
  // Walk the identifier chain backwards over "::" separators.
  std::vector<std::string> chain;
  size_t i = open;
  for (;;) {
    if (i == 0) break;
    const Tok& prev = decl[i - 1];
    if (prev.kind != TokKind::kIdent) break;
    chain.insert(chain.begin(), prev.text);
    if (i >= 2 && decl[i - 2].kind == TokKind::kPunct &&
        decl[i - 2].text == "::") {
      i -= 2;
      continue;
    }
    break;
  }
  if (chain.empty()) return {};
  if (ControlKeywords().count(chain.back()) > 0) return {};
  return chain;
}

inline bool HasIdent(const std::vector<Tok>& decl, const std::string& ident) {
  for (const Tok& t : decl) {
    if (t.kind == TokKind::kIdent && t.text == ident) return true;
  }
  return false;
}

/// Parses the declarator's first top-level paren group (the same group
/// DeclaratorName keyed on) into per-parameter facts. Commas are split at
/// paren- and angle-depth zero; a defaulted argument's expression can
/// unbalance the angle count, in which case later parameters merge into
/// one unparseable piece and drop out — acceptable, summaries only
/// under-claim.
inline std::vector<ParamFacts> ExtractParams(const std::vector<Tok>& decl) {
  std::vector<ParamFacts> params;
  size_t open = decl.size();
  {
    int paren = 0;
    for (size_t i = 0; i < decl.size(); ++i) {
      if (decl[i].kind != TokKind::kPunct) continue;
      if (decl[i].text == "(") {
        if (paren == 0) {
          open = i;
          break;
        }
        ++paren;
      } else if (decl[i].text == ")") {
        --paren;
      }
    }
  }
  if (open == decl.size()) return params;
  // Collect the group and the comma cut points.
  std::vector<std::pair<size_t, size_t>> pieces;
  int paren = 0, angle = 0;
  size_t start = open + 1, close = decl.size();
  for (size_t i = open; i < decl.size(); ++i) {
    const Tok& t = decl[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(") {
      ++paren;
    } else if (t.text == ")") {
      if (--paren == 0) {
        close = i;
        break;
      }
    } else if (t.text == "<") {
      ++angle;
    } else if (t.text == ">") {
      --angle;
    } else if (t.text == ">>") {
      angle -= 2;
    } else if (t.text == "," && paren == 1 && angle <= 0) {
      pieces.emplace_back(start, i);
      start = i + 1;
    }
  }
  if (close == decl.size()) return params;
  pieces.emplace_back(start, close);
  static const std::set<std::string> kCvWords = {
      "const", "volatile", "struct", "class", "typename", "register"};
  for (const auto& [b, e] : pieces) {
    if (b >= e) continue;
    ParamFacts p;
    size_t stop = e;  // cut the default argument off
    for (size_t i = b; i < e; ++i) {
      if (decl[i].kind == TokKind::kPunct && decl[i].text == "=") {
        stop = i;
        break;
      }
    }
    size_t idents = 0;
    std::string last;
    bool last_qualified = false;
    for (size_t i = b; i < stop; ++i) {
      const Tok& t = decl[i];
      if (t.kind == TokKind::kPunct && t.text == "&&") p.rvalue_ref = true;
      if (t.kind != TokKind::kIdent || kCvWords.count(t.text) > 0) continue;
      if (t.text == "Status" || t.text == "Result") p.fallible = true;
      ++idents;
      last = t.text;
      last_qualified = i > b && decl[i - 1].kind == TokKind::kPunct &&
                       decl[i - 1].text == "::";
    }
    // The name is the trailing identifier — present only when at least
    // two type-ish identifiers remain and the last is not a qualified
    // type segment (`const std::string&` is an unnamed string parameter).
    if (idents >= 2 && !last_qualified) p.name = last;
    if (idents > 0) params.push_back(std::move(p));
  }
  return params;
}

/// Parses the parenthesized argument list following `decl[i]` (which names
/// an annotation macro) into "::"-joined qualified names.
inline std::vector<std::string> AnnotationArgs(const std::vector<Tok>& decl,
                                               size_t i) {
  std::vector<std::string> args;
  size_t j = i + 1;
  if (j >= decl.size() || decl[j].text != "(") return args;
  ++j;
  std::string current;
  int depth = 1;
  while (j < decl.size() && depth > 0) {
    const Tok& t = decl[j];
    if (t.kind == TokKind::kPunct && t.text == "(") ++depth;
    if (t.kind == TokKind::kPunct && t.text == ")") {
      if (--depth == 0) break;
    }
    if (t.kind == TokKind::kPunct && t.text == "," && depth == 1) {
      if (!current.empty()) args.push_back(current);
      current.clear();
    } else if (t.kind == TokKind::kIdent) {
      if (!current.empty()) current += "::";
      current += t.text;
    }
    ++j;
  }
  if (!current.empty()) args.push_back(current);
  return args;
}

}  // namespace facts_detail

/// Extracts the facts of one file. `path_label` is recorded verbatim.
inline TuFacts ExtractTuFacts(const std::string& path_label,
                              const std::vector<Tok>& tokens) {
  using facts_detail::AnnotationArgs;
  using facts_detail::ControlKeywords;
  using facts_detail::DeclaratorName;
  using facts_detail::ExtractParams;
  using facts_detail::HasIdent;
  using facts_detail::HeldLock;
  using facts_detail::IsAllocFree;
  using facts_detail::IsAllocMember;
  using facts_detail::IsBlockingCall;
  using facts_detail::IsBlockingMember;
  using facts_detail::IsGuardType;
  using facts_detail::IsIoToken;
  using facts_detail::IsLogToken;
  using facts_detail::IsSocketTransfer;
  using facts_detail::JoinQualified;
  using facts_detail::Scope;
  TuFacts facts;
  std::vector<Scope> stack;
  std::vector<Tok> decl;          // declaration buffer at the current level
  std::vector<HeldLock> held;     // active lock acquisitions (in functions)
  int paren_depth = 0;            // live paren depth (for '{' inside args)

  auto current_ns = [&stack] {
    std::string ns;
    for (const Scope& s : stack) {
      if (s.kind == Scope::kNamespace && !s.name.empty()) {
        if (!ns.empty()) ns += "::";
        ns += s.name;
      }
    }
    return ns;
  };
  auto current_cls = [&stack] {
    std::string cls;
    for (const Scope& s : stack) {
      if (s.kind == Scope::kClass && !s.name.empty()) {
        if (!cls.empty()) cls += "::";
        cls += s.name;
      }
    }
    return cls;
  };
  auto current_function = [&stack, &facts]() -> FunctionFacts* {
    for (size_t i = stack.size(); i-- > 0;) {
      if (stack[i].kind == Scope::kFunction) {
        return &facts.functions[stack[i].func_index];
      }
      if (stack[i].kind != Scope::kBlock) break;
    }
    return nullptr;
  };
  auto held_names = [&held] {
    std::vector<std::string> names;
    names.reserve(held.size());
    for (const HeldLock& h : held) names.push_back(h.name);
    return names;
  };

  /// Registers an acquisition of `lock` in the current function: records
  /// the fact, the nesting pairs against everything currently held, and
  /// pushes the new hold.
  auto acquire = [&](FunctionFacts* fn, const std::string& lock, size_t line,
                     bool manual) {
    fn->acquisitions.push_back({lock, line});
    for (const HeldLock& h : held) fn->nests.push_back({h.name, lock, line});
    held.push_back({lock, stack.size(), manual});
  };

  /// Classifies the declaration buffer when a '{' opens a new scope.
  auto classify_open = [&]() -> Scope {
    Scope scope;
    if (paren_depth > 0) return scope;  // '{' inside an argument list
    if (!decl.empty() && decl.front().kind == TokKind::kIdent &&
        decl.front().text == "namespace") {
      scope.kind = Scope::kNamespace;
      std::string name;
      for (size_t i = 1; i < decl.size(); ++i) {
        if (decl[i].kind == TokKind::kIdent) {
          if (!name.empty()) name += "::";
          name += decl[i].text;
        }
      }
      scope.name = name;
      return scope;
    }
    if (HasIdent(decl, "enum")) {
      // Enum body: a plain block whose comma-separated identifiers are
      // collected as enumerators (for the exhaustive-switch analysis).
      EnumDecl en;
      en.file = path_label;
      en.line = decl.empty() ? 0 : decl.front().line;
      en.ns = current_ns();
      en.cls = current_cls();
      for (size_t i = 0; i < decl.size(); ++i) {
        if (decl[i].kind != TokKind::kIdent) continue;
        if (decl[i].text == "enum" || decl[i].text == "class" ||
            decl[i].text == "struct") {
          continue;
        }
        en.name = decl[i].text;  // first ident after the keywords
        break;
      }
      if (!en.name.empty()) {
        scope.enum_index = static_cast<int>(facts.enums.size());
        facts.enums.push_back(std::move(en));
      }
      return scope;
    }
    if (!decl.empty() && decl.front().kind == TokKind::kIdent &&
        decl.front().text == "switch" && current_function() != nullptr) {
      // Switch body: a plain block; case labels are recorded as they are
      // seen so the exhaustive-switch analysis can compare them against
      // the enum's declared enumerators.
      SwitchFacts sw;
      sw.file = path_label;
      sw.line = decl.front().line;
      sw.function = current_function()->qualified;
      scope.switch_index = static_cast<int>(facts.switches.size());
      facts.switches.push_back(std::move(sw));
      return scope;
    }
    const bool classish = !decl.empty() &&
                          (HasIdent(decl, "class") || HasIdent(decl, "struct") ||
                           HasIdent(decl, "union"));
    // A class head has no top-level parens except attribute macros; a
    // function returning a struct is not definable inline, so "has class
    // keyword and no declarator name" is a sufficient split.
    if (classish) {
      // Name: first identifier after the class keyword that is not a macro
      // call (macro calls are skipped with their argument group).
      scope.kind = Scope::kClass;
      size_t i = 0;
      while (i < decl.size() &&
             !(decl[i].kind == TokKind::kIdent &&
               (decl[i].text == "class" || decl[i].text == "struct" ||
                decl[i].text == "union"))) {
        ++i;
      }
      ++i;
      while (i < decl.size()) {
        if (decl[i].kind == TokKind::kPunct && decl[i].text == ":") break;
        if (decl[i].kind == TokKind::kIdent) {
          if (i + 1 < decl.size() && decl[i + 1].kind == TokKind::kPunct &&
              decl[i + 1].text == "(") {
            // Attribute macro: skip its argument group.
            int depth = 0;
            ++i;
            do {
              if (decl[i].text == "(") ++depth;
              if (decl[i].text == ")") --depth;
              ++i;
            } while (i < decl.size() && depth > 0);
            continue;
          }
          if (decl[i].text != "final" && decl[i].text != "alignas") {
            scope.name = decl[i].text;
            break;
          }
        }
        ++i;
      }
      return scope;
    }
    const std::vector<std::string> chain = DeclaratorName(decl);
    if (chain.empty()) return scope;  // plain block / lambda / init list
    FunctionFacts fn;
    fn.file = path_label;
    fn.line = decl.empty() ? 0 : decl.front().line;
    fn.ns = current_ns();
    fn.name = chain.back();
    std::string explicit_cls;
    for (size_t i = 0; i + 1 < chain.size(); ++i) {
      if (!explicit_cls.empty()) explicit_cls += "::";
      explicit_cls += chain[i];
    }
    const std::string scope_cls = current_cls();
    fn.cls = scope_cls.empty()
                 ? explicit_cls
                 : (explicit_cls.empty() ? scope_cls
                                         : scope_cls + "::" + explicit_cls);
    fn.qualified = JoinQualified(fn.ns, fn.cls, fn.name);
    fn.hot = HasIdent(decl, "FVAE_HOT") || HasIdent(decl, "FVAE_NOALLOC");
    fn.noalloc = HasIdent(decl, "FVAE_NOALLOC");
    fn.event_loop = HasIdent(decl, "FVAE_EVENT_LOOP");
    fn.may_block = HasIdent(decl, "FVAE_MAY_BLOCK");
    for (size_t i = 0; i < decl.size(); ++i) {
      if (decl[i].kind == TokKind::kIdent &&
          (decl[i].text == "FVAE_REQUIRES" ||
           decl[i].text == "FVAE_REQUIRES_SHARED")) {
        for (auto& a : AnnotationArgs(decl, i)) {
          fn.requires_locks.push_back(std::move(a));
        }
      }
    }
    fn.params = ExtractParams(decl);
    scope.kind = Scope::kFunction;
    scope.func_index = static_cast<int>(facts.functions.size());
    facts.functions.push_back(std::move(fn));
    return scope;
  };

  /// Handles a ';'-terminated declaration outside function bodies: lock
  /// members and annotated prototypes.
  auto classify_decl = [&]() {
    if (current_function() != nullptr) return;
    const std::string cls = current_cls();
    // Lock member: [mutable] [fvae::] Mutex|SharedMutex name [annotations];
    // The type token must sit at paren-depth 0 with no paren group before
    // it (rejects `void f(Mutex& mu);` parameters).
    if (!cls.empty()) {
      int paren = 0;
      bool saw_paren = false;
      for (size_t i = 0; i < decl.size(); ++i) {
        const Tok& t = decl[i];
        if (t.kind == TokKind::kPunct) {
          if (t.text == "(") {
            ++paren;
            saw_paren = true;
          } else if (t.text == ")") {
            --paren;
          }
          continue;
        }
        if (t.kind != TokKind::kIdent || paren != 0 || saw_paren) continue;
        if (t.text != "Mutex" && t.text != "SharedMutex") continue;
        if (i + 1 >= decl.size() || decl[i + 1].kind != TokKind::kIdent) {
          continue;
        }
        LockDecl lock;
        lock.file = path_label;
        lock.line = t.line;
        lock.ns = current_ns();
        lock.cls = cls;
        lock.member = decl[i + 1].text;
        lock.id = JoinQualified(lock.ns, lock.cls, lock.member);
        for (size_t j = i + 2; j < decl.size(); ++j) {
          if (decl[j].kind != TokKind::kIdent) continue;
          if (decl[j].text == "FVAE_HOT_LOCK_EXEMPT") lock.hot_exempt = true;
          if (decl[j].text == "FVAE_LOOP_LOCK_EXEMPT") {
            lock.loop_exempt = true;
          }
          if (decl[j].text == "FVAE_ACQUIRED_BEFORE") {
            for (auto& a : AnnotationArgs(decl, j)) {
              lock.acquired_before.push_back(a);
            }
          }
          if (decl[j].text == "FVAE_ACQUIRED_AFTER") {
            for (auto& a : AnnotationArgs(decl, j)) {
              lock.acquired_after.push_back(a);
            }
          }
        }
        facts.locks.push_back(std::move(lock));
        break;
      }
    }
    // Guarded data member: `<type> name FVAE_GUARDED_BY(m) [= init];`.
    // The member is the identifier immediately before the annotation.
    if (!cls.empty()) {
      for (size_t j = 0; j < decl.size(); ++j) {
        if (decl[j].kind != TokKind::kIdent ||
            decl[j].text != "FVAE_GUARDED_BY" || j == 0 ||
            decl[j - 1].kind != TokKind::kIdent) {
          continue;
        }
        const std::vector<std::string> args = AnnotationArgs(decl, j);
        if (args.empty()) continue;
        GuardedDecl g;
        g.file = path_label;
        g.line = decl[j].line;
        g.ns = current_ns();
        g.cls = cls;
        g.member = decl[j - 1].text;
        g.guard = args.front();
        facts.guarded.push_back(std::move(g));
        break;
      }
    }
    // Plainly typed data member (`EpollLoop loop;`, `RpcServer* server =
    // nullptr;`): the receiver-type map for call resolution. Decls with
    // parens (methods, annotations) or template types fail the backward
    // walk and are simply skipped.
    if (!cls.empty() && !decl.empty()) {
      std::vector<Tok> head = decl;
      for (size_t j = 0; j < head.size(); ++j) {
        if (head[j].kind == TokKind::kPunct && head[j].text == "=") {
          head.resize(j);
          break;
        }
      }
      bool has_paren = false;
      for (const Tok& t : head) {
        if (t.kind == TokKind::kPunct && (t.text == "(" || t.text == ")")) {
          has_paren = true;
        }
      }
      if (!has_paren && head.size() >= 2 &&
          head.back().kind == TokKind::kIdent &&
          head.back().text.rfind("FVAE_", 0) != 0) {
        const std::string member = head.back().text;
        size_t j = head.size() - 1;
        while (j > 0 && head[j - 1].kind == TokKind::kPunct &&
               (head[j - 1].text == "*" || head[j - 1].text == "&")) {
          --j;
        }
        if (j > 0 && head[j - 1].kind == TokKind::kIdent &&
            head[j - 1].text != "const" && head[j - 1].text != member &&
            ControlKeywords().count(head[j - 1].text) == 0) {
          facts.member_types.push_back({cls, member, head[j - 1].text});
        }
      }
    }
    // Annotated prototype: purity / event-loop / requires annotations on a
    // declaration whose body lives in another file.
    if (HasIdent(decl, "FVAE_HOT") || HasIdent(decl, "FVAE_NOALLOC") ||
        HasIdent(decl, "FVAE_EVENT_LOOP") || HasIdent(decl, "FVAE_MAY_BLOCK") ||
        HasIdent(decl, "FVAE_REQUIRES") ||
        HasIdent(decl, "FVAE_REQUIRES_SHARED")) {
      const std::vector<std::string> chain = DeclaratorName(decl);
      if (!chain.empty()) {
        AttrDecl attr;
        attr.ns = current_ns();
        attr.cls = cls;
        for (size_t i = 0; i + 1 < chain.size(); ++i) {
          if (!attr.cls.empty()) attr.cls += "::";
          attr.cls += chain[i];
        }
        attr.name = chain.back();
        attr.hot = HasIdent(decl, "FVAE_HOT") || HasIdent(decl, "FVAE_NOALLOC");
        attr.noalloc = HasIdent(decl, "FVAE_NOALLOC");
        attr.event_loop = HasIdent(decl, "FVAE_EVENT_LOOP");
        attr.may_block = HasIdent(decl, "FVAE_MAY_BLOCK");
        for (size_t i = 0; i < decl.size(); ++i) {
          if (decl[i].kind == TokKind::kIdent &&
              (decl[i].text == "FVAE_REQUIRES" ||
               decl[i].text == "FVAE_REQUIRES_SHARED")) {
            for (auto& a : AnnotationArgs(decl, i)) {
              attr.requires_locks.push_back(std::move(a));
            }
          }
        }
        facts.attr_decls.push_back(std::move(attr));
      }
    }
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    const Tok& tok = tokens[i];
    if (tok.kind == TokKind::kPreproc) continue;

    FunctionFacts* fn = current_function();
    if (tok.kind == TokKind::kPunct) {
      if (tok.text == "{") {
        stack.push_back(classify_open());
        if (stack.back().kind == Scope::kFunction) {
          facts.functions[stack.back().func_index].body_begin = i + 1;
        }
        decl.clear();
        continue;
      }
      if (tok.text == "}") {
        if (!stack.empty()) {
          const bool leaving_function =
              stack.back().kind == Scope::kFunction;
          if (leaving_function) {
            facts.functions[stack.back().func_index].body_end = i;
          }
          stack.pop_back();
          // Release RAII guards whose scope just closed; a function exit
          // also clears manual holds (nothing outlives the body).
          const size_t depth = stack.size();
          for (size_t h = held.size(); h-- > 0;) {
            if ((!held[h].manual && held[h].depth > depth) ||
                (leaving_function && current_function() == nullptr)) {
              held.erase(held.begin() + static_cast<long>(h));
            }
          }
        }
        decl.clear();
        continue;
      }
      if (tok.text == "(") ++paren_depth;
      if (tok.text == ")") --paren_depth;
      if (tok.text == ";" && paren_depth == 0) {
        if (fn == nullptr) classify_decl();
        decl.clear();
        continue;
      }
      if (tok.text == ":" && fn == nullptr && decl.size() == 1 &&
          decl[0].kind == TokKind::kIdent &&
          (decl[0].text == "public" || decl[0].text == "protected" ||
           decl[0].text == "private")) {
        decl.clear();  // access specifier
        continue;
      }
    }
    decl.push_back(tok);

    // Enum-body enumerators: identifiers directly after '{' or ','.
    if (tok.kind == TokKind::kIdent && !stack.empty() &&
        stack.back().enum_index >= 0 && i > 0 &&
        tokens[i - 1].kind == TokKind::kPunct &&
        (tokens[i - 1].text == "{" || tokens[i - 1].text == ",")) {
      facts.enums[stack.back().enum_index].enumerators.push_back(tok.text);
    }

    // ---- in-function fact extraction ----
    if (fn == nullptr || tok.kind != TokKind::kIdent) continue;
    const std::string& id = tok.text;
    const Tok* next = i + 1 < tokens.size() ? &tokens[i + 1] : nullptr;
    const Tok* prev = i > 0 ? &tokens[i - 1] : nullptr;
    const bool after_member =
        prev != nullptr && prev->kind == TokKind::kPunct &&
        (prev->text == "." || prev->text == "->");
    const bool after_scope = prev != nullptr &&
                             prev->kind == TokKind::kPunct &&
                             prev->text == "::";

    // RAII guard construction: GuardType [var] ( lock-expr ) ...
    if (IsGuardType(id)) {
      size_t j = i + 1;
      if (j < tokens.size() && tokens[j].kind == TokKind::kIdent) ++j;
      if (j < tokens.size() && tokens[j].kind == TokKind::kPunct &&
          tokens[j].text == "(") {
        int depth = 1;
        std::string lock_name;
        ++j;
        while (j < tokens.size() && depth > 0) {
          if (tokens[j].kind == TokKind::kPunct) {
            if (tokens[j].text == "(") ++depth;
            if (tokens[j].text == ")") --depth;
          } else if (tokens[j].kind == TokKind::kIdent) {
            lock_name = tokens[j].text;
          }
          ++j;
        }
        if (!lock_name.empty()) {
          acquire(fn, lock_name, tok.line, /*manual=*/false);
        }
      }
      continue;
    }
    // Manual lock/unlock: expr.Lock() / expr.Unlock() (and Shared forms).
    if (after_member && (id == "Lock" || id == "LockShared") &&
        next != nullptr && next->text == "(") {
      // Lock name: identifier right before the '.'/'->'.
      if (i >= 2 && tokens[i - 2].kind == TokKind::kIdent) {
        acquire(fn, tokens[i - 2].text, tok.line, /*manual=*/true);
      }
      continue;
    }
    if (after_member && (id == "Unlock" || id == "UnlockShared") &&
        next != nullptr && next->text == "(") {
      // `mu_.Unlock(); return;` (or break/continue) is an early exit: the
      // linear token walk proceeds into the fall-through path, where the
      // lock is still held, so the release must not apply there.
      bool early_exit = false;
      {
        size_t j = i + 1;  // at '('
        int depth = 0;
        while (j < tokens.size()) {
          if (tokens[j].kind == TokKind::kPunct) {
            if (tokens[j].text == "(") ++depth;
            if (tokens[j].text == ")" && --depth == 0) {
              ++j;
              break;
            }
          }
          ++j;
        }
        if (j + 1 < tokens.size() && tokens[j].kind == TokKind::kPunct &&
            tokens[j].text == ";" &&
            tokens[j + 1].kind == TokKind::kIdent &&
            (tokens[j + 1].text == "return" ||
             tokens[j + 1].text == "break" ||
             tokens[j + 1].text == "continue")) {
          early_exit = true;
        }
      }
      if (!early_exit && i >= 2 && tokens[i - 2].kind == TokKind::kIdent) {
        const std::string& name = tokens[i - 2].text;
        for (size_t h = held.size(); h-- > 0;) {
          if (held[h].name == name) {
            held.erase(held.begin() + static_cast<long>(h));
            break;
          }
        }
      }
      continue;
    }

    // Switch case labels: `case A::B:` chains and `default:`.
    if ((id == "case" || id == "default") && !after_member && !after_scope) {
      int sw = -1;
      for (size_t s = stack.size(); s-- > 0;) {
        if (stack[s].switch_index >= 0) {
          sw = stack[s].switch_index;
          break;
        }
        if (stack[s].kind == Scope::kFunction) break;
      }
      if (sw >= 0) {
        SwitchFacts& facts_sw = facts.switches[static_cast<size_t>(sw)];
        if (id == "default" && next != nullptr &&
            next->kind == TokKind::kPunct && next->text == ":") {
          facts_sw.has_default = true;
          facts_sw.default_line = tok.line;
        } else if (id == "case") {
          std::string chain;
          size_t j = i + 1;
          while (j < tokens.size() && tokens[j].kind == TokKind::kIdent) {
            if (!chain.empty()) chain += "::";
            chain += tokens[j].text;
            if (j + 2 < tokens.size() &&
                tokens[j + 1].kind == TokKind::kPunct &&
                tokens[j + 1].text == "::" &&
                tokens[j + 2].kind == TokKind::kIdent) {
              j += 2;
            } else {
              break;
            }
          }
          if (!chain.empty()) facts_sw.cases.push_back(chain);
        }
      }
      continue;
    }

    // Purity facts.
    if (id == "new" &&
        !(prev != nullptr && prev->kind == TokKind::kIdent &&
          prev->text == "operator")) {
      fn->allocs.push_back({"new", tok.line});
    } else if (after_member && IsAllocMember(id) && next != nullptr &&
               next->text == "(") {
      fn->allocs.push_back({id, tok.line});
    } else if (!after_member && IsAllocFree(id) && next != nullptr &&
               next->text == "(") {
      fn->allocs.push_back({id, tok.line});
    }
    if (IsLogToken(id)) fn->logs.push_back({id, tok.line});
    if (IsIoToken(id)) fn->ios.push_back({id, tok.line});

    // TraceSpan construction facts for the hot-trace walk. Both the scope
    // macro and the constructor forms put the identifier before '(' —
    // directly (`TraceSpan("x")`, `FVAE_TRACE_SCOPE("x")`) or with the
    // variable name between (`TraceSpan span("x")`). Mentions that are not
    // constructions (a `const TraceSpan&` parameter) don't match.
    if (id == "TraceSpan" || id == "FVAE_TRACE_SCOPE") {
      const Tok* n2 = i + 2 < tokens.size() ? &tokens[i + 2] : nullptr;
      const bool direct = next != nullptr &&
                          next->kind == TokKind::kPunct && next->text == "(";
      const bool named = next != nullptr && next->kind == TokKind::kIdent &&
                         n2 != nullptr && n2->kind == TokKind::kPunct &&
                         n2->text == "(";
      if (direct || named) fn->traces.push_back({id, tok.line});
    }

    // Blocking facts for the event-loop walk. Sleeps appear in IsIoToken
    // too; AnalyzeEventLoops skips io facts that are also blocking facts so
    // a single call is reported once.
    if (!after_member && IsBlockingCall(id) && next != nullptr &&
        next->kind == TokKind::kPunct && next->text == "(") {
      fn->blocking.push_back({id, tok.line});
    } else if (after_member && IsBlockingMember(id) && next != nullptr &&
               next->kind == TokKind::kPunct && next->text == "(") {
      fn->blocking.push_back({id, tok.line});
    } else if (!after_member && IsSocketTransfer(id) && next != nullptr &&
               next->kind == TokKind::kPunct && next->text == "(") {
      // recv()/send() block unless the flags argument carries MSG_DONTWAIT
      // (the socket itself being O_NONBLOCK is invisible here, so the walk
      // demands the explicit per-call flag).
      bool dontwait = false;
      size_t j = i + 1;
      int depth = 0;
      while (j < tokens.size()) {
        if (tokens[j].kind == TokKind::kPunct) {
          if (tokens[j].text == "(") ++depth;
          if (tokens[j].text == ")" && --depth == 0) break;
        } else if (tokens[j].kind == TokKind::kIdent &&
                   tokens[j].text == "MSG_DONTWAIT") {
          dontwait = true;
        }
        ++j;
      }
      if (!dontwait) {
        fn->blocking.push_back({id + " without MSG_DONTWAIT", tok.line});
      }
    }

    // Dispatch-table registration: `t->member = Target;` (optionally
    // `&Target` or a `ns::Target` chain, in an assignment or a braced
    // initializer list). Recorded permissively — binds whose target never
    // resolves to a program function are dropped at link time — so plain
    // data-member assignments cost nothing.
    if (after_member && next != nullptr && next->kind == TokKind::kPunct &&
        next->text == "=") {
      size_t j = i + 2;
      if (j < tokens.size() && tokens[j].kind == TokKind::kPunct &&
          tokens[j].text == "&") {
        ++j;
      }
      std::string target;
      while (j < tokens.size() && tokens[j].kind == TokKind::kIdent) {
        if (!target.empty()) target += "::";
        target += tokens[j].text;
        if (j + 2 < tokens.size() && tokens[j + 1].kind == TokKind::kPunct &&
            tokens[j + 1].text == "::" &&
            tokens[j + 2].kind == TokKind::kIdent) {
          j += 2;
        } else {
          ++j;
          break;
        }
      }
      const bool terminated = j < tokens.size() &&
                              tokens[j].kind == TokKind::kPunct &&
                              (tokens[j].text == ";" || tokens[j].text == ",");
      if (!target.empty() && terminated) {
        fn->dispatch_binds.push_back({id, target, tok.line});
      }
    }

    // Guarded-member access facts. A member access is either receiver-form
    // (`obj.member` / `obj->member`, receiver an identifier) or bare
    // (`member_` — trailing-underscore members of the enclosing class).
    // Calls are recorded as CallSites instead, and `A::b` scope uses are
    // enumerator/static references, not object accesses.
    if (!after_scope &&
        !(next != nullptr && next->kind == TokKind::kPunct &&
          next->text == "(")) {
      if (after_member && i >= 2 && tokens[i - 2].kind == TokKind::kIdent) {
        MemberAccess access;
        access.member = id;
        access.receiver =
            tokens[i - 2].text == "this" ? "" : tokens[i - 2].text;
        access.line = tok.line;
        access.held = held_names();
        fn->accesses.push_back(std::move(access));
      } else if (!after_member && id.size() > 1 && id.back() == '_') {
        MemberAccess access;
        access.member = id;
        access.line = tok.line;
        access.held = held_names();
        fn->accesses.push_back(std::move(access));
      }
    }

    // Call site: identifier followed by '(' that is not a control keyword.
    if (next != nullptr && next->kind == TokKind::kPunct &&
        next->text == "(" && ControlKeywords().count(id) == 0) {
      CallSite call;
      call.name = id;
      call.line = tok.line;
      call.held = held_names();
      // Collect the "::" qualifier chain attached to the name.
      size_t back = i;
      while (back >= 2 && tokens[back - 1].kind == TokKind::kPunct &&
             tokens[back - 1].text == "::" &&
             tokens[back - 2].kind == TokKind::kIdent) {
        call.quals.insert(call.quals.begin(), tokens[back - 2].text);
        back -= 2;
      }
      call.member_access =
          back >= 1 && tokens[back - 1].kind == TokKind::kPunct &&
          (tokens[back - 1].text == "." || tokens[back - 1].text == "->");
      if (call.member_access && back >= 2 &&
          tokens[back - 2].kind == TokKind::kIdent &&
          tokens[back - 2].text != "this") {
        call.receiver = tokens[back - 2].text;
      }
      (void)after_scope;
      fn->calls.push_back(std::move(call));
    }
  }
  return facts;
}

}  // namespace fvae::lint

#endif  // FVAE_TOOLS_TU_FACTS_H_
