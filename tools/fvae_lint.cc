// fvae_lint — project-invariant linter, run as a ctest gate on every build.
//
//   usage: fvae_lint [repo_root] [--budget-ms N] [--json FILE]
//
// Walks src/, tools/, bench/, tests/ and examples/, applies the rules in
// tools/lint_rules.h, prints every finding as "path:line: [rule] message"
// and exits non-zero if the tree is not clean. A per-analysis wall-clock
// breakdown always follows the verdict, so the analyzer's own cost stays
// visible as the tree grows; with --budget-ms the run additionally fails
// when the total exceeds the budget (the ctest passes 5000 on
// non-sanitizer builds). With --json FILE a machine-readable report
// (verdict, findings with source excerpts, the timing breakdown) is
// written whether or not the tree is clean — CI uploads it as an
// artifact when the lint step fails. See ARCHITECTURE.md ("Static
// analysis & sanitizers") for the rule list and rationale.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "tools/lint_rules.h"

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// The offending source line, whitespace-trimmed, for the JSON report's
/// path excerpt. Empty string when the file or line cannot be read.
std::string LineExcerpt(const std::filesystem::path& root,
                        const std::string& file, size_t line) {
  std::ifstream in(root / file);
  std::string text;
  for (size_t i = 0; i < line && std::getline(in, text); ++i) {
  }
  if (!in && text.empty()) return "";
  size_t b = text.find_first_not_of(" \t");
  size_t e = text.find_last_not_of(" \t\r");
  if (b == std::string::npos) return "";
  return text.substr(b, e - b + 1);
}

void WriteJsonReport(const std::filesystem::path& out_path,
                     const std::filesystem::path& root,
                     const std::vector<fvae::lint::Finding>& findings,
                     const fvae::lint::LintTimings& t) {
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "fvae_lint: cannot write --json file %s\n",
                 out_path.string().c_str());
    return;
  }
  out << "{\n  \"clean\": " << (findings.empty() ? "true" : "false")
      << ",\n  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const fvae::lint::Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n")
        << "    {\"rule\": \"" << JsonEscape(f.rule) << "\", \"file\": \""
        << JsonEscape(f.file) << "\", \"line\": " << f.line
        << ", \"message\": \"" << JsonEscape(f.message)
        << "\", \"excerpt\": \""
        << JsonEscape(LineExcerpt(root, f.file, f.line)) << "\"}";
  }
  out << (findings.empty() ? "]" : "\n  ]") << ",\n  \"timing_ms\": {";
  const auto& a = t.analysis;
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "\"scan\": %.3f, \"per_file\": %.3f, \"link\": %.3f, "
      "\"cfg\": %.3f, \"lock_balance\": %.3f, \"lock_cycle\": %.3f, "
      "\"hot_path\": %.3f, \"event_loop\": %.3f, \"guarded_by\": %.3f, "
      "\"verb_switch\": %.3f, \"status_path\": %.3f, "
      "\"resource_escape\": %.3f, \"use_after_move\": %.3f, "
      "\"total\": %.3f",
      t.scan_ms, t.per_file_ms, a.link_ms, a.cfg_ms, a.lock_balance_ms,
      a.lock_cycle_ms, a.hot_path_ms, a.event_loop_ms, a.guarded_by_ms,
      a.verb_switch_ms, a.status_path_ms, a.resource_escape_ms,
      a.use_after_move_ms, t.total_ms());
  out << buf << "},\n  \"file_count\": " << t.file_count << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = ".";
  std::filesystem::path json_path;
  double budget_ms = 0;  // 0: report timing but do not enforce
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--budget-ms") == 0 && i + 1 < argc) {
      budget_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      root = argv[i];
    }
  }
  if (!std::filesystem::exists(root / "src")) {
    std::fprintf(stderr, "fvae_lint: %s does not look like the repo root "
                         "(no src/ directory)\n",
                 root.string().c_str());
    return 2;
  }
  fvae::lint::LintTimings timings;
  const std::vector<fvae::lint::Finding> findings =
      fvae::lint::LintTree(root, &timings);
  for (const fvae::lint::Finding& finding : findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", finding.file.c_str(),
                 finding.line, finding.rule.c_str(),
                 finding.message.c_str());
  }
  if (!json_path.empty()) {
    WriteJsonReport(json_path, root, findings, timings);
  }
  int rc = 0;
  if (!findings.empty()) {
    std::fprintf(stderr, "fvae_lint: %zu finding(s)\n", findings.size());
    rc = 1;
  } else {
    std::printf("fvae_lint: clean\n");
  }
  std::printf(
      "fvae_lint: timing: scan %.1f ms (%zu files), per-file %.1f ms, "
      "link %.1f ms, cfg %.1f ms, lock-balance %.1f ms, "
      "lock-cycle %.1f ms, hot-path %.1f ms, event-loop %.1f ms, "
      "guarded-by %.1f ms, verb-switch %.1f ms, status-path %.1f ms, "
      "resource-escape %.1f ms, use-after-move %.1f ms, total %.1f ms\n",
      timings.scan_ms, timings.file_count, timings.per_file_ms,
      timings.analysis.link_ms, timings.analysis.cfg_ms,
      timings.analysis.lock_balance_ms, timings.analysis.lock_cycle_ms,
      timings.analysis.hot_path_ms, timings.analysis.event_loop_ms,
      timings.analysis.guarded_by_ms, timings.analysis.verb_switch_ms,
      timings.analysis.status_path_ms, timings.analysis.resource_escape_ms,
      timings.analysis.use_after_move_ms, timings.total_ms());
  if (budget_ms > 0 && timings.total_ms() > budget_ms) {
    std::fprintf(stderr,
                 "fvae_lint: self-runtime budget exceeded: %.1f ms > "
                 "%.1f ms budget\n",
                 timings.total_ms(), budget_ms);
    rc = rc == 0 ? 1 : rc;
  }
  return rc;
}
