// fvae_lint — project-invariant linter, run as a ctest gate on every build.
//
//   usage: fvae_lint [repo_root] [--budget-ms N]
//
// Walks src/, tools/, bench/, tests/ and examples/, applies the rules in
// tools/lint_rules.h, prints every finding as "path:line: [rule] message"
// and exits non-zero if the tree is not clean. A per-analysis wall-clock
// breakdown always follows the verdict, so the analyzer's own cost stays
// visible as the tree grows; with --budget-ms the run additionally fails
// when the total exceeds the budget (the ctest passes 5000 on
// non-sanitizer builds). See ARCHITECTURE.md ("Static analysis &
// sanitizers") for the rule list and rationale.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "tools/lint_rules.h"

int main(int argc, char** argv) {
  std::filesystem::path root = ".";
  double budget_ms = 0;  // 0: report timing but do not enforce
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--budget-ms") == 0 && i + 1 < argc) {
      budget_ms = std::atof(argv[++i]);
    } else {
      root = argv[i];
    }
  }
  if (!std::filesystem::exists(root / "src")) {
    std::fprintf(stderr, "fvae_lint: %s does not look like the repo root "
                         "(no src/ directory)\n",
                 root.string().c_str());
    return 2;
  }
  fvae::lint::LintTimings timings;
  const std::vector<fvae::lint::Finding> findings =
      fvae::lint::LintTree(root, &timings);
  for (const fvae::lint::Finding& finding : findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", finding.file.c_str(),
                 finding.line, finding.rule.c_str(),
                 finding.message.c_str());
  }
  int rc = 0;
  if (!findings.empty()) {
    std::fprintf(stderr, "fvae_lint: %zu finding(s)\n", findings.size());
    rc = 1;
  } else {
    std::printf("fvae_lint: clean\n");
  }
  std::printf(
      "fvae_lint: timing: scan %.1f ms (%zu files), per-file %.1f ms, "
      "link %.1f ms, lock-cycle %.1f ms, hot-path %.1f ms, "
      "event-loop %.1f ms, guarded-by %.1f ms, verb-switch %.1f ms, "
      "total %.1f ms\n",
      timings.scan_ms, timings.file_count, timings.per_file_ms,
      timings.analysis.link_ms, timings.analysis.lock_cycle_ms,
      timings.analysis.hot_path_ms, timings.analysis.event_loop_ms,
      timings.analysis.guarded_by_ms, timings.analysis.verb_switch_ms,
      timings.total_ms());
  if (budget_ms > 0 && timings.total_ms() > budget_ms) {
    std::fprintf(stderr,
                 "fvae_lint: self-runtime budget exceeded: %.1f ms > "
                 "%.1f ms budget\n",
                 timings.total_ms(), budget_ms);
    rc = rc == 0 ? 1 : rc;
  }
  return rc;
}
