// fvae_lint — project-invariant linter, run as a ctest gate on every build.
//
//   usage: fvae_lint [repo_root]          (default: current directory)
//
// Walks src/, tools/, bench/, tests/ and examples/, applies the rules in
// tools/lint_rules.h, prints every finding as "path:line: [rule] message"
// and exits non-zero if the tree is not clean. See ARCHITECTURE.md
// ("Static analysis & sanitizers") for the rule list and rationale.

#include <cstdio>
#include <filesystem>

#include "tools/lint_rules.h"

int main(int argc, char** argv) {
  const std::filesystem::path root = argc > 1 ? argv[1] : ".";
  if (!std::filesystem::exists(root / "src")) {
    std::fprintf(stderr, "fvae_lint: %s does not look like the repo root "
                         "(no src/ directory)\n",
                 root.string().c_str());
    return 2;
  }
  const std::vector<fvae::lint::Finding> findings =
      fvae::lint::LintTree(root);
  for (const fvae::lint::Finding& finding : findings) {
    std::fprintf(stderr, "%s:%zu: [%s] %s\n", finding.file.c_str(),
                 finding.line, finding.rule.c_str(),
                 finding.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "fvae_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  std::printf("fvae_lint: clean\n");
  return 0;
}
