// fvae — command-line driver for the library: generate synthetic profile
// datasets, train FVAE models, evaluate them, and export embeddings.
//
// Usage:
//   fvae generate --preset sc --users 4000 --seed 7 --out data.bin
//   fvae train    --data data.bin --model model.bin --epochs 10
//   fvae evaluate --data data.bin --model model.bin --task tag
//   fvae export   --data data.bin --model model.bin --out embeddings.bin
//   fvae inspect  --model model.bin
//   fvae inspect  --data data.bin
//   fvae metrics  --in metrics.jsonl
//
// Observability flags (train / serve-bench):
//   --trace-out F       record trace spans, write Chrome trace JSON to F
//   --metrics-out F     write a JSONL metrics snapshot to F at the end
//   --metrics-every-s N also dump the snapshot every N seconds (appends)
//
// Every command prints a short report to stdout; errors go to stderr with a
// non-zero exit code.

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <thread>

#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/checkpoint.h"
#include "core/fvae_model.h"
#include "core/model_io.h"
#include "core/trainer.h"
#include "data/io.h"
#include "data/split.h"
#include "datagen/profile_generator.h"
#include "eval/representation_model.h"
#include "eval/tasks.h"
#include "net/rpc_client.h"
#include "net/rpc_server.h"
#include "net/shard_router.h"
#include "obs/metrics_registry.h"
#include "obs/periodic_dumper.h"
#include "obs/trace.h"
#include "serving/embedding_service.h"
#include "serving/embedding_store.h"
#include "serving/fold_in.h"
#include "serving/load_gen.h"
#include "serving/sharded_store.h"

namespace {

using namespace fvae;

/// Minimal --flag value parser: flags must be "--name value" pairs.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      values_[key.substr(2)] = argv[i + 1];
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return ParseInt64(it->second).value_or(fallback);
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return ParseDouble(it->second).value_or(fallback);
  }
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// Shared --trace-out / --metrics-out / --metrics-every-s handling for the
/// instrumented commands. Construct before the work (enables tracing, starts
/// the periodic dumper), call Finish() after it (writes the trace file and
/// the final snapshot, prints the registry to stdout).
class ObsSession {
 public:
  explicit ObsSession(const Args& args)
      : trace_path_(args.Get("trace-out", "")),
        metrics_path_(args.Get("metrics-out", "")) {
    if (!trace_path_.empty()) obs::TraceRecorder::Global().Enable();
    const double every_s = args.GetDouble("metrics-every-s", 0.0);
    if (every_s > 0.0 && !metrics_path_.empty()) {
      obs::PeriodicDumperOptions options;
      options.interval_seconds = every_s;
      options.path = metrics_path_;
      dumper_ = std::make_unique<obs::PeriodicDumper>(
          &obs::MetricsRegistry::Global(), options);
      dumper_->Start();
    }
  }

  ~ObsSession() { Finish(); }

  void Finish() {
    if (finished_) return;
    finished_ = true;
    // Stop() emits one final snapshot, so the file always ends with the
    // complete end-of-run numbers even in periodic mode.
    if (dumper_ != nullptr) {
      dumper_->Stop();
    } else if (!metrics_path_.empty()) {
      const Status status = obs::MetricsRegistry::Global().WriteJsonlSnapshot(
          metrics_path_, /*append=*/false);
      if (!status.ok()) {
        std::fprintf(stderr, "metrics write failed: %s\n",
                     status.ToString().c_str());
      }
    }
    if (!metrics_path_.empty()) {
      std::printf("-- metrics (%s) --\n%s", metrics_path_.c_str(),
                  obs::MetricsRegistry::Global().TextSnapshot().c_str());
    }
    if (!trace_path_.empty()) {
      obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
      recorder.Disable();
      const Status status = recorder.WriteChromeTrace(trace_path_);
      if (!status.ok()) {
        std::fprintf(stderr, "trace write failed: %s\n",
                     status.ToString().c_str());
        return;
      }
      std::printf("-- trace (%zu spans -> %s, %llu dropped) --\n%s",
                  recorder.EventCount(), trace_path_.c_str(),
                  static_cast<unsigned long long>(recorder.DroppedCount()),
                  recorder.ProfileText().c_str());
    }
  }

 private:
  std::string trace_path_;
  std::string metrics_path_;
  std::unique_ptr<obs::PeriodicDumper> dumper_;
  bool finished_ = false;
};

int CmdGenerate(const Args& args) {
  const std::string preset = args.Get("preset", "sc");
  const size_t users = size_t(args.GetInt("users", 4000));
  const uint64_t seed = uint64_t(args.GetInt("seed", 7));
  const std::string out = args.Get("out", "data.bin");

  ProfileGeneratorConfig config;
  if (preset == "sc") {
    config = ShortContentConfig(users, seed);
  } else if (preset == "kd") {
    config = KandianConfig(users, seed);
  } else if (preset == "qb") {
    config = QQBrowserConfig(users, seed);
  } else {
    return Fail("unknown preset (sc|kd|qb): " + preset);
  }
  const GeneratedProfiles gen = GenerateProfiles(config);
  std::printf("generated %s\n", gen.dataset.Summary().c_str());

  const Status status = args.Has("text")
                            ? SaveDatasetText(gen.dataset, out)
                            : SaveDatasetBinary(gen.dataset, out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

Result<MultiFieldDataset> LoadData(const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".txt") {
    return LoadDatasetText(path);
  }
  return LoadDatasetBinary(path);
}

int CmdTrain(const Args& args) {
  const std::string data_path = args.Get("data", "data.bin");
  const std::string model_path = args.Get("model", "model.bin");
  auto data = LoadData(data_path);
  if (!data.ok()) return Fail(data.status().ToString());
  std::printf("loaded %s\n", data->Summary().c_str());

  core::FvaeConfig config;
  config.latent_dim = size_t(args.GetInt("latent", 64));
  const size_t hidden = size_t(args.GetInt("hidden", 256));
  config.encoder_hidden = {hidden};
  config.decoder_hidden = {hidden};
  config.beta = float(args.GetDouble("beta", 0.1));
  config.sampling_strategy =
      core::ParseSamplingStrategy(args.Get("strategy", "uniform"));
  config.sampling_rate = args.GetDouble("rate", 0.1);
  config.seed = uint64_t(args.GetInt("seed", 1234));

  ObsSession obs_session(args);
  core::TrainOptions options;
  options.batch_size = size_t(args.GetInt("batch", 512));
  options.epochs = size_t(args.GetInt("epochs", 10));
  options.checkpoint_every_steps =
      size_t(args.GetInt("checkpoint-every", 0));
  options.checkpoint_dir = args.Get("checkpoint-dir", "");
  options.checkpoint_retain = size_t(args.GetInt("checkpoint-retain", 3));
  if (options.checkpoint_every_steps > 0 && options.checkpoint_dir.empty()) {
    return Fail("--checkpoint-every requires --checkpoint-dir");
  }
  options.epoch_callback = [](size_t epoch, double loss, double seconds) {
    std::printf("epoch %3zu  loss %.4f  %.1fs\n", epoch, loss, seconds);
    return true;
  };

  // --resume 1: pick up from the newest checkpoint in --checkpoint-dir
  // (falling back to a fresh start when there is none yet, so a restarted
  // job needs no flag changes).
  std::unique_ptr<core::FieldVae> resumed_model;
  core::TrainingCursor cursor;
  bool resuming = false;
  if (args.GetInt("resume", 0) != 0) {
    if (options.checkpoint_dir.empty()) {
      return Fail("--resume requires --checkpoint-dir");
    }
    core::CheckpointManagerOptions manager_options;
    manager_options.dir = options.checkpoint_dir;
    manager_options.retain = options.checkpoint_retain;
    core::CheckpointManager manager(manager_options);
    auto loaded = manager.LoadLatest();
    if (loaded.ok()) {
      if (!loaded->has_cursor) {
        return Fail("checkpoint in " + options.checkpoint_dir +
                    " has no training cursor to resume from");
      }
      resumed_model = std::move(loaded->model);
      cursor = std::move(loaded->cursor);
      resuming = true;
      std::printf("resuming at step %llu (epoch %llu)\n",
                  (unsigned long long)cursor.step,
                  (unsigned long long)cursor.epoch);
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return Fail(loaded.status().ToString());
    }
  }

  core::FieldVae fresh_model(config, data->fields());
  core::FieldVae& model = resuming ? *resumed_model : fresh_model;
  const core::TrainResult result =
      resuming ? core::TrainFvaeResumingFrom(model, *data, options, cursor)
               : core::TrainFvae(model, *data, options);
  std::printf("trained %zu steps, %.0f users/s, %zu parameters\n",
              result.steps, result.UsersPerSecond(),
              model.ParameterCount());
  obs_session.Finish();

  const Status status = core::SaveFieldVae(model, model_path);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("saved model to %s\n", model_path.c_str());
  return 0;
}

/// Adapter for the evaluation tasks.
class CliModel : public eval::RepresentationModel {
 public:
  explicit CliModel(core::FieldVae* model) : model_(model) {}
  std::string Name() const override { return "FVAE"; }
  void Fit(const MultiFieldDataset&) override {}
  Matrix Embed(const MultiFieldDataset& data,
               std::span<const uint32_t> users) const override {
    return model_->Encode(data, users);
  }
  Matrix Score(const MultiFieldDataset& input,
               std::span<const uint32_t> users, size_t field,
               std::span<const uint64_t> candidates) const override {
    return model_->EncodeAndScore(input, users, field, candidates);
  }

 private:
  core::FieldVae* model_;
};

int CmdEvaluate(const Args& args) {
  auto data = LoadData(args.Get("data", "data.bin"));
  if (!data.ok()) return Fail(data.status().ToString());
  auto model = core::LoadFieldVae(args.Get("model", "model.bin"));
  if (!model.ok()) return Fail(model.status().ToString());
  const std::string task = args.Get("task", "tag");
  const size_t max_users = size_t(args.GetInt("eval-users", 1000));
  Rng rng(uint64_t(args.GetInt("seed", 99)));

  std::vector<uint32_t> users(std::min(max_users, data->num_users()));
  std::iota(users.begin(), users.end(), 0u);
  CliModel wrapper(model->get());

  if (task == "tag") {
    const size_t field =
        size_t(args.GetInt("field", int64_t(data->num_fields() - 1)));
    if (field >= data->num_fields()) return Fail("field out of range");
    const std::vector<uint64_t> vocab = data->DistinctFeatureIds(field);
    const eval::TaskMetrics metrics = eval::RunTagPrediction(
        wrapper, *data, users, field, vocab, rng);
    std::printf("tag prediction on field '%s': AUC %.4f  mAP %.4f\n",
                data->field(field).name.c_str(), metrics.auc, metrics.map);
    return 0;
  }
  if (task == "recon") {
    const ReconstructionSplit split =
        HoldOutWithinUsers(*data, args.GetDouble("holdout", 0.3), rng);
    std::vector<std::vector<uint64_t>> vocab(data->num_fields());
    for (size_t k = 0; k < data->num_fields(); ++k) {
      vocab[k] = data->DistinctFeatureIds(k);
    }
    const eval::ReconstructionMetrics metrics = eval::RunReconstruction(
        wrapper, *data, split, users, vocab, rng);
    std::printf("reconstruction: overall AUC %.4f mAP %.4f\n",
                metrics.overall.auc, metrics.overall.map);
    for (size_t k = 0; k < data->num_fields(); ++k) {
      std::printf("  %-8s AUC %.4f  mAP %.4f\n",
                  data->field(k).name.c_str(), metrics.per_field[k].auc,
                  metrics.per_field[k].map);
    }
    return 0;
  }
  return Fail("unknown task (tag|recon): " + task);
}

int CmdExport(const Args& args) {
  auto data = LoadData(args.Get("data", "data.bin"));
  if (!data.ok()) return Fail(data.status().ToString());
  auto model = core::LoadFieldVae(args.Get("model", "model.bin"));
  if (!model.ok()) return Fail(model.status().ToString());
  const std::string out = args.Get("out", "embeddings.bin");

  Stopwatch watch;
  std::vector<uint32_t> users(data->num_users());
  std::iota(users.begin(), users.end(), 0u);
  serving::EmbeddingStore store;
  // Batch to bound peak memory.
  constexpr size_t kChunk = 4096;
  for (size_t begin = 0; begin < users.size(); begin += kChunk) {
    const size_t end = std::min(users.size(), begin + kChunk);
    std::span<const uint32_t> chunk{users.data() + begin, end - begin};
    const Matrix z = (*model)->Encode(*data, chunk);
    std::vector<uint64_t> ids(chunk.begin(), chunk.end());
    store.PutBatch(ids, z);
  }
  const Status status = store.Save(out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("exported %zu embeddings (dim %zu) to %s in %.1fs\n",
              store.size(), store.dim(), out.c_str(),
              watch.ElapsedSeconds());
  return 0;
}

int CmdServeBench(const Args& args) {
  auto data = LoadData(args.Get("data", "data.bin"));
  if (!data.ok()) return Fail(data.status().ToString());
  auto model = core::LoadFieldVae(args.Get("model", "model.bin"));
  if (!model.ok()) return Fail(model.status().ToString());

  const size_t threads = size_t(args.GetInt("threads", 8));
  const size_t requests = size_t(args.GetInt("requests", 20000));
  const double hot_frac = args.GetDouble("hot-frac", 0.8);

  ObsSession obs_session(args);
  serving::EmbeddingServiceOptions options;
  options.metrics_registry = &obs::MetricsRegistry::Global();
  options.num_shards = size_t(args.GetInt("shards", 16));
  options.enable_batcher = args.GetInt("batcher", 1) != 0;
  // Default batch size matches client concurrency so closed-loop batches
  // fill (and dispatch) without burning the whole wait window.
  const int64_t batch = args.GetInt("batch", 0);
  options.batcher.max_batch_size = batch > 0 ? size_t(batch) : threads;
  options.batcher.max_wait_micros = uint64_t(args.GetInt("wait-us", 100));
  options.batcher.queue_capacity = size_t(args.GetInt("queue", 8192));
  options.default_deadline_micros =
      uint64_t(args.GetInt("deadline-us", 0));

  // Materialize the leading half of the users (the offline dump); the rest
  // arrive cold and exercise the fold-in path.
  const size_t num_hot = data->num_users() / 2;
  if (num_hot == 0 || num_hot == data->num_users()) {
    return Fail("dataset too small to split into hot/cold users");
  }
  std::vector<uint32_t> hot_ids(num_hot);
  std::iota(hot_ids.begin(), hot_ids.end(), 0u);
  std::vector<uint32_t> cold_ids(data->num_users() - num_hot);
  std::iota(cold_ids.begin(), cold_ids.end(), uint32_t(num_hot));

  Stopwatch watch;
  serving::FvaeFoldInEncoder encoder(model->get());
  serving::EmbeddingService service(
      serving::MaterializeEmbeddings(**model, *data, hot_ids,
                                     options.num_shards),
      &encoder, options);
  std::printf("materialized %zu embeddings (dim %zu) across %zu shards "
              "in %.1fs\n",
              service.store().size(), service.store().dim(),
              options.num_shards, watch.ElapsedSeconds());

  serving::LoadGenOptions load;
  load.num_threads = threads;
  load.requests_per_thread = std::max<size_t>(requests / threads, 1);
  load.hot_fraction = hot_frac;
  load.deadline_micros = options.default_deadline_micros;
  load.seed = uint64_t(args.GetInt("seed", 42));
  const serving::LoadGenReport report =
      serving::RunClosedLoopLoad(service, *data, hot_ids, cold_ids, load);

  std::printf("load: %zu threads x %zu requests, hot fraction %.2f, "
              "batcher %s\n",
              threads, load.requests_per_thread, hot_frac,
              options.enable_batcher ? "on" : "off");
  std::printf("client: %s\n", report.Json().c_str());
  std::printf("service: %s\n", service.TelemetryJson().c_str());
  obs_session.Finish();
  return 0;
}

std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true); }

/// `fvae serve` — stand up the epoll RPC front-end over an
/// EmbeddingService built from --data/--model, then block until
/// SIGINT/SIGTERM. The first stdout line reports the bound port and pid so
/// scripts (the CI loopback smoke job) can scrape them.
int CmdServe(const Args& args) {
  auto data = LoadData(args.Get("data", "data.bin"));
  if (!data.ok()) return Fail(data.status().ToString());
  auto model = core::LoadFieldVae(args.Get("model", "model.bin"));
  if (!model.ok()) return Fail(model.status().ToString());

  ObsSession obs_session(args);
  serving::EmbeddingServiceOptions options;
  options.metrics_registry = &obs::MetricsRegistry::Global();
  options.num_shards = size_t(args.GetInt("shards", 16));
  options.enable_batcher = args.GetInt("batcher", 1) != 0;
  options.batcher.max_batch_size = size_t(args.GetInt("batch", 8));
  options.batcher.max_wait_micros = uint64_t(args.GetInt("wait-us", 100));
  options.batcher.queue_capacity = size_t(args.GetInt("queue", 8192));
  options.default_deadline_micros = uint64_t(args.GetInt("deadline-us", 0));

  // Default: materialize every user, so any shard replica can answer any
  // key — the failover path then keeps full coverage when a peer dies.
  const double hot_frac = args.GetDouble("hot-frac", 1.0);
  const size_t num_hot = std::max<size_t>(
      1, std::min(data->num_users(), size_t(hot_frac * data->num_users())));
  std::vector<uint32_t> hot_ids(num_hot);
  std::iota(hot_ids.begin(), hot_ids.end(), 0u);

  serving::FvaeFoldInEncoder encoder(model->get());
  serving::EmbeddingService service(
      serving::MaterializeEmbeddings(**model, *data, hot_ids,
                                     options.num_shards),
      &encoder, options);

  net::RpcServerOptions server_options;
  server_options.port = uint16_t(args.GetInt("port", 7070));
  server_options.num_workers = size_t(args.GetInt("workers", 2));
  server_options.slow_trace_threshold_micros = args.GetInt("slow-us", 50'000);
  net::RpcServer server(&service, server_options,
                        &obs::MetricsRegistry::Global());
  const Status started = server.Start();
  if (!started.ok()) return Fail(started.ToString());
  std::printf("serving on 127.0.0.1:%u pid %d (%zu embeddings, dim %zu)\n",
              unsigned(server.port()), int(::getpid()),
              service.store().size(), service.store().dim());
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  std::printf("service: %s\n", service.TelemetryJson().c_str());
  std::printf("transport: %s\n", server.metrics().ToJson().c_str());
  obs_session.Finish();
  return 0;
}

/// `fvae net-load` — closed-loop lookup load through a ShardRouterClient
/// against running `fvae serve` endpoints. Prints a single machine-readable
/// JSON line; the CI smoke job asserts on its `ok` and `failovers` fields.
int CmdNetLoad(const Args& args) {
  const std::string endpoints_flag = args.Get("endpoints", "");
  if (endpoints_flag.empty()) {
    return Fail("net-load needs --endpoints host:port[,host:port...]");
  }
  std::vector<std::string> endpoints = Split(endpoints_flag, ',');
  const size_t threads = size_t(args.GetInt("threads", 4));
  const size_t requests = size_t(args.GetInt("requests", 2000));
  const size_t num_users = size_t(args.GetInt("users", 1000));

  // --trace-out here captures the client half of the distributed traces
  // (net.client.call / net.client.send); the server writes its half on
  // shutdown. The CI smoke job joins the two files on trace_id.
  ObsSession obs_session(args);
  net::ShardRouterOptions router_options;
  router_options.call_deadline_micros = args.GetInt("deadline-us", 1'000'000);
  router_options.enable_hedging = args.GetInt("hedge", 1) != 0;
  router_options.breaker_failure_threshold =
      uint32_t(args.GetInt("breaker-threshold", 3));
  net::ShardRouterClient router(endpoints, router_options,
                                &obs::MetricsRegistry::Global());

  std::atomic<uint64_t> ok{0}, not_found{0}, failed{0};
  LatencyHistogram latency;
  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = t; i < requests; i += threads) {
        const uint64_t user = uint64_t(i % num_users);
        const int64_t start = MonotonicMicros();
        const Result<std::vector<float>> embedding = router.Lookup(user);
        latency.Record(double(MonotonicMicros() - start));
        if (embedding.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        } else if (embedding.status().code() == StatusCode::kNotFound) {
          not_found.fetch_add(1, std::memory_order_relaxed);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double elapsed = watch.ElapsedSeconds();

  net::RouterMetrics& metrics = router.metrics();
  std::string per_shard;
  for (size_t i = 0; i < router.num_shards(); ++i) {
    if (!per_shard.empty()) per_shard += ",";
    per_shard += std::to_string(metrics.shard_requests(i).Value());
  }
  std::printf(
      "{\"requests\":%zu,\"ok\":%llu,\"not_found\":%llu,\"failed\":%llu,"
      "\"qps\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,"
      "\"failovers\":%llu,\"hedges\":%llu,\"breaker_trips\":%llu,"
      "\"per_shard\":[%s]}\n",
      requests, (unsigned long long)ok.load(),
      (unsigned long long)not_found.load(), (unsigned long long)failed.load(),
      elapsed > 0.0 ? double(requests) / elapsed : 0.0,
      latency.Percentile(50.0), latency.Percentile(99.0),
      (unsigned long long)metrics.failovers.Value(),
      (unsigned long long)metrics.hedges.Value(),
      (unsigned long long)metrics.breaker_trips.Value(), per_shard.c_str());
  return 0;
}

/// Returns the value of `"key":` in `json` — the balanced {...}/[...] for
/// containers, the bare token (unquoted) for scalars, "" when absent.
/// First occurrence wins, so call it on an already-narrowed subobject.
/// Good enough for the introspection JSON (no braces inside strings).
std::string JsonValue(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return "";
  const size_t begin = at + needle.size();
  if (begin >= json.size()) return "";
  const char open = json[begin];
  if (open == '{' || open == '[') {
    const char close = open == '{' ? '}' : ']';
    int depth = 0;
    for (size_t i = begin; i < json.size(); ++i) {
      if (json[i] == open) ++depth;
      if (json[i] == close && --depth == 0) {
        return json.substr(begin, i - begin + 1);
      }
    }
    return "";
  }
  size_t end = begin;
  while (end < json.size() && json[end] != ',' && json[end] != '}' &&
         json[end] != ']') {
    ++end;
  }
  std::string value = json.substr(begin, end - begin);
  if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
    value = value.substr(1, value.size() - 2);
  }
  return value;
}

double JsonNumber(const std::string& json, const std::string& key,
                  double fallback = 0.0) {
  const std::string value = JsonValue(json, key);
  if (value.empty()) return fallback;
  return ParseDouble(value).value_or(fallback);
}

/// Splits a JSON array of flat objects into per-object strings.
std::vector<std::string> JsonArrayObjects(const std::string& array_json) {
  std::vector<std::string> out;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i < array_json.size(); ++i) {
    if (array_json[i] == '{' && depth++ == 0) start = i;
    if (array_json[i] == '}' && --depth == 0) {
      out.push_back(array_json.substr(start, i - start + 1));
    }
  }
  return out;
}

const char* const kTopVerbNames[] = {"health", "lookup", "encode_fold_in",
                                     "stats", "introspect"};

/// `fvae top` — live dashboard over running `fvae serve` endpoints: polls
/// the Introspect verb each interval and renders QPS, per-verb p50/p99,
/// endpoint health (a poll-failure mini-breaker), and the slowest captured
/// traces with their trace ids. `--once 1` renders a single frame without
/// clearing the screen (scriptable; the CI smoke job uses it); `--prom 1`
/// dumps the Prometheus text exposition instead and exits.
int CmdTop(const Args& args) {
  const std::string endpoints_flag = args.Get("endpoints", "");
  if (endpoints_flag.empty()) {
    return Fail("top needs --endpoints host:port[,host:port...]");
  }
  const std::vector<std::string> endpoints = Split(endpoints_flag, ',');
  const double interval_s = args.GetDouble("interval-s", 2.0);
  const bool once = args.GetInt("once", 0) != 0;

  if (args.GetInt("prom", 0) != 0) {
    for (const std::string& endpoint : endpoints) {
      auto channel = net::RpcChannel::Connect(endpoint);
      if (!channel.ok()) return Fail(channel.status().ToString());
      auto text = (*channel)->Introspect(net::IntrospectFormat::kPrometheus);
      if (!text.ok()) return Fail(text.status().ToString());
      std::printf("%s", text->c_str());
    }
    return 0;
  }

  struct EndpointState {
    double last_frames_rx = 0.0;
    int64_t last_poll_us = 0;
    uint32_t consecutive_failures = 0;
  };
  std::vector<EndpointState> states(endpoints.size());
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  for (;;) {
    std::string screen;
    for (size_t e = 0; e < endpoints.size(); ++e) {
      EndpointState& state = states[e];
      auto channel = net::RpcChannel::Connect(endpoints[e], /*timeout_ms=*/500);
      Result<std::string> body =
          channel.ok() ? (*channel)->Introspect() : Result<std::string>(
                                                        channel.status());
      const int64_t now_us = MonotonicMicros();
      if (!body.ok()) {
        ++state.consecutive_failures;
        // Same threshold the router's breaker defaults to: three strikes.
        const char* breaker =
            state.consecutive_failures >= 3 ? "OPEN" : "DEGRADED";
        screen += StrFormat("%s  [%s]  %s\n", endpoints[e].c_str(), breaker,
                            body.status().ToString().c_str());
        continue;
      }
      state.consecutive_failures = 0;
      const std::string net_json = JsonValue(*body, "net");
      const double frames_rx = JsonNumber(net_json, "frames_rx");
      double qps = 0.0;
      if (state.last_poll_us != 0 && now_us > state.last_poll_us) {
        qps = (frames_rx - state.last_frames_rx) * 1e6 /
              double(now_us - state.last_poll_us);
      }
      state.last_frames_rx = frames_rx;
      state.last_poll_us = now_us;

      screen += StrFormat(
          "%s  [CLOSED]  qps %.1f  conns %.0f  frames_rx %.0f  "
          "protocol_errors %.0f\n",
          endpoints[e].c_str(), qps, JsonNumber(net_json, "open_connections"),
          frames_rx, JsonNumber(net_json, "protocol_errors"));
      const std::string verbs = JsonValue(net_json, "verb_latency_us");
      screen += "  verb            count        p50_us       p99_us\n";
      for (const char* verb : kTopVerbNames) {
        const std::string histo = JsonValue(verbs, verb);
        if (histo.empty() || JsonNumber(histo, "count") == 0.0) continue;
        screen += StrFormat("  %-14s %8.0f %12.1f %12.1f\n", verb,
                            JsonNumber(histo, "count"),
                            JsonNumber(histo, "p50"),
                            JsonNumber(histo, "p99"));
      }
      const std::vector<std::string> slow =
          JsonArrayObjects(JsonValue(*body, "slow_traces"));
      if (!slow.empty()) {
        screen += "  slowest traces:\n";
        for (size_t i = 0; i < slow.size() && i < 5; ++i) {
          const size_t verb = size_t(JsonNumber(slow[i], "verb"));
          screen += StrFormat(
              "    trace %s  %-14s status %.0f  %.0f us\n",
              JsonValue(slow[i], "trace_id").c_str(),
              verb < 5 ? kTopVerbNames[verb] : "?",
              JsonNumber(slow[i], "status"),
              JsonNumber(slow[i], "duration_us"));
        }
      }
    }
    if (!once) std::printf("\x1b[2J\x1b[H");  // clear + home
    std::printf("%s", screen.c_str());
    std::fflush(stdout);
    if (once || g_stop.load(std::memory_order_relaxed)) break;
    for (int tick = 0; tick < int(interval_s * 10.0) &&
                       !g_stop.load(std::memory_order_relaxed);
         ++tick) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (g_stop.load(std::memory_order_relaxed)) break;
  }
  return 0;
}

/// Pretty-prints a JSONL metrics snapshot written by --metrics-out (or the
/// periodic dumper). Minimal field extraction — enough to read a dump
/// without other tooling; rows appear in file order, so an appended file
/// shows the dump history.
int CmdMetrics(const Args& args) {
  const std::string path = args.Get("in", "metrics.jsonl");
  std::ifstream in(path);
  if (!in) return Fail("cannot open " + path);

  auto field = [](const std::string& line,
                  const std::string& key) -> std::string {
    const std::string needle = "\"" + key + "\":";
    const size_t at = line.find(needle);
    if (at == std::string::npos) return "";
    size_t begin = at + needle.size();
    if (begin < line.size() && line[begin] == '"') {
      const size_t end = line.find('"', begin + 1);
      if (end == std::string::npos) return "";
      return line.substr(begin + 1, end - begin - 1);
    }
    size_t end = begin;
    while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
    return line.substr(begin, end - begin);
  };

  std::string line;
  size_t rows = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::string name = field(line, "name");
    const std::string type = field(line, "type");
    if (name.empty() || type.empty()) {
      return Fail("not a metrics snapshot line: " + line);
    }
    if (type == "histogram") {
      std::printf("%-36s %-9s count=%s mean=%s p50=%s p99=%s\n",
                  name.c_str(), type.c_str(), field(line, "count").c_str(),
                  field(line, "mean").c_str(), field(line, "p50").c_str(),
                  field(line, "p99").c_str());
    } else {
      std::printf("%-36s %-9s %s\n", name.c_str(), type.c_str(),
                  field(line, "value").c_str());
    }
    ++rows;
  }
  std::printf("%zu metrics from %s\n", rows, path.c_str());
  return 0;
}

int CmdInspect(const Args& args) {
  if (args.Has("model")) {
    auto model = core::LoadFieldVae(args.Get("model", ""));
    if (!model.ok()) return Fail(model.status().ToString());
    const core::FieldVae& m = **model;
    std::printf("FVAE checkpoint:\n  latent_dim: %zu\n  fields: %zu\n",
                m.latent_dim(), m.num_fields());
    for (size_t k = 0; k < m.num_fields(); ++k) {
      std::printf("    %-8s known_features=%zu%s\n",
                  m.field_schemas()[k].name.c_str(), m.KnownFeatures(k),
                  m.field_schemas()[k].is_sparse ? " (sparse)" : "");
    }
    std::printf("  parameters: %zu\n  sampling: %s r=%.2f  beta=%.2f\n",
                m.ParameterCount(),
                core::SamplingStrategyName(m.config().sampling_strategy),
                m.config().sampling_rate, m.config().beta);
    return 0;
  }
  if (args.Has("data")) {
    auto data = LoadData(args.Get("data", ""));
    if (!data.ok()) return Fail(data.status().ToString());
    std::printf("%s\n", data->Summary().c_str());
    for (size_t k = 0; k < data->num_fields(); ++k) {
      std::printf("  %-8s distinct_features=%zu nnz=%zu%s\n",
                  data->field(k).name.c_str(),
                  data->DistinctFeatureIds(k).size(), data->FieldNnz(k),
                  data->field(k).is_sparse ? " (sparse)" : "");
    }
    return 0;
  }
  return Fail("inspect needs --model or --data");
}

void PrintUsage() {
  std::printf(
      "fvae <command> [--flag value ...]\n"
      "commands:\n"
      "  generate  --preset sc|kd|qb --users N --seed S --out F [--text 1]\n"
      "  train     --data F --model F [--latent D --hidden H --epochs E\n"
      "             --batch B --rate R --strategy uniform|frequency|zipfian\n"
      "             --beta B --seed S --trace-out F --metrics-out F\n"
      "             --metrics-every-s N --checkpoint-dir D\n"
      "             --checkpoint-every STEPS --checkpoint-retain N\n"
      "             --resume 1]\n"
      "  evaluate  --data F --model F --task tag|recon [--field K]\n"
      "  export    --data F --model F --out F\n"
      "  inspect   --model F | --data F\n"
      "  metrics   --in metrics.jsonl\n"
      "  serve-bench --data F --model F [--threads N --requests N\n"
      "             --hot-frac H --batcher 0|1 --batch B --wait-us W\n"
      "             --queue Q --deadline-us D --shards S --seed S\n"
      "             --trace-out F --metrics-out F]\n"
      "  serve     --data F --model F [--port P --workers W --shards S\n"
      "             --batcher 0|1 --batch B --wait-us W --queue Q\n"
      "             --deadline-us D --hot-frac H --metrics-out F\n"
      "             --slow-us N --trace-out F]\n"
      "  net-load  --endpoints h:p[,h:p...] [--threads N --requests N\n"
      "             --users N --deadline-us D --hedge 0|1\n"
      "             --breaker-threshold N --trace-out F]\n"
      "  top       --endpoints h:p[,h:p...] [--interval-s S --once 1\n"
      "             --prom 1]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 1;
  }
  const std::string command = argv[1];
  const Args args(argc, argv, 2);
  if (command == "generate") return CmdGenerate(args);
  if (command == "train") return CmdTrain(args);
  if (command == "evaluate") return CmdEvaluate(args);
  if (command == "export") return CmdExport(args);
  if (command == "inspect") return CmdInspect(args);
  if (command == "metrics") return CmdMetrics(args);
  if (command == "serve-bench") return CmdServeBench(args);
  if (command == "serve") return CmdServe(args);
  if (command == "net-load") return CmdNetLoad(args);
  if (command == "top") return CmdTop(args);
  PrintUsage();
  return 1;
}
