#ifndef FVAE_TOOLS_LINT_RULES_H_
#define FVAE_TOOLS_LINT_RULES_H_

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

/// fvae_lint rule engine — a dependency-free, single-pass source scanner
/// enforcing project invariants that neither the compiler nor TSan can see
/// (see ARCHITECTURE.md "Static analysis & sanitizers" for the rationale
/// behind each rule):
///
///   discarded-status   an expression statement calls a function returning
///                      Status / Result<T> and drops the value. Belt and
///                      braces over [[nodiscard]] — it also covers code the
///                      compiler never instantiates.
///   void-needs-reason  a `(void)` cast of a call has no inline
///                      justification comment (same line or line above).
///   raw-mutex          a std::mutex / std::shared_mutex / lock/condvar
///                      primitive is named outside common/mutex.h, where
///                      the capability-annotated wrappers live.
///   banned-random      rand(), srand(), std::random_device etc. outside
///                      src/common/random — all stochastic code must draw
///                      from an explicitly seeded fvae::Rng.
///   header-guard       a header's include guard does not match the
///                      FVAE_<PATH>_H_ convention (or #pragma once).
///   using-namespace    file-scope `using namespace` in a header.
///   metric-name        a string literal passed to a metrics-registry
///                      Counter()/Gauge()/Histo() call is not a snake_case
///                      dotted path ("training.epoch_loss"). Catches at
///                      review time what obs::MetricsRegistry would
///                      FVAE_CHECK-crash on at run time.
///   atomic-write       a std::ofstream is named in a module that produces
///                      durable artifacts (model_io, checkpoint, dataset
///                      io/streaming, embedding_store, obs exports). Those
///                      writes must go through AtomicFileWriter
///                      (common/atomic_file.h) so a crash leaves the old
///                      or the new file, never a torn one. Deliberate
///                      exceptions (e.g. append-mode logs, which a rename
///                      would clobber) carry the suppression comment.
///
/// Findings on a line carrying `fvae-lint: allow(<rule>)` are suppressed.
///
/// The scanner is deliberately lexical (comments and string literals are
/// stripped first; one statement per line is assumed). That keeps it fast
/// and dependency-free at the cost of multi-line statements escaping the
/// discarded-status rule — which is fine, because [[nodiscard]] already
/// catches those at compile time.

namespace fvae::lint {

struct Finding {
  std::string file;
  size_t line = 0;  // 1-based
  std::string rule;
  std::string message;
};

struct LintOptions {
  /// Expected include guard (empty: skip header-only checks).
  std::string expected_guard;
  /// True for common/mutex.h, which wraps the std primitives.
  bool allow_raw_mutex = false;
  /// True for src/common/random.*, the one sanctioned entropy boundary.
  bool allow_nondeterminism = false;
  /// True for modules whose outputs must be crash-safe: ban raw
  /// std::ofstream in favor of AtomicFileWriter.
  bool ban_raw_ofstream = false;
  /// Known Status/Result-returning function names (last path component).
  const std::set<std::string>* status_functions = nullptr;
};

namespace detail {

inline bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Replaces comments and string/char literals with spaces, preserving line
/// structure, so token scans never fire inside them. Handles //, /**/,
/// "..." (with escapes), '...', and R"delim(...)delim".
inline std::string StripCommentsAndStrings(const std::string& src) {
  std::string out(src.size(), ' ');
  size_t i = 0;
  const size_t n = src.size();
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      out[i++] = '\n';
    } else if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
    } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') out[i] = '\n';
        ++i;
      }
      i = std::min(n, i + 2);
    } else if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
               (i == 0 || !IsIdentChar(src[i - 1]))) {
      size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(') delim += src[j++];
      const std::string closer = ")" + delim + "\"";
      size_t end = src.find(closer, j);
      end = end == std::string::npos ? n : end + closer.size();
      for (size_t k = i; k < end; ++k) {
        if (src[k] == '\n') out[k] = '\n';
      }
      i = end;
    } else if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        if (src[i] == '\n') out[i] = '\n';  // unterminated; stay line-true
        ++i;
      }
      ++i;
    } else {
      out[i] = c;
      ++i;
    }
  }
  out.resize(n);
  return out;
}

inline std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

inline std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// True if `code` contains `token` as a whole identifier (not a substring
/// of a longer identifier). `token` may contain "::".
inline bool HasToken(const std::string& code, const std::string& token) {
  size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || (!IsIdentChar(code[pos - 1]) &&
                                      code[pos - 1] != ':');
    const size_t end = pos + token.size();
    const bool right_ok = end >= code.size() || !IsIdentChar(code[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

/// True if the line suppresses `rule` via "fvae-lint: allow(rule)".
inline bool Suppressed(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("fvae-lint: allow(" + rule + ")") != std::string::npos;
}

/// Parses a qualified identifier (a::b.c->d) starting at `pos`; returns the
/// last component and advances `pos` past it, or returns "" if none.
inline std::string ParseQualifiedCallee(const std::string& s, size_t* pos) {
  size_t i = *pos;
  std::string last;
  for (;;) {
    const size_t start = i;
    while (i < s.size() && IsIdentChar(s[i])) ++i;
    if (i == start) return "";
    last = s.substr(start, i - start);
    if (i + 1 < s.size() && s.compare(i, 2, "::") == 0) {
      i += 2;
    } else if (i < s.size() && s[i] == '.') {
      i += 1;
    } else if (i + 1 < s.size() && s.compare(i, 2, "->") == 0) {
      i += 2;
    } else {
      break;
    }
  }
  *pos = i;
  return last;
}

/// True for a valid dotted metric path: two or more snake_case segments
/// ([a-z][a-z0-9_]*) joined by '.'. Mirrors obs::IsValidMetricName so the
/// lint finding and the registry's runtime FVAE_CHECK agree.
inline bool IsMetricNamePath(const std::string& name) {
  if (name.empty()) return false;
  bool seen_dot = false;
  bool segment_start = true;
  for (char c : name) {
    if (c == '.') {
      if (segment_start) return false;  // empty segment
      seen_dot = true;
      segment_start = true;
      continue;
    }
    if (segment_start) {
      if (c < 'a' || c > 'z') return false;
      segment_start = false;
      continue;
    }
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return seen_dot && !segment_start;
}

}  // namespace detail

/// Scans stripped source for `Status Name(` / `Result<...> Name(`
/// declarations and collects the function names. Shared by the tree walk
/// (phase 1) so discarded-status knows the project's fallible functions.
inline void CollectStatusFunctions(const std::string& content,
                                   std::set<std::string>* out) {
  const std::string code = detail::StripCommentsAndStrings(content);
  size_t pos = 0;
  while (pos < code.size()) {
    size_t hit = std::string::npos;
    size_t after_type = 0;
    for (const char* type : {"Status", "Result"}) {
      size_t p = pos;
      const size_t len = std::string(type).size();
      while ((p = code.find(type, p)) != std::string::npos) {
        const bool left_ok = p == 0 || (!detail::IsIdentChar(code[p - 1]) &&
                                        code[p - 1] != ':' &&
                                        code[p - 1] != '<');
        const bool right_ok = p + len >= code.size() ||
                              !detail::IsIdentChar(code[p + len]);
        if (left_ok && right_ok) break;
        p += len;
      }
      if (p == std::string::npos) continue;
      size_t end = p + len;
      if (code.compare(p, 6, "Result") == 0) {
        // Must be Result<...>; match angle brackets with depth counting.
        if (end >= code.size() || code[end] != '<') continue;
        int depth = 0;
        while (end < code.size()) {
          if (code[end] == '<') ++depth;
          if (code[end] == '>' && --depth == 0) {
            ++end;
            break;
          }
          ++end;
        }
      }
      if (hit == std::string::npos || p < hit) {
        hit = p;
        after_type = end;
      }
    }
    if (hit == std::string::npos) return;
    pos = after_type;
    // Reject "Status&", "Status(" (ctor call / return), "Status;" etc.:
    // a declaration is type, whitespace, identifier, '('.
    size_t i = pos;
    while (i < code.size() &&
           std::isspace(static_cast<unsigned char>(code[i]))) {
      ++i;
    }
    if (i == pos) continue;  // no whitespace after type: not a declaration
    std::string name = detail::ParseQualifiedCallee(code, &i);
    if (name.empty()) continue;
    while (i < code.size() &&
           std::isspace(static_cast<unsigned char>(code[i]))) {
      ++i;
    }
    if (i < code.size() && code[i] == '(') out->insert(name);
  }
}

/// Derives the expected include guard from a repo-relative path:
/// src/serving/lru_cache.h -> FVAE_SERVING_LRU_CACHE_H_,
/// bench/model_zoo.h -> FVAE_BENCH_MODEL_ZOO_H_. Empty for non-headers.
inline std::string ExpectedGuard(std::string rel_path) {
  if (rel_path.size() < 2 || rel_path.substr(rel_path.size() - 2) != ".h") {
    return "";
  }
  if (rel_path.rfind("src/", 0) == 0) rel_path = rel_path.substr(4);
  std::string guard = "FVAE_";
  for (char c : rel_path.substr(0, rel_path.size() - 2)) {
    guard += detail::IsIdentChar(c)
                 ? char(std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  return guard + "_H_";
}

/// Lints one file's content. `path_label` is used verbatim in findings.
inline std::vector<Finding> LintFile(const std::string& path_label,
                                     const std::string& content,
                                     const LintOptions& options) {
  std::vector<Finding> findings;
  const std::vector<std::string> raw = detail::SplitLines(content);
  const std::vector<std::string> code =
      detail::SplitLines(detail::StripCommentsAndStrings(content));
  auto report = [&](size_t idx, const std::string& rule,
                    const std::string& message) {
    if (idx < raw.size() && detail::Suppressed(raw[idx], rule)) return;
    findings.push_back({path_label, idx + 1, rule, message});
  };

  static const char* kMutexTokens[] = {
      "std::mutex",       "std::shared_mutex",
      "std::timed_mutex", "std::recursive_mutex",
      "std::lock_guard",  "std::unique_lock",
      "std::shared_lock", "std::scoped_lock",
      "std::condition_variable", "std::condition_variable_any"};
  static const char* kRandomTokens[] = {"rand", "srand", "drand48", "lrand48",
                                        "mrand48", "std::random_device"};

  for (size_t i = 0; i < code.size(); ++i) {
    const std::string line = detail::Trim(code[i]);
    if (line.empty()) continue;

    if (!options.allow_raw_mutex) {
      for (const char* token : kMutexTokens) {
        if (detail::HasToken(line, token)) {
          report(i, "raw-mutex",
                 std::string(token) +
                     " outside common/mutex.h; use the capability-annotated "
                     "fvae::Mutex/SharedMutex/CondVar wrappers");
          break;
        }
      }
    }

    if (!options.allow_nondeterminism) {
      for (const char* token : kRandomTokens) {
        if (detail::HasToken(line, token)) {
          report(i, "banned-random",
                 std::string(token) +
                     " is nondeterministic; draw from an explicitly seeded "
                     "fvae::Rng (common/random.h)");
          break;
        }
      }
    }

    if (options.ban_raw_ofstream && detail::HasToken(line, "std::ofstream")) {
      report(i, "atomic-write",
             "std::ofstream writes a durable artifact in place; route it "
             "through AtomicFileWriter (common/atomic_file.h) so a crash "
             "leaves the old or the new file, never a torn one");
    }

    if (!options.expected_guard.empty() && line.rfind("using namespace", 0) == 0) {
      report(i, "using-namespace",
             "file-scope `using namespace` in a header leaks into every "
             "includer");
    }

    // (void)-cast of a call: demand an inline justification so intentional
    // discards stay auditable. `(void)identifier;` (unused-parameter
    // silencing) is exempt — no call involved.
    if (line.rfind("(void)", 0) == 0 &&
        line.find('(', 6) != std::string::npos) {
      const bool commented_same =
          raw[i].find("//") != std::string::npos ||
          raw[i].find("/*") != std::string::npos;
      const bool commented_above =
          i > 0 && detail::Trim(raw[i - 1]).rfind("//", 0) == 0;
      if (!commented_same && !commented_above) {
        report(i, "void-needs-reason",
               "(void)-discarded call needs a justification comment on the "
               "same line or the line above");
      }
      continue;  // an annotated discard is not a discarded-status finding
    }

    // Metric-name hygiene: a string literal handed to a registry
    // Counter()/Gauge()/Histo() call must be a snake_case dotted path.
    // Literals live only in the raw line (stripping blanks them), so scan
    // raw and cross-check the same offset in the stripped line to skip
    // occurrences inside comments.
    for (const char* method : {"Counter(\"", "Gauge(\"", "Histo(\""}) {
      const size_t method_len = std::string(method).size();
      size_t at = 0;
      while ((at = raw[i].find(method, at)) != std::string::npos) {
        const bool own_word = at == 0 || !detail::IsIdentChar(raw[i][at - 1]);
        const bool in_code =
            code[i].size() > at &&
            code[i].compare(at, method_len - 1, method, method_len - 1) == 0;
        if (!own_word || !in_code) {
          at += method_len;
          continue;
        }
        const size_t name_begin = at + method_len;
        const size_t name_end = raw[i].find('"', name_begin);
        if (name_end == std::string::npos) break;  // literal spans lines
        const std::string name =
            raw[i].substr(name_begin, name_end - name_begin);
        if (!detail::IsMetricNamePath(name)) {
          report(i, "metric-name",
                 "metric name \"" + name +
                     "\" must be a snake_case dotted path like "
                     "\"training.epoch_loss\"");
        }
        at = name_end + 1;
      }
    }

    if (options.status_functions != nullptr && line.back() == ';') {
      size_t pos = 0;
      const std::string callee = detail::ParseQualifiedCallee(line, &pos);
      // Balanced parens ⇒ the line is a whole statement, not the tail of a
      // wrapped expression (those carry the extra closing paren).
      const bool balanced =
          std::count(line.begin(), line.end(), '(') ==
          std::count(line.begin(), line.end(), ')');
      if (!callee.empty() && pos < line.size() && line[pos] == '(' &&
          balanced && options.status_functions->count(callee) > 0 &&
          line.find('=') == std::string::npos &&
          line.rfind("return", 0) != 0) {
        report(i, "discarded-status",
               callee + "() returns Status/Result; the value must be "
                        "checked (or (void)-discarded with a reason)");
      }
    }
  }

  // Header hygiene: guard lines must exist, match the path-derived name,
  // and #pragma once is banned (guards keep the convention greppable).
  if (!options.expected_guard.empty()) {
    bool saw_ifndef = false, saw_define = false, saw_endif = false;
    for (size_t i = 0; i < code.size(); ++i) {
      const std::string line = detail::Trim(code[i]);
      if (line.rfind("#pragma", 0) == 0 &&
          line.find("once") != std::string::npos) {
        report(i, "header-guard", "#pragma once; use the FVAE_*_H_ guard");
      }
      if (!saw_ifndef && line.rfind("#ifndef", 0) == 0) {
        saw_ifndef = true;
        if (detail::Trim(line.substr(7)) != options.expected_guard) {
          report(i, "header-guard",
                 "include guard should be " + options.expected_guard);
        }
      } else if (saw_ifndef && !saw_define && line.rfind("#define", 0) == 0) {
        saw_define = true;
        if (detail::Trim(line.substr(7)) != options.expected_guard) {
          report(i, "header-guard",
                 "#define should match guard " + options.expected_guard);
        }
      }
      if (line.rfind("#endif", 0) == 0) saw_endif = true;
    }
    if (!saw_ifndef || !saw_define || !saw_endif) {
      report(code.empty() ? 0 : code.size() - 1, "header-guard",
             "missing #ifndef/#define/#endif include guard " +
                 options.expected_guard);
    }
  }
  return findings;
}

/// Walks the repository tree rooted at `root` (src, tools, bench, tests,
/// examples), collects Status/Result signatures, then lints every source
/// file. This is the whole program: fvae_lint's main() and the lint test's
/// clean-tree check both call it.
inline std::vector<Finding> LintTree(const std::filesystem::path& root) {
  namespace fs = std::filesystem;
  static const char* kDirs[] = {"src", "tools", "bench", "tests", "examples"};
  std::vector<std::pair<std::string, std::string>> files;  // rel path, body
  for (const char* dir : kDirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream body;
      body << in.rdbuf();
      files.emplace_back(fs::relative(entry.path(), root).generic_string(),
                         body.str());
    }
  }
  std::sort(files.begin(), files.end());

  std::set<std::string> status_functions;
  for (const auto& [path, body] : files) {
    CollectStatusFunctions(body, &status_functions);
  }

  std::vector<Finding> findings;
  for (const auto& [path, body] : files) {
    LintOptions options;
    options.expected_guard = ExpectedGuard(path);
    options.allow_raw_mutex = path == "src/common/mutex.h";
    options.allow_nondeterminism = path == "src/common/random.h" ||
                                   path == "src/common/random.cc";
    // Modules that persist durable artifacts. common/atomic_file.* itself
    // is the sanctioned wrapper, and lives outside these prefixes.
    options.ban_raw_ofstream =
        path.rfind("src/core/model_io", 0) == 0 ||
        path.rfind("src/core/checkpoint", 0) == 0 ||
        path.rfind("src/data/io", 0) == 0 ||
        path.rfind("src/data/streaming", 0) == 0 ||
        path.rfind("src/serving/embedding_store", 0) == 0 ||
        path.rfind("src/obs/", 0) == 0;
    options.status_functions = &status_functions;
    std::vector<Finding> file_findings = LintFile(path, body, options);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  return findings;
}

}  // namespace fvae::lint

#endif  // FVAE_TOOLS_LINT_RULES_H_
