#ifndef FVAE_TOOLS_LINT_RULES_H_
#define FVAE_TOOLS_LINT_RULES_H_

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/cpp_lexer.h"
#include "tools/lint_graph.h"
#include "tools/tu_facts.h"

/// fvae_lint rule engine, v2 — a dependency-free static analyzer built on a
/// real token stream (tools/cpp_lexer.h), so no rule can ever fire inside a
/// comment or a string/char/raw-string literal. Two layers:
///
/// **Per-file rules** (this header; see ARCHITECTURE.md §7 for rationale):
///
///   discarded-status   an expression statement calls a function returning
///                      Status / Result<T> and drops the value. Belt and
///                      braces over [[nodiscard]] — it also covers code the
///                      compiler never instantiates.
///   void-needs-reason  a `(void)` cast of a call has no inline
///                      justification comment (same line or line above).
///   raw-mutex          a std::mutex / std::shared_mutex / lock/condvar
///                      primitive is named outside common/mutex.h, where
///                      the capability-annotated wrappers live.
///   banned-random      rand(), srand(), std::random_device etc. outside
///                      src/common/random — all stochastic code must draw
///                      from an explicitly seeded fvae::Rng.
///   raw-socket         a bare or ::-qualified socket()/accept()/accept4()/
///                      close() call outside src/net/ — descriptors must
///                      live in the RAII net::Fd wrapper (net/fd.h) so they
///                      cannot leak through an early return or be closed
///                      twice. Member calls (file.close()) are exempt.
///   fd-leak            inside src/net/ (where the raw syscalls are
///                      allowed), every descriptor-producing call —
///                      socket()/accept()/accept4()/eventfd()/
///                      epoll_create1()/open() — must appear *inside* the
///                      argument list of an `Fd(...)` construction or an
///                      `.Reset(...)` call, so the result is owned before
///                      any statement can intervene. The paren-nesting
///                      check runs on the token stream, so multi-line
///                      wraps are fine; an intentionally raw result takes
///                      `fvae-lint: allow(fd-leak)` on the call line.
///   header-guard       a header's include guard does not match the
///                      FVAE_<PATH>_H_ convention (or #pragma once).
///   using-namespace    file-scope `using namespace` in a header.
///   metric-name        a string literal passed to a metrics-registry
///                      Counter()/Gauge()/Histo() call is not a snake_case
///                      dotted path ("training.epoch_loss").
///   atomic-write       a std::ofstream is named in a module that produces
///                      durable artifacts; those writes must go through
///                      AtomicFileWriter (common/atomic_file.h).
///
/// **Whole-program analyses** (tools/tu_facts.h + tools/lint_graph.h,
/// wired into LintTree over `src/`):
///
///   lock-cycle         the lock acquisition-order graph (declared
///                      FVAE_ACQUIRED_BEFORE/AFTER ranks plus statically
///                      observed nesting, propagated through calls) has a
///                      cycle — a potential deadlock; the offending path
///                      is printed edge by edge.
///   hot-log / hot-io / functions transitively reachable from an FVAE_HOT
///   hot-lock /         root log, do IO, or take a lock not marked
///   hot-alloc          FVAE_HOT_LOCK_EXEMPT; FVAE_NOALLOC roots also
///                      forbid heap-allocation tokens. The finding prints
///                      the call chain from the annotated root.
///   loop-block /       functions transitively reachable from an
///   loop-io /          FVAE_EVENT_LOOP root block (syscalls, sleeps,
///   loop-lock /        condvar waits, joins, recv/send without
///   loop-may-block     MSG_DONTWAIT), do file IO, take a non-exempt lock,
///                      or call into an FVAE_MAY_BLOCK function.
///   guarded-by         an FVAE_GUARDED_BY(m) member is accessed without
///                      `m` held (RAII guard, manual Lock(), or
///                      FVAE_REQUIRES on the enclosing function).
///   verb-switch        a switch over a known enum class (the wire Verb)
///                      misses enumerators without a justified default.
///
/// Findings on a line carrying `fvae-lint: allow(<rule>)` are suppressed;
/// `fvae-lint: allow(hot-path)` on a call line additionally prunes that
/// call edge from the hot-path walk.
///
/// The per-file rules stay deliberately line-oriented (one statement per
/// line is assumed), which keeps them fast and lets multi-line statements
/// escape discarded-status — fine, because [[nodiscard]] already catches
/// those at compile time.

namespace fvae::lint {

struct LintOptions {
  /// Expected include guard (empty: skip header-only checks).
  std::string expected_guard;
  /// True for common/mutex.h, which wraps the std primitives.
  bool allow_raw_mutex = false;
  /// True for src/common/random.*, the one sanctioned entropy boundary.
  bool allow_nondeterminism = false;
  /// True for src/net/*, where the RAII Fd wrapper itself makes the raw
  /// socket()/accept()/close() syscalls.
  bool allow_raw_sockets = false;
  /// True for modules whose outputs must be crash-safe: ban raw
  /// std::ofstream in favor of AtomicFileWriter.
  bool ban_raw_ofstream = false;
  /// Known Status/Result-returning function names (last path component).
  const std::set<std::string>* status_functions = nullptr;
};

namespace detail {

inline bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

inline std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string line;
  std::istringstream in(text);
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

inline std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// True if the line suppresses `rule` via "fvae-lint: allow(rule)" or a
/// comma-separated list "fvae-lint: allow(rule,other)". Shared grammar
/// with the whole-program suppression check (see cpp_lexer.h).
inline bool Suppressed(const std::string& raw_line, const std::string& rule) {
  return SuppressionAllows(raw_line, rule);
}

/// Groups a token stream by 1-based line number. Multi-line tokens (raw
/// strings, joined preprocessor continuations) live on their first line.
inline std::vector<std::vector<Tok>> TokensByLine(const std::vector<Tok>& toks,
                                                  size_t line_count) {
  std::vector<std::vector<Tok>> by_line(line_count + 1);
  for (const Tok& t : toks) {
    if (t.line >= 1 && t.line <= line_count) by_line[t.line].push_back(t);
  }
  return by_line;
}

inline bool IsPunct(const Tok& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}
inline bool IsIdent(const Tok& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

/// True when line[i] is `member` qualified as std::member (i >= 2).
inline bool IsStdQualified(const std::vector<Tok>& line, size_t i) {
  return i >= 2 && IsPunct(line[i - 1], "::") && IsIdent(line[i - 2], "std");
}

/// Parses a qualified callee chain (a::b.c->d) starting at line[*i];
/// returns the last component and advances *i past the chain, or returns
/// "" when line[*i] is not an identifier.
inline std::string ParseCalleeChain(const std::vector<Tok>& line, size_t* i) {
  std::string last;
  size_t j = *i;
  while (j < line.size() && line[j].kind == TokKind::kIdent) {
    last = line[j].text;
    if (j + 1 < line.size() &&
        (IsPunct(line[j + 1], "::") || IsPunct(line[j + 1], ".") ||
         IsPunct(line[j + 1], "->"))) {
      j += 2;
    } else {
      ++j;
      break;
    }
  }
  if (last.empty()) return "";
  *i = j;
  return last;
}

/// True for a valid dotted metric path: two or more snake_case segments
/// ([a-z][a-z0-9_]*) joined by '.'. Mirrors obs::IsValidMetricName so the
/// lint finding and the registry's runtime FVAE_CHECK agree.
inline bool IsMetricNamePath(const std::string& name) {
  if (name.empty()) return false;
  bool seen_dot = false;
  bool segment_start = true;
  for (char c : name) {
    if (c == '.') {
      if (segment_start) return false;  // empty segment
      seen_dot = true;
      segment_start = true;
      continue;
    }
    if (segment_start) {
      if (c < 'a' || c > 'z') return false;
      segment_start = false;
      continue;
    }
    const bool ok =
        (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return seen_dot && !segment_start;
}

/// Splits a kPreproc token's text into the directive name ("ifndef") and
/// the remainder ("FVAE_FOO_H_ ...").
inline std::pair<std::string, std::string> SplitDirective(
    const std::string& text) {
  size_t i = 0;
  while (i < text.size() && (text[i] == '#' || text[i] == ' ' ||
                             text[i] == '\t')) {
    ++i;
  }
  size_t j = i;
  while (j < text.size() && IsIdentChar(text[j])) ++j;
  return {text.substr(i, j - i), Trim(text.substr(j))};
}

}  // namespace detail

/// Scans a file's tokens for `Status Name(` / `Result<...> Name(`
/// declarations and collects the function names. Shared by the tree walk
/// (phase 1) so discarded-status knows the project's fallible functions.
///
/// When `non_status` is provided, names declared with any *other* leading
/// return type (`void Add(`, `bool Next(`) are collected there too. The
/// analyzer matches call sites by bare name across translation units, so
/// a name used both ways (obs::Counter::Add vs net::EpollLoop::Add) is
/// ambiguous; the tree walk drops such names from the fallible set rather
/// than flag unrelated call sites.
inline void CollectStatusFunctions(
    const std::string& content, std::set<std::string>* out,
    std::set<std::string>* non_status = nullptr) {
  using detail::IsPunct;
  const std::vector<Tok> toks = LexCpp(content);
  for (size_t i = 0; i < toks.size(); ++i) {
    const Tok& t = toks[i];
    if (t.kind != TokKind::kIdent) continue;
    // Reject qualified (x::Status), template-argument (<Status>), and
    // member (x.Status) uses: this must be a leading return type.
    if (i > 0 && toks[i - 1].kind == TokKind::kPunct &&
        (toks[i - 1].text == "::" || toks[i - 1].text == "<" ||
         toks[i - 1].text == "." || toks[i - 1].text == "->")) {
      continue;
    }
    const bool fallible = t.text == "Status" || t.text == "Result";
    size_t j = i + 1;
    if (fallible) {
      if (t.text == "Result") {
        // Must be Result<...>; match angle brackets with depth counting
        // (">>" closes two levels).
        if (j >= toks.size() || !IsPunct(toks[j], "<")) continue;
        int depth = 0;
        while (j < toks.size()) {
          if (IsPunct(toks[j], "<")) ++depth;
          if (IsPunct(toks[j], ">")) --depth;
          if (IsPunct(toks[j], ">>")) depth -= 2;
          ++j;
          if (depth <= 0) break;
        }
      }
    } else {
      if (non_status == nullptr) continue;
      // Statement keywords precede *calls*, not declarations; skipping
      // them keeps `return Foo(x);` from polluting the ambiguity set.
      static const std::set<std::string> kNotAType = {
          "return", "co_return", "co_await", "co_yield", "throw",
          "new",    "delete",    "else",     "do",       "goto",
          "case",   "operator",  "using",    "typedef",  "sizeof",
          "alignof", "not",      "and",      "or"};
      if (kNotAType.count(t.text) > 0) continue;
    }
    // Type, then an identifier chain, then '(' — `Status(...)` (ctor) and
    // `Status s = ...` fall out naturally.
    std::string name;
    while (j < toks.size() && toks[j].kind == TokKind::kIdent) {
      name = toks[j].text;
      if (j + 1 < toks.size() && IsPunct(toks[j + 1], "::")) {
        j += 2;
      } else {
        ++j;
        break;
      }
    }
    if (!name.empty() && j < toks.size() && IsPunct(toks[j], "(")) {
      (fallible ? out : non_status)->insert(name);
    }
  }
}

/// Derives the expected include guard from a repo-relative path:
/// src/serving/lru_cache.h -> FVAE_SERVING_LRU_CACHE_H_,
/// bench/model_zoo.h -> FVAE_BENCH_MODEL_ZOO_H_. Empty for non-headers.
inline std::string ExpectedGuard(std::string rel_path) {
  if (rel_path.size() < 2 || rel_path.substr(rel_path.size() - 2) != ".h") {
    return "";
  }
  if (rel_path.rfind("src/", 0) == 0) rel_path = rel_path.substr(4);
  std::string guard = "FVAE_";
  for (char c : rel_path.substr(0, rel_path.size() - 2)) {
    guard += detail::IsIdentChar(c)
                 ? char(std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  return guard + "_H_";
}

/// Lints one file's content. `path_label` is used verbatim in findings.
inline std::vector<Finding> LintFile(const std::string& path_label,
                                     const std::string& content,
                                     const LintOptions& options) {
  using detail::IsIdent;
  using detail::IsPunct;
  using detail::IsStdQualified;
  std::vector<Finding> findings;
  const std::vector<std::string> raw = detail::SplitLines(content);
  const std::vector<Tok> toks = LexCpp(content);
  const std::vector<std::vector<Tok>> by_line =
      detail::TokensByLine(toks, raw.size());
  auto report = [&](size_t idx, const std::string& rule,
                    const std::string& message) {
    if (idx < raw.size() && detail::Suppressed(raw[idx], rule)) return;
    findings.push_back({path_label, idx + 1, rule, message});
  };

  static const std::set<std::string> kMutexTypes = {
      "mutex",       "shared_mutex",       "timed_mutex",
      "recursive_mutex", "lock_guard",     "unique_lock",
      "shared_lock", "scoped_lock",        "condition_variable",
      "condition_variable_any"};
  static const std::set<std::string> kBareRandom = {
      "rand", "srand", "drand48", "lrand48", "mrand48"};
  static const std::set<std::string> kRawSocketFns = {"socket", "accept",
                                                      "accept4", "close"};

  for (size_t idx = 0; idx < raw.size(); ++idx) {
    const std::vector<Tok>& line = by_line[idx + 1];
    if (line.empty()) continue;

    if (!options.allow_raw_mutex) {
      for (size_t i = 0; i < line.size(); ++i) {
        if (line[i].kind == TokKind::kIdent &&
            kMutexTypes.count(line[i].text) > 0 && IsStdQualified(line, i)) {
          report(idx, "raw-mutex",
                 "std::" + line[i].text +
                     " outside common/mutex.h; use the capability-annotated "
                     "fvae::Mutex/SharedMutex/CondVar wrappers");
          break;
        }
      }
    }

    if (!options.allow_nondeterminism) {
      for (size_t i = 0; i < line.size(); ++i) {
        if (line[i].kind != TokKind::kIdent) continue;
        const bool bare = kBareRandom.count(line[i].text) > 0 &&
                          !(i > 0 && IsPunct(line[i - 1], "::"));
        const bool device =
            line[i].text == "random_device" && IsStdQualified(line, i);
        if (bare || device) {
          report(idx, "banned-random",
                 line[i].text +
                     " is nondeterministic; draw from an explicitly seeded "
                     "fvae::Rng (common/random.h)");
          break;
        }
      }
    }

    if (!options.allow_raw_sockets) {
      for (size_t i = 0; i + 1 < line.size(); ++i) {
        if (line[i].kind != TokKind::kIdent ||
            kRawSocketFns.count(line[i].text) == 0 ||
            !IsPunct(line[i + 1], "(")) {
          continue;
        }
        // Member calls (file.close(), stream->close()) are not descriptor
        // syscalls; neither is a foreign-namespace qualification. Bare
        // calls and global-scope `::close(` are the POSIX functions.
        if (i > 0 &&
            (IsPunct(line[i - 1], ".") || IsPunct(line[i - 1], "->"))) {
          continue;
        }
        if (i > 0 && IsPunct(line[i - 1], "::") && i >= 2 &&
            line[i - 2].kind == TokKind::kIdent) {
          continue;
        }
        report(idx, "raw-socket",
               line[i].text +
                   "() handles a raw file descriptor outside src/net/; own "
                   "it with net::Fd (net/fd.h) so it cannot leak or "
                   "double-close");
        break;
      }
    }

    if (options.ban_raw_ofstream) {
      for (size_t i = 0; i < line.size(); ++i) {
        if (IsIdent(line[i], "ofstream") && IsStdQualified(line, i)) {
          report(idx, "atomic-write",
                 "std::ofstream writes a durable artifact in place; route it "
                 "through AtomicFileWriter (common/atomic_file.h) so a crash "
                 "leaves the old or the new file, never a torn one");
          break;
        }
      }
    }

    if (!options.expected_guard.empty() && line.size() >= 2 &&
        IsIdent(line[0], "using") && IsIdent(line[1], "namespace")) {
      report(idx, "using-namespace",
             "file-scope `using namespace` in a header leaks into every "
             "includer");
    }

    // Metric-name hygiene: a string literal handed to a registry
    // Counter()/Gauge()/Histo() call must be a snake_case dotted path.
    for (size_t i = 0; i + 2 < line.size(); ++i) {
      if (line[i].kind != TokKind::kIdent ||
          (line[i].text != "Counter" && line[i].text != "Gauge" &&
           line[i].text != "Histo")) {
        continue;
      }
      if (!IsPunct(line[i + 1], "(") ||
          line[i + 2].kind != TokKind::kString) {
        continue;
      }
      const std::string& name = line[i + 2].text;
      if (!detail::IsMetricNamePath(name)) {
        report(idx, "metric-name",
               "metric name \"" + name +
                   "\" must be a snake_case dotted path like "
                   "\"training.epoch_loss\"");
      }
    }

    // Span-name hygiene: trace span names share the metric-name grammar so
    // Chrome exports, span profiles and the hop-breakdown bench all key on
    // one vocabulary. Covers FVAE_TRACE_SCOPE("x"), TraceSpan s("x"),
    // TraceSpan("x"), RecordSpan("x", ...) and NoteSpan("x", ...).
    for (size_t i = 0; i + 2 < line.size(); ++i) {
      if (line[i].kind != TokKind::kIdent ||
          (line[i].text != "FVAE_TRACE_SCOPE" &&
           line[i].text != "TraceSpan" && line[i].text != "RecordSpan" &&
           line[i].text != "NoteSpan")) {
        continue;
      }
      // The named-variable form puts one identifier between the type and
      // the open paren: `TraceSpan parse_span("net.server.parse")`.
      size_t open = i + 1;
      if (open < line.size() && line[open].kind == TokKind::kIdent) ++open;
      if (open + 1 >= line.size() || !IsPunct(line[open], "(") ||
          line[open + 1].kind != TokKind::kString) {
        continue;
      }
      const std::string& name = line[open + 1].text;
      if (!detail::IsMetricNamePath(name)) {
        report(idx, "span-name",
               "span name \"" + name +
                   "\" must be a snake_case dotted path like "
                   "\"net.server.parse\"");
      }
    }

    // (void)-cast of a call: demand an inline justification so intentional
    // discards stay auditable. `(void)identifier;` (unused-parameter
    // silencing) is exempt — no call involved.
    if (line.size() >= 3 && IsPunct(line[0], "(") && IsIdent(line[1], "void") &&
        IsPunct(line[2], ")")) {
      bool has_call = false;
      for (size_t i = 3; i < line.size(); ++i) {
        if (IsPunct(line[i], "(")) has_call = true;
      }
      if (has_call) {
        const bool commented_same =
            raw[idx].find("//") != std::string::npos ||
            raw[idx].find("/*") != std::string::npos;
        const bool commented_above =
            idx > 0 && detail::Trim(raw[idx - 1]).rfind("//", 0) == 0;
        if (!commented_same && !commented_above) {
          report(idx, "void-needs-reason",
                 "(void)-discarded call needs a justification comment on the "
                 "same line or the line above");
        }
        continue;  // an annotated discard is not a discarded-status finding
      }
    }

    // Discarded Status/Result: a whole statement on one line whose leading
    // expression is a call to a known fallible function, with no
    // assignment and no `return`.
    if (options.status_functions != nullptr &&
        IsPunct(line.back(), ";") && line[0].kind == TokKind::kIdent &&
        !IsIdent(line[0], "return")) {
      size_t pos = 0;
      const std::string callee = detail::ParseCalleeChain(line, &pos);
      long depth = 0;
      bool has_assign = false;
      for (const Tok& t : line) {
        if (t.kind != TokKind::kPunct) continue;
        if (t.text == "(") ++depth;
        if (t.text == ")") --depth;
        if (t.text.find('=') != std::string::npos) has_assign = true;
      }
      // A wrapped statement's continuation can itself carry balanced
      // parens and no '=' (`Result<Frame> f =\n    parser.Next();`), so
      // also require that the previous token-bearing line ended a
      // statement or opened a block — i.e. this line *starts* one.
      // Comment-only lines lex to nothing and are skipped.
      bool starts_statement = true;
      for (size_t p = idx; p >= 1; --p) {
        if (by_line[p].empty()) continue;
        const Tok& prev = by_line[p].back();
        starts_statement =
            prev.kind == TokKind::kPreproc ||
            (prev.kind == TokKind::kPunct &&
             (prev.text == ";" || prev.text == "{" || prev.text == "}" ||
              prev.text == ":"));
        break;
      }
      // Balanced parens ⇒ the line is a whole statement, not the tail of a
      // wrapped expression (those carry the extra closing paren).
      if (!callee.empty() && pos < line.size() && IsPunct(line[pos], "(") &&
          depth == 0 && !has_assign && starts_statement &&
          options.status_functions->count(callee) > 0) {
        report(idx, "discarded-status",
               callee + "() returns Status/Result; the value must be "
                        "checked (or (void)-discarded with a reason)");
      }
    }
  }

  // Fd-leak dataflow (src/net/ only — elsewhere raw-socket bans the calls
  // outright): walk the token stream with a paren stack; a descriptor
  // producer is legal only inside a paren group opened by an Fd
  // construction (`Fd(..)`, `Fd name(..)`, `return Fd(..)`) or a Reset
  // member call, which hands the int straight to the RAII owner.
  if (options.allow_raw_sockets) {
    static const std::set<std::string> kFdProducers = {
        "socket", "accept", "accept4", "eventfd", "epoll_create1", "open"};
    std::vector<bool> wrap_stack;  // one entry per open paren group
    for (size_t i = 0; i < toks.size(); ++i) {
      const Tok& t = toks[i];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "(") {
          bool wrap = false;
          if (i >= 1 && toks[i - 1].kind == TokKind::kIdent) {
            const std::string& callee = toks[i - 1].text;
            if (callee == "Fd") {
              wrap = true;  // temporary: Fd(::socket(..))
            } else if (i >= 2 && toks[i - 2].kind == TokKind::kIdent &&
                       toks[i - 2].text == "Fd") {
              wrap = true;  // declaration: Fd fd(::socket(..))
            } else if (callee == "Reset" && i >= 2 &&
                       toks[i - 2].kind == TokKind::kPunct &&
                       (toks[i - 2].text == "." ||
                        toks[i - 2].text == "->")) {
              wrap = true;  // handoff: owner_.Reset(::eventfd(..))
            }
          }
          wrap_stack.push_back(wrap);
        } else if (t.text == ")") {
          if (!wrap_stack.empty()) wrap_stack.pop_back();
        }
        continue;
      }
      if (t.kind != TokKind::kIdent || kFdProducers.count(t.text) == 0) {
        continue;
      }
      if (i + 1 >= toks.size() || !IsPunct(toks[i + 1], "(")) continue;
      // Member calls (file.open()) and foreign qualifications (ns::open)
      // are not the POSIX producers; `::open(` and bare calls are.
      if (i >= 1 &&
          (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"))) {
        continue;
      }
      if (i >= 2 && IsPunct(toks[i - 1], "::") &&
          toks[i - 2].kind == TokKind::kIdent) {
        continue;
      }
      bool wrapped = false;
      for (bool w : wrap_stack) wrapped = wrapped || w;
      if (!wrapped) {
        report(t.line - 1, "fd-leak",
               t.text +
                   "() returns a raw descriptor that is not handed straight "
                   "to net::Fd; wrap the call as Fd(" + t.text +
                   "(..)) or owner.Reset(" + t.text +
                   "(..)) so early returns cannot leak it");
      }
    }
  }

  // Header hygiene: guard lines must exist, match the path-derived name,
  // and #pragma once is banned (guards keep the convention greppable).
  if (!options.expected_guard.empty()) {
    bool saw_ifndef = false, saw_define = false, saw_endif = false;
    for (const Tok& t : toks) {
      if (t.kind != TokKind::kPreproc) continue;
      const auto [directive, rest] = detail::SplitDirective(t.text);
      const size_t idx = t.line - 1;
      if (directive == "pragma" && rest.rfind("once", 0) == 0) {
        report(idx, "header-guard", "#pragma once; use the FVAE_*_H_ guard");
      }
      if (!saw_ifndef && directive == "ifndef") {
        saw_ifndef = true;
        if (rest != options.expected_guard) {
          report(idx, "header-guard",
                 "include guard should be " + options.expected_guard);
        }
      } else if (saw_ifndef && !saw_define && directive == "define") {
        saw_define = true;
        if (rest != options.expected_guard) {
          report(idx, "header-guard",
                 "#define should match guard " + options.expected_guard);
        }
      }
      if (directive == "endif") saw_endif = true;
    }
    if (!saw_ifndef || !saw_define || !saw_endif) {
      report(raw.empty() ? 0 : raw.size() - 1, "header-guard",
             "missing #ifndef/#define/#endif include guard " +
                 options.expected_guard);
    }
  }
  return findings;
}

/// Wall-clock breakdown of a LintTree run, printed by fvae_lint so the
/// analyzer's own cost stays visible as the tree grows, and gated by the
/// ctest's --budget-ms check.
struct LintTimings {
  double scan_ms = 0;      // directory walk + file reads
  double per_file_ms = 0;  // per-file rules over every file
  size_t file_count = 0;
  AnalysisTiming analysis;  // whole-program passes (link + 9 analyses)
  double total_ms() const {
    return scan_ms + per_file_ms + analysis.link_ms + analysis.cfg_ms +
           analysis.lock_balance_ms + analysis.lock_cycle_ms +
           analysis.hot_path_ms + analysis.event_loop_ms +
           analysis.guarded_by_ms + analysis.verb_switch_ms +
           analysis.status_path_ms + analysis.resource_escape_ms +
           analysis.use_after_move_ms;
  }
};

/// Walks the repository tree rooted at `root` (src, tools, bench, tests,
/// examples), collects Status/Result signatures, lints every source file,
/// then runs the whole-program analyses (lock-cycle, hot-path purity,
/// event-loop discipline, guarded-by, verb-switch) over `src/`. This is
/// the whole program: fvae_lint's main() and the lint test's clean-tree
/// check both call it.
inline std::vector<Finding> LintTree(const std::filesystem::path& root,
                                     LintTimings* timings = nullptr) {
  namespace fs = std::filesystem;
  using Clock = std::chrono::steady_clock;
  auto ms = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };
  const auto t0 = Clock::now();
  static const char* kDirs[] = {"src", "tools", "bench", "tests", "examples"};
  std::vector<std::pair<std::string, std::string>> files;  // rel path, body
  for (const char* dir : kDirs) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream body;
      body << in.rdbuf();
      files.emplace_back(fs::relative(entry.path(), root).generic_string(),
                         body.str());
    }
  }
  std::sort(files.begin(), files.end());
  const auto t1 = Clock::now();

  std::set<std::string> status_functions;
  std::set<std::string> ambiguous;
  for (const auto& [path, body] : files) {
    CollectStatusFunctions(body, &status_functions, &ambiguous);
  }
  // A name declared with both fallible and non-fallible return types
  // somewhere in the tree cannot be attributed by bare name; drop it
  // instead of flagging unrelated call sites.
  for (const std::string& name : ambiguous) status_functions.erase(name);

  std::vector<Finding> findings;
  for (const auto& [path, body] : files) {
    LintOptions options;
    options.expected_guard = ExpectedGuard(path);
    options.allow_raw_mutex = path == "src/common/mutex.h";
    options.allow_nondeterminism = path == "src/common/random.h" ||
                                   path == "src/common/random.cc";
    options.allow_raw_sockets = path.rfind("src/net/", 0) == 0;
    // Modules that persist durable artifacts. common/atomic_file.* itself
    // is the sanctioned wrapper, and lives outside these prefixes.
    options.ban_raw_ofstream =
        path.rfind("src/core/model_io", 0) == 0 ||
        path.rfind("src/core/checkpoint", 0) == 0 ||
        path.rfind("src/data/io", 0) == 0 ||
        path.rfind("src/data/streaming", 0) == 0 ||
        path.rfind("src/serving/embedding_store", 0) == 0 ||
        path.rfind("src/obs/", 0) == 0;
    options.status_functions = &status_functions;
    std::vector<Finding> file_findings = LintFile(path, body, options);
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  const auto t2 = Clock::now();

  // Whole-program analyses over production code only: test fixtures and
  // fakes must not add call-graph candidates or lock-order edges (they
  // prove invariants through AnalyzeProgram directly in lint_test).
  // common/mutex.h is excluded — it *implements* the primitives (CondVar
  // re-locks via std::adopt_lock), so its raw facts would be noise.
  std::vector<SourceFile> program;
  for (const auto& [path, body] : files) {
    if (path.rfind("src/", 0) != 0) continue;
    if (path == "src/common/mutex.h") continue;
    program.push_back({path, body});
  }
  std::vector<Finding> analysis = AnalyzeProgram(
      program, timings != nullptr ? &timings->analysis : nullptr);
  findings.insert(findings.end(), analysis.begin(), analysis.end());
  if (timings != nullptr) {
    timings->scan_ms = ms(t0, t1);
    timings->per_file_ms = ms(t1, t2);
    timings->file_count = files.size();
  }
  return findings;
}

}  // namespace fvae::lint

#endif  // FVAE_TOOLS_LINT_RULES_H_
